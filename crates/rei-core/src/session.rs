//! The session-based synthesis API.
//!
//! A [`SynthSession`] is created once from a [`SynthConfig`] and reused
//! across many specifications. It owns the execution [`Backend`] (and
//! therefore the warm [`gpu_sim::Device`] of the data-parallel backend),
//! the reusable device batch buffers, and cumulative run counters — so a
//! batch of inference requests pays device setup once instead of once per
//! spec, the batching structure the benchmark harness and a future service
//! front-end both need.

use std::time::{Duration, Instant};

use gpu_sim::Device;
use rei_lang::{Alphabet, Spec};
use rei_syntax::Regex;

use crate::backend::Backend;
use crate::config::SynthConfig;
use crate::observe::{CancelToken, NoopObserver, Observer};
use crate::refine::{ColdReason, PrevOutcome, RefineState, ReuseDecision, RunOutcome};
use crate::result::{SynthesisError, SynthesisResult, SynthesisStats};
use crate::search::{self, ResumeState, SearchParams, SessionScratch, StopCheck};

/// Cumulative counters over every run of a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Total runs attempted (solved + failed).
    pub runs: u64,
    /// Runs that produced an expression.
    pub solved: u64,
    /// Runs that failed (not found, out of memory, timeout, cancelled).
    pub failed: u64,
    /// Candidate languages constructed across all runs.
    pub candidates_generated: u64,
    /// Unique languages across all runs.
    pub unique_languages: u64,
    /// Work chunks claimed by the level execution engine across all runs
    /// (streamed level chunks, or work-stealing claims on the
    /// thread-parallel backend).
    pub chunks_claimed: u64,
    /// Scheduler chunks stolen between thread-parallel workers across all
    /// runs.
    pub chunks_stolen: u64,
    /// Candidate rows rejected by the admission prefilter (their full
    /// satisfaction check was skipped) across all runs.
    pub prefilter_rejects: u64,
    /// Admission checks executed (prefilter and/or full satisfaction
    /// fold) across all runs. A [`refine`](SynthSession::refine) answered
    /// from the session adds 0 here — the pin the unchanged-spec
    /// refinement contract rests on.
    pub admission_folds: u64,
    /// Uniqueness-filter insertions that overflowed the filter's table
    /// and were reported as unique without being recorded, across all
    /// runs (see `gpu_sim::hashset::LockFreeU64Set::overflowed`).
    pub dedup_overflowed: u64,
    /// Wall-clock time spent inside `run*` calls.
    pub elapsed: Duration,
}

/// One member of a fused sweep (see [`SynthSession::run_fused`]): a
/// specification plus an optional per-member cancellation token.
///
/// Deadlines are the caller's concern: arm a watchdog that trips the
/// member's token and the member retires at the next chunk boundary with
/// [`SynthesisError::Cancelled`] — without touching its batch-mates.
#[derive(Debug, Clone)]
pub struct FusedRequest<'s> {
    spec: &'s Spec,
    cancel: Option<CancelToken>,
}

impl<'s> FusedRequest<'s> {
    /// A fused member over `spec`, governed by the session-wide token.
    pub fn new(spec: &'s Spec) -> Self {
        FusedRequest { spec, cancel: None }
    }

    /// Attaches a per-member cancellation token. During the sweep this
    /// token *replaces* the session-wide one for this member (the session
    /// token is still checked once when the fused call starts).
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }
}

/// A reusable synthesis session: one configuration, one backend, many
/// specifications.
///
/// # Example
///
/// ```
/// use rei_core::{BackendChoice, SynthConfig, SynthSession};
/// use rei_lang::Spec;
/// use rei_syntax::CostFn;
///
/// let spec = Spec::from_strs(
///     ["10", "101", "100", "1010", "1011", "1000", "1001"],
///     ["", "0", "1", "00", "11", "010"],
/// ).unwrap();
/// let config = SynthConfig::new(CostFn::UNIFORM).with_backend(BackendChoice::parallel());
/// let mut session = SynthSession::new(config).unwrap();
/// let result = session.run(&spec).unwrap();
/// // Backends guarantee the minimal cost; the expression itself may be
/// // any equally-minimal candidate (here cost 8, e.g. `10(0+1)*`).
/// assert_eq!(result.cost, 8);
/// assert!(spec.is_satisfied_by(&result.regex));
/// assert_eq!(session.stats().runs, 1);
/// ```
#[derive(Debug)]
pub struct SynthSession {
    config: SynthConfig,
    backend: Box<dyn Backend>,
    cancel: CancelToken,
    scratch: SessionScratch,
    stats: SessionStats,
    /// Refinement state of the session's own [`refine`](SynthSession::refine)
    /// chain; external chains pass their own state through
    /// [`refine_with_state`](SynthSession::refine_with_state).
    refine_state: RefineState,
}

impl SynthSession {
    /// Creates a session, building the backend named by the config.
    ///
    /// # Errors
    ///
    /// [`SynthesisError::InvalidConfig`] when the configuration fails
    /// [`SynthConfig::validate`].
    pub fn new(config: SynthConfig) -> Result<Self, SynthesisError> {
        let backend = config.backend().build();
        SynthSession::with_backend(config, backend)
    }

    /// Creates a session around a caller-supplied backend (a custom
    /// [`Backend`] implementation, or a [`DeviceParallel`] sharing a
    /// specific [`Device`]). The config's own
    /// [`backend`](SynthConfig::backend) choice is ignored.
    ///
    /// [`DeviceParallel`]: crate::DeviceParallel
    pub fn with_backend(
        config: SynthConfig,
        backend: Box<dyn Backend>,
    ) -> Result<Self, SynthesisError> {
        config.validate()?;
        Ok(SynthSession {
            config,
            backend,
            cancel: CancelToken::new(),
            scratch: SessionScratch::default(),
            stats: SessionStats::default(),
            refine_state: RefineState::new(),
        })
    }

    /// The configuration this session was created from.
    pub fn config(&self) -> &SynthConfig {
        &self.config
    }

    /// The backend executing this session's runs.
    pub fn backend(&self) -> &dyn Backend {
        &*self.backend
    }

    /// The backend's name (see [`Backend::name`]); the string reported by
    /// the CLI, the benchmark harness and session logs.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// The device shared by this session's runs, if the backend owns one.
    pub fn device(&self) -> Option<&Device> {
        self.backend.device()
    }

    /// A handle to this session's cancellation flag. Cloning is cheap;
    /// trip it from any thread with [`CancelToken::cancel`] and the
    /// in-flight run stops at the next level boundary with
    /// [`SynthesisError::Cancelled`]. The flag stays set (subsequent runs
    /// fail fast) until [`CancelToken::reset`].
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Cumulative counters over every run of this session.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Total runs attempted so far.
    pub fn runs_completed(&self) -> u64 {
        self.stats.runs
    }

    /// Runs regular expression inference on `spec`.
    ///
    /// On success the returned expression is *precise* (accepts all of
    /// `P`, rejects all of `N`, up to the configured allowed error) and
    /// *minimal* with respect to the cost homomorphism.
    ///
    /// # Errors
    ///
    /// * [`SynthesisError::NotFound`] if no expression within the cost
    ///   bound satisfies the specification.
    /// * [`SynthesisError::OutOfMemory`] if the language cache exceeded
    ///   its memory budget and OnTheFly mode could not finish the search.
    /// * [`SynthesisError::Timeout`] / [`SynthesisError::Cancelled`] when
    ///   the time budget or the session's [`CancelToken`] fired.
    pub fn run(&mut self, spec: &Spec) -> Result<SynthesisResult, SynthesisError> {
        self.run_with(spec, &mut NoopObserver)
    }

    /// Like [`run`](SynthSession::run), delivering per-cost-level progress
    /// events to `observer` (see [`Observer`]).
    pub fn run_with(
        &mut self,
        spec: &Spec,
        observer: &mut dyn Observer,
    ) -> Result<SynthesisResult, SynthesisError> {
        observer.on_start(spec);
        let outcome = self.run_inner(spec, observer);
        self.note_outcome(&outcome);
        observer.on_finish(outcome.as_ref());
        outcome
    }

    /// Runs every specification through this session in order, reusing the
    /// backend's device and warm buffers across all of them. Each spec
    /// gets its own result slot; a failure on one spec does not stop the
    /// others (a tripped [`CancelToken`] does — the remaining specs report
    /// [`SynthesisError::Cancelled`] immediately).
    pub fn run_batch(&mut self, specs: &[Spec]) -> Vec<Result<SynthesisResult, SynthesisError>> {
        self.run_batch_with(specs, &mut NoopObserver)
    }

    /// Like [`run_batch`](SynthSession::run_batch), with progress events.
    pub fn run_batch_with(
        &mut self,
        specs: &[Spec],
        observer: &mut dyn Observer,
    ) -> Vec<Result<SynthesisResult, SynthesisError>> {
        specs
            .iter()
            .map(|spec| self.run_with(spec, observer))
            .collect()
    }

    /// Runs several specifications as **one fused level sweep** — the
    /// cross-request batch-fusion path of the service layer. The members
    /// advance in lock step through the shared backend, so staging, stop
    /// polling and per-level scheduling are amortised across them and the
    /// whole batch accounts as a *single* session run (`stats().runs`
    /// grows by one; `solved`/`failed` by one per member). Results come
    /// back in member order.
    ///
    /// A member carrying its own [`CancelToken`] can be retired mid-sweep
    /// without poisoning its batch-mates, and a member whose winner lands
    /// at an early cost level completes immediately while the rest keep
    /// sweeping. The configured time budget bounds the sweep as a whole
    /// (every member polls the same deadline) and the memory budget is
    /// divided evenly across the members that actually join the sweep.
    pub fn run_fused(
        &mut self,
        requests: &[FusedRequest<'_>],
    ) -> Vec<Result<SynthesisResult, SynthesisError>> {
        let mut noops: Vec<NoopObserver> = requests.iter().map(|_| NoopObserver).collect();
        let mut observers: Vec<&mut dyn Observer> = noops
            .iter_mut()
            .map(|observer| observer as &mut dyn Observer)
            .collect();
        self.run_fused_with(requests, &mut observers)
    }

    /// Like [`run_fused`](SynthSession::run_fused), delivering progress
    /// events to one [`Observer`] per member (same order as `requests`;
    /// the lengths must match). Each member's observer sees only that
    /// member's `on_start` / per-level / `on_finish` events, so a pool
    /// worker can attach per-request trace collectors to a fused batch.
    pub fn run_fused_with(
        &mut self,
        requests: &[FusedRequest<'_>],
        observers: &mut [&mut dyn Observer],
    ) -> Vec<Result<SynthesisResult, SynthesisError>> {
        assert_eq!(
            requests.len(),
            observers.len(),
            "one observer per fused member"
        );
        if requests.is_empty() {
            return Vec::new();
        }
        for (request, observer) in requests.iter().zip(observers.iter_mut()) {
            observer.on_start(request.spec);
        }
        let started = Instant::now();
        self.stats.runs += 1;
        self.backend.begin_run();
        let costs = *self.config.costs();

        // Resolve trivially-answerable members (and members whose token
        // tripped while they were queued) before staging anything; only
        // the rest join the sweep.
        let mut outcomes: Vec<Option<Result<SynthesisResult, SynthesisError>>> =
            requests.iter().map(|_| None).collect();
        let mut live: Vec<usize> = Vec::with_capacity(requests.len());
        for (index, request) in requests.iter().enumerate() {
            let cancelled = self.cancel.is_cancelled()
                || request
                    .cancel
                    .as_ref()
                    .is_some_and(CancelToken::is_cancelled);
            if cancelled {
                outcomes[index] = Some(Err(SynthesisError::Cancelled {
                    stats: SynthesisStats::default(),
                }));
                continue;
            }
            let allowed = self.config.allowed_example_errors(request.spec);
            let mut resolved = None;
            for (checked, trivial) in [Regex::Empty, Regex::Epsilon].into_iter().enumerate() {
                let candidates_checked = checked as u64 + 1;
                if request.spec.misclassified_by(&trivial) <= allowed {
                    resolved = Some(SynthesisResult {
                        cost: trivial.cost(&costs),
                        regex: trivial,
                        stats: SynthesisStats {
                            candidates_generated: candidates_checked,
                            unique_languages: candidates_checked,
                            elapsed: started.elapsed(),
                            ..SynthesisStats::default()
                        },
                    });
                    break;
                }
            }
            match resolved {
                Some(result) => outcomes[index] = Some(Ok(result)),
                None => live.push(index),
            }
        }

        if !live.is_empty() {
            // Fair split of the cache budget across the sweeping members
            // (at least one byte each keeps the cache constructible).
            let member_budget = (self.config.memory_budget() / live.len()).max(1);
            let deadline = self.config.time_budget().map(|budget| started + budget);
            let budget = self.config.time_budget().unwrap_or_default();
            let members: Vec<search::FusedMember<'_>> = live
                .iter()
                .map(|&index| {
                    let request = &requests[index];
                    let spec = request.spec;
                    search::FusedMember {
                        params: SearchParams {
                            spec,
                            alphabet: self
                                .config
                                .alphabet()
                                .cloned()
                                .unwrap_or_else(|| Alphabet::of_spec(spec)),
                            costs,
                            memory_budget: member_budget,
                            allowed_errors: self.config.allowed_example_errors(spec),
                            max_cost: self
                                .config
                                .max_cost()
                                .unwrap_or_else(|| spec.overfit_regex().cost(&costs)),
                            started,
                            sched_chunk: self.config.sched_chunk(),
                            level_chunk_rows: self.config.level_chunk_rows(),
                        },
                        stop: StopCheck {
                            deadline,
                            budget,
                            cancel: Some(
                                request
                                    .cancel
                                    .clone()
                                    .unwrap_or_else(|| self.cancel.clone()),
                            ),
                        },
                    }
                })
                .collect();
            let live_observers: Vec<&mut dyn Observer> = observers
                .iter_mut()
                .enumerate()
                .filter(|(index, _)| live.contains(index))
                .map(|(_, observer)| &mut **observer as &mut dyn Observer)
                .collect();
            let results = search::run_fused(members, live_observers, &*self.backend);
            for (&index, mut outcome) in live.iter().zip(results) {
                // Credit the two trivial candidates this member was
                // checked against before the sweep.
                match &mut outcome {
                    Ok(result) => result.stats.candidates_generated += 2,
                    Err(err) => {
                        if let Some(stats) = err.stats_mut() {
                            stats.candidates_generated += 2;
                        }
                    }
                }
                outcomes[index] = Some(outcome);
            }
        }

        let outcomes: Vec<_> = outcomes
            .into_iter()
            .map(|outcome| outcome.expect("every fused member resolved"))
            .collect();
        for outcome in &outcomes {
            self.absorb_outcome(outcome);
        }
        for (outcome, observer) in outcomes.iter().zip(observers.iter_mut()) {
            observer.on_finish(outcome.as_ref());
        }
        outcomes
    }

    /// Refines the session's own specification chain: like
    /// [`run`](SynthSession::run), but when `spec` *strengthens* the
    /// previous refined spec (example supersets over the same alphabet
    /// with the same absolute allowed-error budget), previous-run state is
    /// reused — the cached outcome for an unchanged spec, a re-check of
    /// the previous winner or a resumed enumeration over the retained
    /// level caches otherwise. Any other spec falls back to a transparent
    /// cold run. The synthesis outcome is always identical to what a cold
    /// [`run`](SynthSession::run) of the same spec would return; only the
    /// work differs, as reported by [`RunOutcome::reuse`].
    pub fn refine(&mut self, spec: &Spec) -> RunOutcome {
        self.refine_with(spec, &mut NoopObserver)
    }

    /// Like [`refine`](SynthSession::refine), with progress events.
    pub fn refine_with(&mut self, spec: &Spec, observer: &mut dyn Observer) -> RunOutcome {
        let mut state = std::mem::take(&mut self.refine_state);
        let outcome = self.refine_with_state(&mut state, spec, observer);
        self.refine_state = state;
        outcome
    }

    /// Like [`refine`](SynthSession::refine) over a caller-owned
    /// [`RefineState`] — the service-tier entry point, where the
    /// refinement chain belongs to a *user* session while the
    /// `SynthSession` belongs to whichever pool worker picked the request
    /// up.
    pub fn refine_with_state(
        &mut self,
        state: &mut RefineState,
        spec: &Spec,
        observer: &mut dyn Observer,
    ) -> RunOutcome {
        observer.on_start(spec);
        let started = Instant::now();
        let allowed = self.config.allowed_example_errors(spec);
        let alphabet = self
            .config
            .alphabet()
            .cloned()
            .unwrap_or_else(|| Alphabet::of_spec(spec));

        // Tier 0 — unchanged spec: answer from the session. No admission
        // runs (`admission_folds` stays 0), no backend work at all.
        if let Some(prev) = &state.prev {
            if prev.outcome.is_some() && prev.spec == *spec {
                let outcome = prev
                    .replay(started.elapsed())
                    .expect("unchanged tier requires a deterministic previous outcome");
                self.note_outcome(&outcome);
                observer.on_finish(outcome.as_ref());
                return RunOutcome {
                    outcome,
                    reuse: ReuseDecision::Unchanged,
                };
            }
        }

        // Gate of the warm tier: a strengthening over the same alphabet
        // with the same absolute budget, refining a deterministic outcome.
        // Everything else goes cold (with the reason on record).
        let gate = match &state.prev {
            None => Err(ColdReason::NoPrevious),
            Some(prev) if prev.outcome.is_none() => Err(ColdReason::PreviousFailed),
            Some(prev)
                if !(prev.spec.positive().is_subset(spec.positive())
                    && prev.spec.negative().is_subset(spec.negative())) =>
            {
                Err(ColdReason::NotStrengthening)
            }
            Some(prev) if prev.alphabet != alphabet => Err(ColdReason::AlphabetChanged),
            Some(prev) if prev.allowed != allowed => Err(ColdReason::BudgetChanged),
            Some(_) => Ok(()),
        };
        if let Err(reason) = gate {
            return self.refine_cold(state, spec, allowed, alphabet, started, observer, reason);
        }

        // Warm fast path: if the previous winner still satisfies the
        // strengthened spec it is still minimal — rejection is monotone
        // under example supersets with an unchanged absolute budget, so no
        // candidate the previous run rejected (explicitly or as a dedup
        // duplicate of a rejected representative) can newly satisfy, and
        // every satisfier of the new spec also satisfied the old one, so
        // nothing cheaper exists over the same alphabet.
        {
            let prev = state.prev.as_mut().expect("warm tier has a previous run");
            if let Some(PrevOutcome::Solved { regex, cost }) = &prev.outcome {
                if spec.misclassified_by(regex) <= allowed {
                    let outcome = Ok(SynthesisResult {
                        regex: regex.clone(),
                        cost: *cost,
                        stats: SynthesisStats {
                            candidates_generated: 1,
                            elapsed: started.elapsed(),
                            ..SynthesisStats::default()
                        },
                    });
                    let reuse = ReuseDecision::Warm {
                        retained_rows: prev.retained.as_ref().map_or(0, ResumeState::retained_rows),
                        resumed_cost: *cost,
                    };
                    // The retained state is still the complete enumeration
                    // of its levels; only the spec on record advances.
                    prev.spec = spec.clone();
                    self.note_outcome(&outcome);
                    observer.on_finish(outcome.as_ref());
                    return RunOutcome { outcome, reuse };
                }
            }
        }

        // Warm resume: re-enumerate from the retained level caches. This
        // additionally requires every new example to be indexed by the
        // retained infix closure — a grown closure would split dedup
        // classes whose discarded duplicates are unrecoverable, so it
        // cannot be revalidated and must go cold.
        let resume = {
            let prev = state.prev.as_mut().expect("warm tier has a previous run");
            match &prev.retained {
                None => Err(ColdReason::NoRetainedSearch),
                Some(retained) if !retained.covers(spec) => Err(ColdReason::ClosureGrew),
                Some(_) => Ok(prev.retained.take().expect("checked above")),
            }
        };
        let retained = match resume {
            Ok(retained) => retained,
            Err(reason) => {
                return self.refine_cold(state, spec, allowed, alphabet, started, observer, reason)
            }
        };

        let reuse = ReuseDecision::Warm {
            retained_rows: retained.retained_rows(),
            resumed_cost: retained.last_full_cost + 1,
        };
        let (outcome, new_retained) =
            self.run_search_retaining(spec, started, observer, Some(retained));
        state.record(spec, allowed, alphabet, &outcome, new_retained);
        self.note_outcome(&outcome);
        observer.on_finish(outcome.as_ref());
        RunOutcome { outcome, reuse }
    }

    /// The cold fallback of [`refine_with_state`]: a full run (trivial
    /// checks included), still recording its state so the *next* refine
    /// can go warm.
    ///
    /// [`refine_with_state`]: SynthSession::refine_with_state
    #[allow(clippy::too_many_arguments)]
    fn refine_cold(
        &mut self,
        state: &mut RefineState,
        spec: &Spec,
        allowed: usize,
        alphabet: Alphabet,
        started: Instant,
        observer: &mut dyn Observer,
        reason: ColdReason,
    ) -> RunOutcome {
        let (outcome, retained) = self.run_inner_retaining(spec, started, observer);
        state.record(spec, allowed, alphabet, &outcome, retained);
        self.note_outcome(&outcome);
        observer.on_finish(outcome.as_ref());
        RunOutcome {
            outcome,
            reuse: ReuseDecision::Cold(reason),
        }
    }

    fn run_inner(
        &mut self,
        spec: &Spec,
        observer: &mut dyn Observer,
    ) -> Result<SynthesisResult, SynthesisError> {
        let started = Instant::now();
        self.run_inner_retaining(spec, started, observer).0
    }

    /// The single-spec run body: cancellation fast-fail, the trivial
    /// candidates of minimal cost (lines 4-5 of Algorithm 1, generalised
    /// to allowed error), then the level search — handing back whatever
    /// resumable state the search retained for the refinement tier.
    fn run_inner_retaining(
        &mut self,
        spec: &Spec,
        started: Instant,
        observer: &mut dyn Observer,
    ) -> (Result<SynthesisResult, SynthesisError>, Option<ResumeState>) {
        // The config was validated at session construction and is
        // immutable afterwards, so no per-run re-validation is needed.
        if self.cancel.is_cancelled() {
            return (
                Err(SynthesisError::Cancelled {
                    stats: SynthesisStats::default(),
                }),
                None,
            );
        }
        self.backend.begin_run();
        let costs = *self.config.costs();
        let allowed_errors = self.config.allowed_example_errors(spec);

        let mut candidates_checked = 0u64;
        for trivial in [Regex::Empty, Regex::Epsilon] {
            candidates_checked += 1;
            if spec.misclassified_by(&trivial) <= allowed_errors {
                return (
                    Ok(SynthesisResult {
                        cost: trivial.cost(&costs),
                        regex: trivial,
                        stats: SynthesisStats {
                            candidates_generated: candidates_checked,
                            unique_languages: candidates_checked,
                            elapsed: started.elapsed(),
                            ..SynthesisStats::default()
                        },
                    }),
                    None,
                );
            }
        }

        let (mut outcome, retained) = self.run_search_retaining(spec, started, observer, None);
        match &mut outcome {
            Ok(result) => result.stats.candidates_generated += candidates_checked,
            Err(err) => {
                if let Some(stats) = err.stats_mut() {
                    stats.candidates_generated += candidates_checked;
                }
            }
        }
        (outcome, retained)
    }

    /// Stages [`SearchParams`] from the config and runs the level search,
    /// fresh or resumed. The trivial candidates are *not* checked here: a
    /// resumed run already rejected them under the weaker previous spec
    /// and rejection is monotone under strengthening.
    fn run_search_retaining(
        &mut self,
        spec: &Spec,
        started: Instant,
        observer: &mut dyn Observer,
        resume: Option<ResumeState>,
    ) -> (Result<SynthesisResult, SynthesisError>, Option<ResumeState>) {
        if resume.is_some() {
            self.backend.begin_run();
        }
        let costs = *self.config.costs();
        let alphabet = self
            .config
            .alphabet()
            .cloned()
            .unwrap_or_else(|| Alphabet::of_spec(spec));
        let max_cost = self
            .config
            .max_cost()
            .unwrap_or_else(|| spec.overfit_regex().cost(&costs));

        let params = SearchParams {
            spec,
            alphabet,
            costs,
            memory_budget: self.config.memory_budget(),
            allowed_errors: self.config.allowed_example_errors(spec),
            max_cost,
            started,
            sched_chunk: self.config.sched_chunk(),
            level_chunk_rows: self.config.level_chunk_rows(),
        };
        let stop = StopCheck {
            deadline: self.config.time_budget().map(|budget| started + budget),
            budget: self.config.time_budget().unwrap_or_default(),
            cancel: Some(self.cancel.clone()),
        };
        search::run_retaining(
            params,
            &*self.backend,
            observer,
            stop,
            &mut self.scratch,
            resume,
        )
    }

    fn note_outcome(&mut self, outcome: &Result<SynthesisResult, SynthesisError>) {
        self.stats.runs += 1;
        self.absorb_outcome(outcome);
    }

    /// Folds one outcome's counters into the session totals — `solved`/
    /// `failed` and the work counters, but not `runs`: a fused sweep is
    /// one run with many member outcomes.
    fn absorb_outcome(&mut self, outcome: &Result<SynthesisResult, SynthesisError>) {
        let run_stats = match outcome {
            Ok(result) => {
                self.stats.solved += 1;
                Some(&result.stats)
            }
            Err(err) => {
                self.stats.failed += 1;
                err.stats()
            }
        };
        if let Some(stats) = run_stats {
            self.stats.candidates_generated += stats.candidates_generated;
            self.stats.unique_languages += stats.unique_languages;
            self.stats.chunks_claimed += stats.chunks_claimed;
            self.stats.chunks_stolen += stats.chunks_stolen;
            self.stats.prefilter_rejects += stats.prefilter_rejects;
            self.stats.admission_folds += stats.admission_folds;
            self.stats.dedup_overflowed += stats.dedup_overflowed;
            self.stats.elapsed += stats.elapsed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BackendChoice, DeviceParallel};
    use crate::observe::LevelLog;
    use rei_syntax::CostFn;

    fn intro_spec() -> Spec {
        Spec::from_strs(
            ["10", "101", "100", "1010", "1011", "1000", "1001"],
            ["", "0", "1", "00", "11", "010"],
        )
        .unwrap()
    }

    #[test]
    fn invalid_config_fails_at_session_creation() {
        let err = SynthSession::new(SynthConfig::default().with_allowed_error(1.5)).unwrap_err();
        assert!(
            matches!(err, SynthesisError::InvalidConfig { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn session_counts_runs_and_reuses_one_device() {
        let specs = vec![
            Spec::from_strs(["0", "00"], ["1", "10"]).unwrap(),
            Spec::from_strs(["1", "11", "111"], ["", "0", "10"]).unwrap(),
            intro_spec(),
        ];
        let config = SynthConfig::new(CostFn::UNIFORM)
            .with_backend(BackendChoice::DeviceParallel { threads: Some(2) });
        let mut session = SynthSession::new(config).unwrap();
        let device = session
            .device()
            .expect("parallel backend owns a device")
            .clone();

        let results = session.run_batch(&specs);
        assert_eq!(results.len(), 3);
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(session.stats().runs, 3);
        assert_eq!(session.stats().solved, 3);
        // All three runs hit the same device: its counters kept growing
        // and the session still reports the very same instance.
        assert!(device.stats().kernel_launches > 0);
        assert_eq!(session.device().unwrap().stats(), device.stats());
    }

    #[test]
    fn run_with_reports_levels_and_finish() {
        let mut session = SynthSession::new(SynthConfig::default()).unwrap();
        let mut log = LevelLog::default();
        let result = session.run_with(&intro_spec(), &mut log).unwrap();
        assert_eq!(result.regex.to_string(), "10(0+1)*");
        assert!(!log.levels.is_empty());
        assert!(log.levels.windows(2).all(|w| w[0].cost < w[1].cost));
    }

    #[test]
    fn cancelled_session_fails_fast_until_reset() {
        let mut session = SynthSession::new(SynthConfig::default()).unwrap();
        let token = session.cancel_token();
        token.cancel();
        let err = session.run(&intro_spec()).unwrap_err();
        assert!(matches!(err, SynthesisError::Cancelled { .. }), "{err:?}");
        token.reset();
        assert!(session.run(&intro_spec()).is_ok());
        assert_eq!(session.stats().runs, 2);
        assert_eq!(session.stats().failed, 1);
    }

    #[test]
    fn thread_parallel_sessions_solve_and_account() {
        let config = SynthConfig::new(CostFn::UNIFORM)
            .with_backend(BackendChoice::ThreadParallel { threads: Some(3) });
        let mut session = SynthSession::new(config).unwrap();
        let result = session.run(&intro_spec()).unwrap();
        assert_eq!(result.cost, 8);
        assert_eq!(session.backend_name(), "cpu-thread-parallel");
        // The stats device accounted the self-scheduled launches.
        let stats = session.device().unwrap().stats();
        assert!(stats.kernel_launches > 0);
        assert!(stats.items_executed >= stats.kernel_launches);
        assert!(stats.hash_insertions > 0);
    }

    #[test]
    fn fused_run_accounts_one_run_with_per_member_outcomes() {
        let mut session = SynthSession::new(SynthConfig::default()).unwrap();
        let easy = Spec::from_strs(["0", "00"], ["1", "10"]).unwrap();
        let intro = intro_spec();
        let trivial = Spec::from_strs([""], ["0"]).unwrap();
        let tripped = CancelToken::new();
        tripped.cancel();

        let requests = [
            FusedRequest::new(&easy),
            FusedRequest::new(&intro),
            FusedRequest::new(&trivial),
            FusedRequest::new(&easy).with_cancel(tripped),
        ];
        let outcomes = session.run_fused(&requests);
        assert_eq!(outcomes.len(), 4);

        // Per-member answers are exactly the single-run answers.
        let first = outcomes[0].as_ref().unwrap();
        assert!(easy.is_satisfied_by(&first.regex));
        let second = outcomes[1].as_ref().unwrap();
        assert_eq!(second.cost, 8);
        assert!(intro.is_satisfied_by(&second.regex));
        let third = outcomes[2].as_ref().unwrap();
        assert_eq!(third.regex, Regex::Epsilon);
        // The member whose token tripped before the sweep is retired as
        // cancelled without poisoning its batch-mates.
        assert!(
            matches!(outcomes[3], Err(SynthesisError::Cancelled { .. })),
            "{:?}",
            outcomes[3]
        );

        // One fused sweep is one session run, with member-level outcome
        // counters.
        assert_eq!(session.stats().runs, 1);
        assert_eq!(session.stats().solved, 3);
        assert_eq!(session.stats().failed, 1);
    }

    #[test]
    fn fused_observers_see_their_own_member_only() {
        #[derive(Default)]
        struct Recorder {
            started: usize,
            levels: usize,
            finished: usize,
        }
        impl Observer for Recorder {
            fn on_start(&mut self, _spec: &Spec) {
                self.started += 1;
            }
            fn on_level(&mut self, _stats: &crate::LevelStats) {
                self.levels += 1;
            }
            fn on_finish(&mut self, _outcome: Result<&SynthesisResult, &SynthesisError>) {
                self.finished += 1;
            }
        }

        let mut session = SynthSession::new(SynthConfig::default()).unwrap();
        let intro = intro_spec();
        let trivial = Spec::from_strs([""], ["0"]).unwrap();
        let requests = [FusedRequest::new(&intro), FusedRequest::new(&trivial)];
        let mut recorders = [Recorder::default(), Recorder::default()];
        {
            let mut observers: Vec<&mut dyn Observer> = recorders
                .iter_mut()
                .map(|recorder| recorder as &mut dyn Observer)
                .collect();
            let outcomes = session.run_fused_with(&requests, &mut observers);
            assert!(outcomes.iter().all(Result::is_ok));
        }
        // Every member saw exactly one start and one finish; only the
        // member that actually swept levels produced level events.
        for recorder in &recorders {
            assert_eq!(recorder.started, 1);
            assert_eq!(recorder.finished, 1);
        }
        assert!(recorders[0].levels > 0, "sweeping member saw no levels");
        assert_eq!(recorders[1].levels, 0, "trivial member swept levels");
    }

    #[test]
    fn custom_backend_device_is_shared() {
        let device = Device::with_threads(2);
        let backend = Box::new(DeviceParallel::with_device(device.clone()));
        let mut session = SynthSession::with_backend(SynthConfig::default(), backend).unwrap();
        session.run(&intro_spec()).unwrap();
        assert!(device.stats().kernel_launches > 0);
        assert_eq!(session.backend_name(), DeviceParallel::NAME);
    }
}
