//! The bottom-up, cost-ordered search over characteristic sequences.
//!
//! This module implements Algorithms 1 and 2 of the paper. The search is
//! parameterised by a [`Backend`]: each batch of a cost level's candidate
//! constructions is handed to the backend as a [`LevelBatch`], which runs
//! the reference sequential loop ([`LevelBatch::run_sequential`]),
//! partitions the batch across worker threads running the bit-parallel
//! mask kernels ([`LevelBatch::run_threaded`]), or computes the batch as
//! data-parallel kernel items on a [`gpu_sim::Device`]
//! ([`LevelBatch::run_on_device`]), mirroring the temporary-buffer →
//! cache copy of the paper's GPU implementation.
//!
//! Between batches and between levels the search polls a [`StopCheck`]
//! (deadline + cooperative [`CancelToken`]) and reports each completed
//! level to the run's [`Observer`].

use std::cell::RefCell;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use gpu_sim::hashset::CsSet;
use gpu_sim::Device;
use parking_lot::Mutex;
use rei_lang::{
    csops, AdmissionPrefilter, Alphabet, CsWidth, GuideMasks, GuideTable, InfixClosure,
    SatisfyMasks, Spec,
};
use rei_syntax::CostFn;

use crate::backend::Backend;
use crate::cache::{LanguageCache, Provenance};
use crate::observe::{CancelToken, Observer};
use crate::result::{LevelStats, SynthesisError, SynthesisResult, SynthesisStats};
use crate::sched::StealScheduler;

/// Hard cap on candidate rows materialised per streamed level chunk (and
/// therefore per kernel launch) when the configuration does not pin
/// `level_chunk_rows` itself. Matches the seed's whole-level batch bound.
const MAX_LEVEL_CHUNK_ROWS: usize = 1 << 16;

/// Floor of the derived chunk size: below this the per-chunk dispatch
/// overhead dominates the kernels.
const MIN_LEVEL_CHUNK_ROWS: usize = 256;

/// Default rows per work-stealing claim of the thread-parallel strategy.
const DEFAULT_SCHED_CHUNK: usize = 64;

/// Steal fraction above which a level counts as contended: the next level
/// halves the work-stealing chunk so the tail spreads better.
const STEAL_RATE_SHRINK: f64 = 0.25;

/// Steal fraction below which a level counts as calm: the chunk grows
/// back towards the configured size.
const STEAL_RATE_GROW: f64 = 0.10;

/// Floor of the adapted chunk size; below this the per-claim scheduler
/// overhead dominates the kernels.
const MIN_SCHED_CHUNK: usize = 8;

/// The steal-rate feedback rule for the work-stealing chunk size (see
/// [`Search::adapt_sched_chunk`]): `current` is this level's chunk, `cap`
/// the configured (or default) size the chunk may grow back to, and
/// `claimed`/`stolen` the scheduler counters observed over one level.
fn adapted_sched_chunk(current: usize, cap: usize, claimed: u64, stolen: u64) -> usize {
    if claimed == 0 {
        return current;
    }
    let rate = stolen as f64 / claimed as f64;
    if rate > STEAL_RATE_SHRINK {
        (current / 2).max(MIN_SCHED_CHUNK.min(cap))
    } else if rate < STEAL_RATE_GROW && current < cap {
        (current * 2).min(cap)
    } else {
        current
    }
}

/// Derives the streamed-chunk bound from the cache's memory budget: the
/// in-flight batch buffer (`rows * stride` words) may use about 1/16 of
/// the budget, clamped to `[MIN, MAX]_LEVEL_CHUNK_ROWS`.
fn default_level_chunk_rows(memory_budget: usize, stride: usize) -> usize {
    ((memory_budget / 16) / (stride * std::mem::size_of::<u64>()))
        .clamp(MIN_LEVEL_CHUNK_ROWS, MAX_LEVEL_CHUNK_ROWS)
}

/// Everything the search needs about the problem, assembled by
/// [`crate::SynthSession`].
pub(crate) struct SearchParams<'a> {
    pub spec: &'a Spec,
    pub alphabet: Alphabet,
    pub costs: CostFn,
    pub memory_budget: usize,
    pub allowed_errors: usize,
    pub max_cost: u64,
    pub started: Instant,
    /// Rows per work-stealing claim; `None` picks
    /// [`DEFAULT_SCHED_CHUNK`].
    pub sched_chunk: Option<usize>,
    /// Rows per streamed level chunk; `None` derives the bound from the
    /// memory budget ([`default_level_chunk_rows`]).
    pub level_chunk_rows: Option<usize>,
}

/// The unified stop condition, polled between batches and between levels:
/// an optional wall-clock deadline (the old ad-hoc time-budget check) and
/// an optional cooperative cancellation token.
#[derive(Debug, Clone, Default)]
pub(crate) struct StopCheck {
    pub deadline: Option<Instant>,
    /// The configured budget, reported in [`SynthesisError::Timeout`].
    pub budget: Duration,
    pub cancel: Option<CancelToken>,
}

impl StopCheck {
    fn poll(&self) -> Option<Stop> {
        if let Some(cancel) = &self.cancel {
            if cancel.is_cancelled() {
                return Some(Stop::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                return Some(Stop::TimedOut);
            }
        }
        None
    }
}

#[derive(Debug, Clone, Copy)]
enum Stop {
    TimedOut,
    Cancelled,
}

/// Warm per-session buffers reused across runs, owned by
/// [`crate::SynthSession`]. Reusing the device batch buffer across the
/// specs of a `run_batch` avoids re-allocating a multi-megabyte temporary
/// per spec — part of the amortisation the session API exists for.
#[derive(Debug, Default)]
pub(crate) struct SessionScratch {
    batch_rows: Vec<u64>,
    /// The in-flight job chunk of the streamed level driver. Bounded by
    /// the resolved `level_chunk_rows`, warm across chunks, levels and
    /// runs.
    jobs: Vec<Job>,
}

/// A candidate construction at the current cost level: the outermost
/// constructor plus cache indices of its operands.
#[derive(Debug, Clone, Copy)]
enum Job {
    Question(u32),
    Star(u32),
    Concat(u32, u32),
    Union(u32, u32),
}

impl Job {
    fn provenance(self) -> Provenance {
        match self {
            Job::Question(i) => Provenance::Question(i),
            Job::Star(i) => Provenance::Star(i),
            Job::Concat(l, r) => Provenance::Concat(l, r),
            Job::Union(l, r) => Provenance::Union(l, r),
        }
    }
}

/// One contiguous run of same-shape candidate constructions of a cost
/// level, described by cache index ranges instead of materialised jobs.
#[derive(Debug, Clone)]
enum JobSegment {
    /// `r?` over a range of operand indices.
    Question(Range<u32>),
    /// `r*` over a range of operand indices.
    Star(Range<u32>),
    /// A binary constructor over the cross product `left × right`. When
    /// `triangular` is set (a commutative constructor whose operand costs
    /// coincide, so `left == right`), only the ordered pairs `r >= l` are
    /// generated — exactly the seed's duplicate-skipping rule.
    Binary {
        union: bool,
        left: Range<u32>,
        right: Range<u32>,
        triangular: bool,
    },
}

impl JobSegment {
    fn len(&self) -> u64 {
        match self {
            JobSegment::Question(range) | JobSegment::Star(range) => range.len() as u64,
            JobSegment::Binary {
                left,
                right,
                triangular,
                ..
            } => {
                if *triangular {
                    let n = left.len() as u64;
                    n * (n + 1) / 2
                } else {
                    left.len() as u64 * right.len() as u64
                }
            }
        }
    }
}

/// The resumable enumeration of one cost level's candidate constructions
/// (the loop bodies of Algorithm 1), yielding bounded chunks instead of
/// one whole-level `Vec`.
///
/// The stream is described up front by a handful of [`JobSegment`] index
/// ranges copied out of the cache's *startPoints* map — it borrows
/// nothing, so the level driver can hand the search (and the cache) to a
/// backend while the stream is suspended. Enumeration order is identical
/// to the seed's whole-level materialisation: `?`, `*`, `·` (left cost
/// ascending), `+`.
#[derive(Debug)]
struct JobStream {
    segments: Vec<JobSegment>,
    /// Current segment.
    seg: usize,
    /// Cursor within the current segment: the operand index for unary
    /// segments, the left operand index for binary ones.
    pos: u32,
    /// Right operand cursor of a binary segment.
    rpos: u32,
    /// Total candidates over all segments.
    total: u64,
}

impl JobStream {
    /// Stages the enumeration of every construction of exactly `cost`
    /// from the cached lower-cost rows.
    fn for_level(cost: u64, costs: &CostFn, cache: &LanguageCache) -> Self {
        let range_of = |c: u64| {
            let r = cache.indices_of_cost(c);
            r.start as u32..r.end as u32
        };
        let mut segments = Vec::new();
        // r? with cost(r) = cost - cost(?).
        if let Some(operand) = cost.checked_sub(costs.question) {
            let range = range_of(operand);
            if !range.is_empty() {
                segments.push(JobSegment::Question(range));
            }
        }
        // r* with cost(r) = cost - cost(*).
        if let Some(operand) = cost.checked_sub(costs.star) {
            let range = range_of(operand);
            if !range.is_empty() {
                segments.push(JobSegment::Star(range));
            }
        }
        // r·s with cost(r) + cost(s) = cost - cost(·), then r+s likewise.
        // Union is commutative, so only ordered pairs (left cost <= right
        // cost, and r >= l on the diagonal) are generated.
        for (ctor_cost, union) in [(costs.concat, false), (costs.union, true)] {
            let Some(remaining) = cost.checked_sub(ctor_cost) else {
                continue;
            };
            if remaining < 2 * costs.literal {
                continue;
            }
            for left_cost in costs.literal..=(remaining - costs.literal) {
                let right_cost = remaining - left_cost;
                if union && left_cost > right_cost {
                    break;
                }
                let left = range_of(left_cost);
                let right = range_of(right_cost);
                if left.is_empty() || right.is_empty() {
                    continue;
                }
                segments.push(JobSegment::Binary {
                    union,
                    left,
                    right,
                    triangular: union && left_cost == right_cost,
                });
            }
        }
        let total = segments.iter().map(JobSegment::len).sum();
        let mut stream = JobStream {
            segments,
            seg: 0,
            pos: 0,
            rpos: 0,
            total,
        };
        stream.rewind_cursor();
        stream
    }

    /// Total number of candidates the stream yields.
    fn total(&self) -> u64 {
        self.total
    }

    /// Positions the cursors at the start of the current segment.
    fn rewind_cursor(&mut self) {
        match self.segments.get(self.seg) {
            Some(JobSegment::Question(range)) | Some(JobSegment::Star(range)) => {
                self.pos = range.start;
            }
            Some(JobSegment::Binary { left, right, .. }) => {
                self.pos = left.start;
                // On the diagonal of a triangular segment `left == right`,
                // so starting at `right.start` is starting at `l`.
                self.rpos = right.start;
            }
            None => {}
        }
    }

    /// Appends up to `cap - out.len()` further jobs to `out`, suspending
    /// mid-segment when the cap is hit. Returns `false` once the stream
    /// is exhausted and `out` received nothing.
    fn fill(&mut self, out: &mut Vec<Job>, cap: usize) -> bool {
        let before = out.len();
        while out.len() < cap {
            let Some(segment) = self.segments.get(self.seg) else {
                break;
            };
            match segment {
                JobSegment::Question(range) | JobSegment::Star(range) => {
                    let star = matches!(segment, JobSegment::Star(_));
                    while out.len() < cap && self.pos < range.end {
                        out.push(if star {
                            Job::Star(self.pos)
                        } else {
                            Job::Question(self.pos)
                        });
                        self.pos += 1;
                    }
                    if self.pos < range.end {
                        break;
                    }
                }
                JobSegment::Binary {
                    union,
                    left,
                    right,
                    triangular,
                } => {
                    'rows: while self.pos < left.end {
                        while self.rpos < right.end {
                            if out.len() >= cap {
                                break 'rows;
                            }
                            out.push(if *union {
                                Job::Union(self.pos, self.rpos)
                            } else {
                                Job::Concat(self.pos, self.rpos)
                            });
                            self.rpos += 1;
                        }
                        self.pos += 1;
                        self.rpos = if *triangular { self.pos } else { right.start };
                    }
                    if self.pos < left.end {
                        break;
                    }
                }
            }
            self.seg += 1;
            self.rewind_cursor();
        }
        out.len() > before
    }
}

/// Computes the characteristic sequence of one candidate with the fast
/// CPU kernels (mask-based concatenation, star by squaring).
///
/// This is the kernel body shared by the sequential path
/// ([`Search::compute_row`]) and the thread-parallel workers
/// ([`LevelBatch::run_threaded`]); the data-parallel device instead runs
/// the branch-free GPU-style body in [`LevelBatch::run_on_device`].
fn compute_job_row(
    job: Job,
    row: &mut [u64],
    scratch: &mut [u64],
    cache: &LanguageCache,
    guide_masks: &GuideMasks,
    eps_index: usize,
) {
    match job {
        Job::Question(i) => csops::question_into(row, cache.row(i), eps_index),
        Job::Star(i) => csops::star_into(row, cache.row(i), guide_masks, eps_index, scratch),
        Job::Concat(l, r) => csops::concat_into(row, cache.row(l), cache.row(r), guide_masks),
        Job::Union(l, r) => csops::or_into(row, cache.row(l), cache.row(r)),
    }
}

thread_local! {
    /// Star scratch row for the device kernel body: the device schedules
    /// items rather than workers, so per-worker reusable state lives in a
    /// thread local instead of a per-item heap allocation.
    static STAR_SCRATCH: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Flag-word bit: the row was new to the uniqueness set.
const FLAG_UNIQUE: u64 = 1;
/// Flag-word bit: the row satisfies the specification.
const FLAG_SATISFIES: u64 = 2;
/// Flag-word bit: the single-block prefilter rejected the row, so the
/// full satisfaction check never ran.
const FLAG_PREFILTERED: u64 = 4;
/// Flag-word bit: admission ran for the row (prefilter and/or full fold).
/// Counted on the serial host pass into `admission_folds`, the counter
/// the refinement tier uses to prove an unchanged spec re-ran nothing.
const FLAG_CHECKED: u64 = 8;

/// The kernel-side admission protocol shared by the parallel strategies:
/// resets the per-item flag word, records uniqueness ([`FLAG_UNIQUE`])
/// through the shared concurrent set (wide rows are hashed once, while
/// still hot, inside the sharded set's insert — see
/// `ShardedSet::insert_hashed`), then runs the two-phase satisfaction
/// check:
/// the cheap single-block prefilter first ([`FLAG_PREFILTERED`] when it
/// proves the row cannot satisfy), the full mask fold only for survivors
/// ([`FLAG_SATISFIES`], lowering `found` to the earliest satisfying batch
/// index). Rows at indices above the current winner skip both phases —
/// they can neither improve the winner nor need their verdict.
#[allow(clippy::too_many_arguments)]
fn flag_computed_row(
    k: usize,
    row: &[u64],
    flags: &mut [u64],
    seen: &CsSet,
    masks: &SatisfyMasks,
    prefilter: &AdmissionPrefilter,
    on_the_fly: bool,
    allowed: usize,
    found: &AtomicU64,
) {
    flags[0] = 0;
    let unique = if on_the_fly {
        false
    } else {
        // `CsSet::insert` keys narrow rows directly off their single
        // block (no hashing at all) and hashes wide rows exactly once
        // into the pass-through shard maps — forcing a hash here would
        // only pessimize the narrow path.
        let fresh = seen.insert(row);
        if fresh {
            flags[0] |= FLAG_UNIQUE;
        }
        fresh
    };
    if !(on_the_fly || unique) {
        return;
    }
    if (found.load(Ordering::Relaxed) as usize) < k {
        // A satisfying row with a lower batch index is already known; this
        // row's verdict cannot matter.
        return;
    }
    flags[0] |= FLAG_CHECKED;
    if prefilter.rejects(row, allowed) {
        flags[0] |= FLAG_PREFILTERED;
        return;
    }
    if masks.is_satisfied_with_error(row, allowed) {
        flags[0] |= FLAG_SATISFIES;
        found.fetch_min(k as u64, Ordering::Relaxed);
    }
}

/// Result of building one cost level.
enum LevelOutcome {
    /// A satisfying row was constructed; its provenance is returned.
    Found(Provenance),
    /// The level was built (possibly partially cached); continue.
    Continue,
    /// OnTheFly mode can no longer reach the operands it needs.
    Exhausted,
    /// The stop condition fired while building the level.
    Stopped(Stop),
}

/// The outcome a [`Backend`] reports for one processed [`LevelBatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchOutcome {
    /// A satisfying candidate was found; the search reconstructs the
    /// expression from this provenance.
    Found(Provenance),
    /// Every candidate of the batch was processed without a hit.
    Continue,
}

/// The outcome of admitting one computed row via [`LevelBatch::admit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowVerdict {
    /// The row satisfies the specification.
    Found(Provenance),
    /// The row is a new unique language and was cached.
    Admitted,
    /// The row duplicates an earlier language (or OnTheFly mode is active
    /// and the row does not satisfy the specification).
    Duplicate,
    /// The cache rejected the row; the search switched to OnTheFly mode.
    Overflowed,
}

struct Search<'a> {
    params: SearchParams<'a>,
    observer: &'a mut dyn Observer,
    stop: StopCheck,
    scratch: &'a mut SessionScratch,
    ic: InfixClosure,
    /// The pair-based guide table, staged lazily: only the device
    /// strategy's GPU-style concatenation reads it, so sequential and
    /// thread-parallel runs never pay for building it.
    pair_table: OnceLock<GuideTable>,
    /// The transposed block-mask form of the guide relation, driving the
    /// bit-parallel CPU kernels (`csops::concat_into`, squared
    /// `csops::star_into`). Always staged — every strategy uses it.
    guide_masks: GuideMasks,
    masks: SatisfyMasks,
    /// The cheap first phase of admission: a single-block lower bound on
    /// the satisfaction check, staged from `masks`.
    prefilter: AdmissionPrefilter,
    width: CsWidth,
    eps_index: usize,
    /// Rows-per-claim of the work-stealing scheduler, adapted between
    /// levels from the observed steal rate.
    sched_chunk: usize,
    /// The configured (or default) chunk size: the upper bound the
    /// adaptive rule may grow `sched_chunk` back to.
    sched_chunk_cap: usize,
    /// Resolved bound on rows per streamed level chunk.
    level_chunk_rows: usize,
    cache: LanguageCache,
    seen: CsSet,
    /// Device used for statistics accounting; the backend's device when it
    /// has one, a single-threaded stand-in otherwise.
    stats_device: Device,
    stats: SynthesisStats,
    /// `true` once the cache rejected a row: new rows are no longer cached
    /// or uniqueness-checked (the paper's OnTheFly mode).
    on_the_fly: bool,
    /// The highest cost whose level was stored completely.
    last_full_cost: u64,
}

/// One batch of same-cost candidate constructions, handed to a
/// [`Backend`].
///
/// Built-in strategies are available as [`run_sequential`] and
/// [`run_on_device`]; custom backends can instead drive the
/// per-candidate primitives [`compute_row`] and [`admit`] in any order
/// or partition, as long as every candidate is eventually admitted.
///
/// [`run_sequential`]: LevelBatch::run_sequential
/// [`run_on_device`]: LevelBatch::run_on_device
/// [`compute_row`]: LevelBatch::compute_row
/// [`admit`]: LevelBatch::admit
pub struct LevelBatch<'b, 'a> {
    search: &'b mut Search<'a>,
    jobs: &'b [Job],
    cost: u64,
}

impl LevelBatch<'_, '_> {
    /// Number of candidate constructions in this batch.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The cost of the level this batch belongs to.
    pub fn cost(&self) -> u64 {
        self.cost
    }

    /// Width of a characteristic-sequence row, in `u64` words.
    pub fn row_blocks(&self) -> usize {
        self.search.width.blocks()
    }

    /// Computes the characteristic sequence of candidate `k` into `row`.
    /// `scratch` must be another `row_blocks()`-sized buffer (used by the
    /// star fixpoint).
    pub fn compute_row(&self, k: usize, row: &mut [u64], scratch: &mut [u64]) {
        self.search.compute_row(self.jobs[k], row, scratch);
    }

    /// Runs candidate `k`'s computed row through the uniqueness check, the
    /// satisfaction check and the cache (the admission pipeline of
    /// Algorithm 1).
    pub fn admit(&mut self, k: usize, row: &[u64]) -> RowVerdict {
        self.search.admit(row, self.jobs[k], self.cost)
    }

    /// The reference strategy: one candidate at a time with early exits.
    pub fn run_sequential(&mut self) -> BatchOutcome {
        let blocks = self.row_blocks();
        // One streamed level chunk is one unit of claimed work here.
        self.search.stats.chunks_claimed += 1;
        let mut row = vec![0u64; blocks];
        let mut scratch = vec![0u64; blocks];
        for k in 0..self.jobs.len() {
            self.compute_row(k, &mut row, &mut scratch);
            if let RowVerdict::Found(prov) = self.admit(k, &row) {
                return BatchOutcome::Found(prov);
            }
        }
        BatchOutcome::Continue
    }

    /// The data-parallel strategy: a single kernel computes each candidate
    /// row *and* performs the uniqueness insertion (into the WarpCore-style
    /// concurrent set) and the satisfaction check; the host then only
    /// copies the surviving rows into the language cache.
    ///
    /// Item `k` of the launch owns the `k`-th chunk of the batch buffer,
    /// laid out as `row_blocks()` row words followed by one flag word
    /// (bit 0 = unique, bit 1 = satisfies the specification).
    pub fn run_on_device(&mut self, device: &Device) -> BatchOutcome {
        let blocks = self.row_blocks();
        let stride = blocks + 1;
        let batch = self.jobs;
        // The batch buffer is session state: warm across batches, levels
        // and runs, never larger than one streamed level chunk.
        let mut batch_rows = std::mem::take(&mut self.search.scratch.batch_rows);
        if batch_rows.len() < batch.len() * stride {
            batch_rows.resize(batch.len() * stride, 0);
        }

        if !self.search.on_the_fly {
            // The level driver reserved the uniqueness table before the
            // level started; this is the cheap safety net that keeps the
            // invariant local. Every row of the launch attempts an
            // insertion (the device kernel has no chunk skipping), so the
            // bulk-recorded count is exact.
            self.search.seen.reserve(batch.len());
            device.record_hash_insertions(batch.len() as u64);
        }
        // One streamed level chunk is one kernel launch (and one unit of
        // claimed work) on this strategy.
        self.search.stats.chunks_claimed += 1;
        let buf = &mut batch_rows[..batch.len() * stride];
        let found = AtomicU64::new(u64::MAX);
        {
            let cache = &self.search.cache;
            let guide = self.search.pair_table();
            let guide_masks = &self.search.guide_masks;
            let masks = &self.search.masks;
            let prefilter = &self.search.prefilter;
            let seen = &self.search.seen;
            let eps = self.search.eps_index;
            let allowed = self.search.params.allowed_errors;
            let on_the_fly = self.search.on_the_fly;
            let num_words = guide.num_words();
            let found = &found;
            device.launch_chunks("build-level", buf, stride, move |k, chunk| {
                let (row, flags) = chunk.split_at_mut(blocks);
                match batch[k] {
                    Job::Concat(l, r) => {
                        // GPU-style kernel: fold over every word with no
                        // data-dependent early exit (cf. Algorithm 2). The
                        // output row must be cleared first because the
                        // batch buffer is reused across launches.
                        csops::clear(row);
                        let (a, b) = (cache.row(l), cache.row(r));
                        for w in 0..num_words {
                            if csops::concat_word_bit(a, b, guide, w) {
                                csops::set_bit(row, w);
                            }
                        }
                    }
                    // The device schedules items, not workers, so the star
                    // scratch row lives in a thread local instead of a
                    // per-worker stack slot.
                    job => STAR_SCRATCH.with(|cell| {
                        let mut scratch = cell.borrow_mut();
                        scratch.resize(blocks, 0);
                        compute_job_row(job, row, &mut scratch, cache, guide_masks, eps);
                    }),
                }
                flag_computed_row(
                    k, row, flags, seen, masks, prefilter, on_the_fly, allowed, found,
                );
            });
        }

        let outcome = self.flush_unique_rows(buf, stride, found.load(Ordering::Relaxed));
        self.search.scratch.batch_rows = batch_rows;
        outcome
    }

    /// The thread-parallel CPU strategy: the batch is cut into fixed-size
    /// chunks of candidate rows which worker threads claim through the
    /// work-stealing [`StealScheduler`] — each worker drains its own
    /// range of chunks through an atomic cursor, then steals chunks from
    /// its peers, so a skewed batch (a few expensive star rows in one
    /// region) cannot leave cores idle the way the old static
    /// one-span-per-worker split could. Each worker computes its claimed
    /// candidates with the fast sequential kernels (mask-based
    /// concatenation, star by squaring) into the chunk's span of the
    /// batch buffer, using a private star scratch row and the shared
    /// concurrent [`CsSet`] for the global uniqueness check; chunks whose
    /// base index lies above the shared `found` winner are skipped
    /// without running any kernel. The host then performs the same
    /// admission pass as the device strategy.
    ///
    /// Compared to [`run_on_device`](LevelBatch::run_on_device) this is
    /// the pragmatic multi-core backend: chunk claiming is one atomic
    /// `fetch_add` (no per-block channel traffic), scratch rows are
    /// per-thread, and the kernels are the bit-parallel CPU bodies
    /// instead of the branch-free GPU ones.
    pub fn run_threaded(&mut self, threads: usize) -> BatchOutcome {
        let blocks = self.row_blocks();
        let stride = blocks + 1;
        let batch = self.jobs;
        if batch.is_empty() {
            return BatchOutcome::Continue;
        }
        let threads = threads.clamp(1, batch.len());
        let chunk_rows = self.search.sched_chunk.min(batch.len());
        let mut batch_rows = std::mem::take(&mut self.search.scratch.batch_rows);
        if batch_rows.len() < batch.len() * stride {
            batch_rows.resize(batch.len() * stride, 0);
        }

        if !self.search.on_the_fly {
            // The level driver reserved the uniqueness table before the
            // level started; this safety net keeps the invariant local.
            self.search.seen.reserve(batch.len());
        }
        self.search.stats_device.record_launch(batch.len());
        let buf = &mut batch_rows[..batch.len() * stride];
        let found = AtomicU64::new(u64::MAX);
        // Scheduler telemetry, aggregated once per worker (never on the
        // kernel hot path): chunks claimed, chunks stolen, and rows
        // skipped by the early-winner cutoff — the latter also corrects
        // the hash-insertion accounting below.
        let claimed = AtomicU64::new(0);
        let stolen = AtomicU64::new(0);
        let skipped_rows = AtomicU64::new(0);
        {
            let cache = &self.search.cache;
            let guide_masks = &self.search.guide_masks;
            let masks = &self.search.masks;
            let prefilter = &self.search.prefilter;
            let seen = &self.search.seen;
            let eps = self.search.eps_index;
            let allowed = self.search.params.allowed_errors;
            let on_the_fly = self.search.on_the_fly;
            let found = &found;
            let kernel = |k: usize, chunk: &mut [u64], scratch: &mut [u64]| {
                let (row, flags) = chunk.split_at_mut(blocks);
                compute_job_row(batch[k], row, scratch, cache, guide_masks, eps);
                flag_computed_row(
                    k, row, flags, seen, masks, prefilter, on_the_fly, allowed, found,
                );
            };
            if threads == 1 {
                // Single worker: run inline, no thread spawn, no
                // scheduler (keeps the backend graceful on single-core
                // hosts). The whole batch is one claimed chunk.
                claimed.fetch_add(1, Ordering::Relaxed);
                let mut scratch = vec![0u64; blocks];
                for (k, chunk) in buf.chunks_mut(stride).enumerate() {
                    kernel(k, chunk, &mut scratch);
                }
            } else {
                // Hand each chunk's span of the batch buffer over through
                // a once-per-chunk mutex slot: the scheduler arbitrates
                // indices, the slot transfers the `&mut` ownership.
                let spans: Vec<Mutex<Option<&mut [u64]>>> = buf
                    .chunks_mut(chunk_rows * stride)
                    .map(|span| Mutex::new(Some(span)))
                    .collect();
                let num_chunks = spans.len();
                let sched = StealScheduler::new(num_chunks, threads);
                let (spans, sched, kernel) = (&spans, &sched, &kernel);
                let (claimed, stolen, skipped_rows) = (&claimed, &stolen, &skipped_rows);
                crossbeam::scope(|scope| {
                    for worker in 0..threads {
                        scope.spawn(move |_| {
                            let mut scratch = vec![0u64; blocks];
                            let (mut my_claimed, mut my_stolen, mut my_skipped) =
                                (0u64, 0u64, 0u64);
                            while let Some(claim) = sched.claim(worker) {
                                my_claimed += 1;
                                my_stolen += u64::from(claim.stolen);
                                let base = claim.chunk * chunk_rows;
                                let span = spans[claim.chunk]
                                    .lock()
                                    .take()
                                    .expect("chunk claimed twice");
                                if (found.load(Ordering::Relaxed) as usize) < base {
                                    // A satisfying row below every index of
                                    // this chunk is already known: clear the
                                    // (reused) flag words and skip the
                                    // kernels entirely.
                                    for chunk in span.chunks_mut(stride) {
                                        chunk[blocks] = 0;
                                        my_skipped += 1;
                                    }
                                    continue;
                                }
                                for (offset, chunk) in span.chunks_mut(stride).enumerate() {
                                    kernel(base + offset, chunk, &mut scratch);
                                }
                            }
                            claimed.fetch_add(my_claimed, Ordering::Relaxed);
                            stolen.fetch_add(my_stolen, Ordering::Relaxed);
                            skipped_rows.fetch_add(my_skipped, Ordering::Relaxed);
                        });
                    }
                })
                .expect("level worker panicked");
            }
        }

        // Account hash insertions from the rows that actually reached the
        // set: everything except the chunks the early-winner cutoff
        // skipped (in OnTheFly mode nothing is inserted at all).
        if !self.search.on_the_fly {
            let processed = batch.len() as u64 - skipped_rows.load(Ordering::Relaxed);
            self.search.stats_device.record_hash_insertions(processed);
        }
        self.search.stats.chunks_claimed += claimed.load(Ordering::Relaxed);
        self.search.stats.chunks_stolen += stolen.load(Ordering::Relaxed);

        let outcome = self.flush_unique_rows(buf, stride, found.load(Ordering::Relaxed));
        self.search.scratch.batch_rows = batch_rows;
        outcome
    }

    /// Host-side admission pass shared by the parallel strategies:
    /// accounts for unique rows and copies them into the write-once cache
    /// (the paper's temporary-buffer → cache copy). `winner` is the
    /// smallest batch index whose row satisfied the specification, or
    /// `u64::MAX`.
    fn flush_unique_rows(&mut self, buf: &[u64], stride: usize, winner: u64) -> BatchOutcome {
        let blocks = self.row_blocks();
        let mut prefiltered = 0u64;
        let mut checked = 0u64;
        for (k, chunk) in buf.chunks(stride).enumerate() {
            let (row, flags) = chunk.split_at(blocks);
            // The kernels record prefilter rejections in the flag word so
            // that counting happens here, on the serial host pass, instead
            // of on a contended counter inside the kernels.
            prefiltered += u64::from(flags[0] & FLAG_PREFILTERED != 0);
            checked += u64::from(flags[0] & FLAG_CHECKED != 0);
            if flags[0] & FLAG_UNIQUE == 0 {
                continue;
            }
            self.search.stats.unique_languages += 1;
            if winner != u64::MAX {
                // A satisfying row exists in this batch: nothing after it
                // needs caching, exactly as in the sequential early return.
                continue;
            }
            if !self.search.on_the_fly
                && self
                    .search
                    .cache
                    .push(row, self.jobs[k].provenance(), self.cost)
                    .is_none()
            {
                self.search.enter_on_the_fly();
            }
        }
        self.search.stats.prefilter_rejects += prefiltered;
        self.search.stats.admission_folds += checked;
        if winner != u64::MAX {
            return BatchOutcome::Found(self.jobs[winner as usize].provenance());
        }
        BatchOutcome::Continue
    }
}

/// Search state a refinement session retains between runs: the infix
/// closure, its guide masks, the complete cached levels of the previous
/// enumeration and the highest fully stored cost. A resumed run rebuilds
/// everything spec-dependent (satisfaction masks, admission prefilter,
/// uniqueness set) against the *new* specification and continues
/// enumeration at `last_full_cost + 1`.
///
/// Soundness of resuming rests on two facts (see DESIGN.md "Interactive
/// refinement"): candidate *construction* is spec-independent, so the
/// retained levels are exactly what a cold run over the same closure
/// would rebuild; and characteristic-sequence operations over an
/// infix-closed word set are compositional, so a retained closure that is
/// a superset of the new spec's own closure distinguishes at least as
/// much and can only keep more representatives, never lose a witness.
#[derive(Debug)]
pub(crate) struct ResumeState {
    pub ic: InfixClosure,
    pub guide_masks: GuideMasks,
    pub cache: LanguageCache,
    pub last_full_cost: u64,
}

impl ResumeState {
    /// Whether every word of `spec` is indexed by the retained closure —
    /// the closure-preservation gate of the warm refinement tier.
    pub fn covers(&self, spec: &Spec) -> bool {
        spec.positive()
            .iter()
            .chain(spec.negative())
            .all(|w| self.ic.index_of(w).is_some())
    }

    /// Rows retained from the previous run.
    pub fn retained_rows(&self) -> u64 {
        self.cache.len() as u64
    }
}

/// Runs the full search. Trivial specifications (`P = ∅`, `P = {ε}` and
/// the corresponding relaxed checks) are handled by the caller. The run
/// optionally resumes from a previous run's [`ResumeState`] and hands
/// back the state a refinement session may retain for the next run; the
/// returned state is `None` when the cached levels are not the complete
/// enumeration (OnTheFly mode) or the run was stopped mid-level
/// (timeout/cancellation), in which case the next refinement must go
/// cold.
pub(crate) fn run_retaining(
    params: SearchParams<'_>,
    backend: &dyn Backend,
    observer: &mut dyn Observer,
    stop: StopCheck,
    scratch: &mut SessionScratch,
    resume: Option<ResumeState>,
) -> (Result<SynthesisResult, SynthesisError>, Option<ResumeState>) {
    let max_cost = params.max_cost;
    let start_cost = match &resume {
        Some(state) => state.last_full_cost + 1,
        None => params.costs.literal + 1,
    };
    let fresh = resume.is_none();
    let mut search = Search::new(params, backend, observer, stop, scratch, resume);

    if fresh {
        // Seed the cache with the characteristic sequences of the alphabet
        // characters (line 6 of Algorithm 1), checking each for
        // satisfaction. A resumed run keeps the retained levels instead:
        // every literal (and every retained composite row) was admitted
        // and rejected under the weaker previous spec, and admission is
        // monotone under example supersets, so re-checking them cannot
        // produce a winner.
        if let Some(found) = search.seed_alphabet() {
            let result = search.finish(found);
            return (Ok(result), search.into_retained());
        }
    }

    for cost in start_cost..=max_cost {
        match search.step_level(cost, backend) {
            LevelOutcome::Found(prov) => {
                let result = search.finish(prov);
                return (Ok(result), search.into_retained());
            }
            LevelOutcome::Continue => {}
            LevelOutcome::Exhausted => {
                return (
                    Err(SynthesisError::OutOfMemory {
                        last_complete_cost: search.last_full_cost,
                        stats: search.final_stats(),
                    }),
                    None,
                );
            }
            LevelOutcome::Stopped(stop) => return (Err(search.stopped(stop)), None),
        }
    }

    let stats = search.final_stats();
    let retained = search.into_retained();
    (Err(SynthesisError::NotFound { max_cost, stats }), retained)
}

/// One member of a fused multi-request sweep: its own problem and its own
/// stop condition, sharing the caller's backend with its batch-mates.
pub(crate) struct FusedMember<'a> {
    pub params: SearchParams<'a>,
    pub stop: StopCheck,
}

/// Runs several searches as **one fused level sweep**: the members advance
/// in lock step, one cost level at a time, so a pool worker amortises its
/// scheduling loop, stop polling and per-level bookkeeping over every
/// queued request it drained. Each member keeps its own closure, guide
/// masks, cache and uniqueness set (the specs differ, so rows live in per-
/// member buffers — the winner *slot* is per member, not per batch), and
/// its own [`StopCheck`] is polled at the usual chunk boundaries inside
/// its levels, so cancelling or timing out one member retires only that
/// slot; its batch-mates keep sweeping. A member whose winner lands at an
/// early level completes immediately (partial completion) while the rest
/// continue to their own outcomes. Results are returned in member order.
///
/// `observers` carries one [`Observer`] per member (same order); each
/// member's observer sees that member's per-level events only.
pub(crate) fn run_fused<'a>(
    members: Vec<FusedMember<'a>>,
    observers: Vec<&'a mut dyn Observer>,
    backend: &dyn Backend,
) -> Vec<Result<SynthesisResult, SynthesisError>> {
    enum Slot<'a> {
        Active(Box<Search<'a>>),
        Done(Result<SynthesisResult, SynthesisError>),
    }

    debug_assert_eq!(members.len(), observers.len());
    let mut scratches: Vec<SessionScratch> =
        members.iter().map(|_| SessionScratch::default()).collect();
    let mut first_cost = u64::MAX;
    let mut slots: Vec<Slot> = Vec::with_capacity(members.len());
    for ((member, observer), scratch) in
        members.into_iter().zip(observers).zip(scratches.iter_mut())
    {
        first_cost = first_cost.min(member.params.costs.literal + 1);
        let mut search = Search::new(member.params, backend, observer, member.stop, scratch, None);
        slots.push(match search.seed_alphabet() {
            Some(found) => Slot::Done(Ok(search.finish(found))),
            None => Slot::Active(Box::new(search)),
        });
    }

    let mut cost = first_cost;
    while slots.iter().any(|slot| matches!(slot, Slot::Active(_))) {
        for slot in &mut slots {
            let Slot::Active(search) = slot else { continue };
            let done = if cost > search.params.max_cost {
                Some(Err(SynthesisError::NotFound {
                    max_cost: search.params.max_cost,
                    stats: search.final_stats(),
                }))
            } else if cost <= search.params.costs.literal {
                // This member's first composite level is still ahead
                // (mixed cost functions); it idles until the sweep
                // reaches it.
                None
            } else {
                match search.step_level(cost, backend) {
                    LevelOutcome::Found(prov) => Some(Ok(search.finish(prov))),
                    LevelOutcome::Continue => None,
                    LevelOutcome::Exhausted => Some(Err(SynthesisError::OutOfMemory {
                        last_complete_cost: search.last_full_cost,
                        stats: search.final_stats(),
                    })),
                    LevelOutcome::Stopped(stop) => Some(Err(search.stopped(stop))),
                }
            };
            if let Some(result) = done {
                *slot = Slot::Done(result);
            }
        }
        cost += 1;
    }

    slots
        .into_iter()
        .map(|slot| match slot {
            Slot::Done(result) => result,
            Slot::Active(_) => unreachable!("active member after fused sweep"),
        })
        .collect()
}

impl<'a> Search<'a> {
    /// Stages everything one sweep needs for one specification: infix
    /// closure, guide masks, satisfaction masks, admission prefilter,
    /// language cache and uniqueness set. Shared by the single-spec
    /// [`run`] and the fused [`run_fused`] drivers.
    fn new(
        params: SearchParams<'a>,
        backend: &dyn Backend,
        observer: &'a mut dyn Observer,
        stop: StopCheck,
        scratch: &'a mut SessionScratch,
        resume: Option<ResumeState>,
    ) -> Search<'a> {
        let (ic, guide_masks, cache, last_full_cost) = match resume {
            Some(state) => (
                state.ic,
                state.guide_masks,
                state.cache,
                state.last_full_cost,
            ),
            None => {
                let ic = InfixClosure::of_spec(params.spec);
                let guide_masks = GuideMasks::build(&ic);
                let cache = LanguageCache::new(ic.width(), params.memory_budget);
                (ic, guide_masks, cache, 0)
            }
        };
        let masks = SatisfyMasks::new(params.spec, &ic);
        let prefilter = masks.prefilter();
        let width = ic.width();
        let eps_index = ic
            .eps_index()
            .expect("non-trivial spec has a non-empty closure");
        let sched_chunk = params.sched_chunk.unwrap_or(DEFAULT_SCHED_CHUNK).max(1);
        let level_chunk_rows = params
            .level_chunk_rows
            .unwrap_or_else(|| default_level_chunk_rows(params.memory_budget, width.blocks() + 1))
            .max(1);
        // The uniqueness table starts small and is grown between kernel
        // launches as the cache fills (see `CsSet::maybe_grow`). On a
        // resumed run it is re-keyed from the retained rows: the retained
        // cache holds exactly the unique representatives of the complete
        // levels, so re-inserting them restores the dedup state a cold
        // run would have reached at this point.
        let mut seen = CsSet::new(width.blocks(), 4096.min(cache.capacity_rows()));
        if !cache.is_empty() {
            seen.reserve(cache.len());
            for idx in 0..cache.len() as u32 {
                seen.insert(cache.row(idx));
            }
        }
        let stats_device = backend.device().cloned().unwrap_or_else(Device::sequential);
        let stats = SynthesisStats {
            infix_closure_size: ic.len() as u64,
            ..Default::default()
        };

        Search {
            params,
            observer,
            stop,
            scratch,
            ic,
            pair_table: OnceLock::new(),
            guide_masks,
            masks,
            prefilter,
            width,
            eps_index,
            sched_chunk,
            sched_chunk_cap: sched_chunk,
            level_chunk_rows,
            cache,
            seen,
            stats_device,
            stats,
            on_the_fly: false,
            last_full_cost,
        }
    }

    /// Extracts the state a refinement session may retain: `None` once
    /// OnTheFly mode discarded rows (the cached levels then no longer
    /// hold the complete enumeration), otherwise the closure, guide masks
    /// and the cache truncated back to the last *complete* level (a
    /// winning level is only partially stored).
    fn into_retained(self) -> Option<ResumeState> {
        if self.on_the_fly || self.last_full_cost < self.params.costs.literal {
            return None;
        }
        let mut cache = self.cache;
        cache.truncate_to_cost(self.last_full_cost);
        Some(ResumeState {
            ic: self.ic,
            guide_masks: self.guide_masks,
            cache,
            last_full_cost: self.last_full_cost,
        })
    }

    /// Advances the search by one cost level: the unified stop check at
    /// the level boundary, then the level build, then the steal-rate
    /// feedback on the work-stealing chunk size.
    fn step_level(&mut self, cost: u64, backend: &dyn Backend) -> LevelOutcome {
        if let Some(stop) = self.stop.poll() {
            return LevelOutcome::Stopped(stop);
        }
        self.stats.max_cost_reached = cost;
        let claimed_before = self.stats.chunks_claimed;
        let stolen_before = self.stats.chunks_stolen;
        let outcome = self.build_level(cost, backend);
        self.adapt_sched_chunk(
            self.stats.chunks_claimed - claimed_before,
            self.stats.chunks_stolen - stolen_before,
        );
        outcome
    }

    /// Applies [`adapted_sched_chunk`] to one level's scheduler counters:
    /// a contended level halves the next level's chunk, a calm one grows
    /// it back towards the configured cap. Single-worker strategies claim
    /// without stealing, so the chunk settles at the cap and the rule
    /// degrades to a no-op.
    fn adapt_sched_chunk(&mut self, claimed: u64, stolen: u64) {
        self.sched_chunk =
            adapted_sched_chunk(self.sched_chunk, self.sched_chunk_cap, claimed, stolen);
    }
    /// The pair-based guide table, built on first use (only the device
    /// strategy reads it).
    fn pair_table(&self) -> &GuideTable {
        self.pair_table.get_or_init(|| GuideTable::build(&self.ic))
    }

    fn seed_alphabet(&mut self) -> Option<Provenance> {
        let cost = self.params.costs.literal;
        self.stats.max_cost_reached = cost;
        let alphabet = self.params.alphabet.clone();
        for &a in alphabet.symbols() {
            let row = self.ic.cs_of_literal(a);
            self.stats.candidates_generated += 1;
            self.stats_device.record_hash_insertions(1);
            if !self.seen.insert(row.blocks()) {
                continue;
            }
            self.stats.unique_languages += 1;
            self.stats.admission_folds += 1;
            if self
                .masks
                .is_satisfied_with_error(row.blocks(), self.params.allowed_errors)
            {
                return Some(Provenance::Literal(a));
            }
            if self
                .cache
                .push(row.blocks(), Provenance::Literal(a), cost)
                .is_none()
            {
                // A memory budget too small even for the alphabet: OnTheFly
                // from the start; nothing will ever be cached.
                self.enter_on_the_fly();
            }
        }
        if !self.on_the_fly {
            self.last_full_cost = cost;
        }
        self.push_level(LevelStats {
            cost,
            candidates: alphabet.len() as u64,
            unique: self.stats.unique_languages,
            cached: self.cache.len() as u64,
        });
        None
    }

    fn enter_on_the_fly(&mut self) {
        self.on_the_fly = true;
        self.stats.used_on_the_fly = true;
    }

    /// Records a completed level and reports it to the observer.
    fn push_level(&mut self, level: LevelStats) {
        self.stats.levels.push(level);
        self.observer.on_level(&level);
    }

    /// Converts a fired stop condition into the corresponding error.
    fn stopped(&self, stop: Stop) -> SynthesisError {
        match stop {
            Stop::TimedOut => SynthesisError::Timeout {
                budget: self.stop.budget,
                stats: self.final_stats(),
            },
            Stop::Cancelled => SynthesisError::Cancelled {
                stats: self.final_stats(),
            },
        }
    }

    /// The highest operand cost any constructor may need when building
    /// languages of cost `cost`.
    fn max_operand_cost(&self, cost: u64) -> u64 {
        cost.saturating_sub(self.params.costs.min_constructor_cost())
    }

    /// The shared level driver: streams the level's candidate
    /// constructions in bounded chunks through the backend. Every
    /// strategy — sequential, thread-parallel and data-parallel — consumes
    /// the same stream; none of them ever sees (or allocates for) more
    /// than `level_chunk_rows` candidates at once, and the stop condition
    /// is polled at every chunk boundary, so cancellation lands mid-level
    /// instead of waiting out a giant level.
    fn build_level(&mut self, cost: u64, backend: &dyn Backend) -> LevelOutcome {
        if self.on_the_fly && self.max_operand_cost(cost) > self.last_full_cost {
            // OnTheFly mode would need operand levels that were never
            // (fully) cached: the search cannot make further progress
            // without violating minimality, so it stops (paper: the
            // out-of-memory outcome).
            return LevelOutcome::Exhausted;
        }
        let mut stream = JobStream::for_level(cost, &self.params.costs, &self.cache);
        let candidates = stream.total();
        self.stats.candidates_generated += candidates;
        let unique_before = self.stats.unique_languages;
        let cached_before = self.cache.len() as u64;

        if !self.on_the_fly {
            // Size the uniqueness table once, before the level streams.
            // The estimate is the level's candidate count scaled by the
            // dedup rate observed so far (with 2x headroom) — most
            // candidates are duplicates, so reserving for every candidate
            // would spike peak memory for nothing — and is clamped by the
            // hard bound on unique insertions: the cache's remaining row
            // capacity plus one chunk (after the cache rejects a row the
            // search flips to OnTheFly mode and stops inserting). The
            // chunk slack is capped at the default launch bound so an
            // explicit whole-level `level_chunk_rows` (e.g. `usize::MAX`)
            // cannot turn the reservation into a level-sized allocation.
            // An undershoot is safe: the per-batch reserves inside the
            // strategies still grow the table between launches, and an
            // outrun narrow table degrades gracefully
            // (`dedup_overflowed`).
            let observed = if self.stats.candidates_generated > 0 {
                let rate =
                    self.stats.unique_languages as f64 / self.stats.candidates_generated as f64;
                (candidates as f64 * (rate * 2.0).min(1.0)) as usize
            } else {
                candidates as usize
            };
            let remaining = self.cache.capacity_rows().saturating_sub(self.cache.len());
            let slack = self.level_chunk_rows.min(MAX_LEVEL_CHUNK_ROWS);
            let expected = observed
                .max(slack)
                .min(candidates as usize)
                .min(remaining.saturating_add(slack));
            self.seen.reserve(expected);
        }

        let mut jobs = std::mem::take(&mut self.scratch.jobs);
        let cap = self.level_chunk_rows;
        let mut outcome = LevelOutcome::Continue;
        loop {
            jobs.clear();
            if !stream.fill(&mut jobs, cap) {
                break;
            }
            if let Some(stop) = self.stop.poll() {
                outcome = LevelOutcome::Stopped(stop);
                break;
            }
            let mut batch = LevelBatch {
                search: self,
                jobs: &jobs,
                cost,
            };
            if let BatchOutcome::Found(prov) = backend.process(&mut batch) {
                outcome = LevelOutcome::Found(prov);
                break;
            }
        }
        self.scratch.jobs = jobs;
        if !matches!(outcome, LevelOutcome::Continue) {
            return outcome;
        }

        // Once the cache has rejected a row the level is not fully stored
        // (and `on_the_fly` stays set), so level completeness is exactly
        // the absence of OnTheFly mode.
        if !self.on_the_fly {
            self.last_full_cost = cost;
        }
        // Per-level breakdown for fully processed levels (levels cut short
        // by a satisfying row or a stop are not recorded).
        self.push_level(LevelStats {
            cost,
            candidates,
            unique: self.stats.unique_languages - unique_before,
            cached: self.cache.len() as u64 - cached_before,
        });
        LevelOutcome::Continue
    }

    fn compute_row(&self, job: Job, row: &mut [u64], scratch: &mut [u64]) {
        compute_job_row(
            job,
            row,
            scratch,
            &self.cache,
            &self.guide_masks,
            self.eps_index,
        );
    }

    /// The two-phase satisfaction check: the single-block prefilter
    /// first, the full mask fold only when the prefilter cannot already
    /// reject the row.
    fn row_satisfies(&mut self, row: &[u64]) -> bool {
        let allowed = self.params.allowed_errors;
        self.stats.admission_folds += 1;
        if self.prefilter.rejects(row, allowed) {
            self.stats.prefilter_rejects += 1;
            return false;
        }
        self.masks.is_satisfied_with_error(row, allowed)
    }

    fn admit(&mut self, row: &[u64], job: Job, cost: u64) -> RowVerdict {
        self.seen.maybe_grow();
        if self.on_the_fly {
            // OnTheFly: no uniqueness check, no caching — only the
            // satisfaction check (which preserves precision/minimality).
            if self.row_satisfies(row) {
                return RowVerdict::Found(job.provenance());
            }
            return RowVerdict::Duplicate;
        }
        self.stats_device.record_hash_insertions(1);
        if !self.seen.insert(row) {
            return RowVerdict::Duplicate;
        }
        self.stats.unique_languages += 1;
        if self.row_satisfies(row) {
            return RowVerdict::Found(job.provenance());
        }
        if self.cache.push(row, job.provenance(), cost).is_none() {
            self.enter_on_the_fly();
            return RowVerdict::Overflowed;
        }
        RowVerdict::Admitted
    }

    fn final_stats(&self) -> SynthesisStats {
        let mut stats = self.stats.clone();
        stats.cache_rows = self.cache.len() as u64;
        stats.cache_bytes = self.cache.memory_bytes() as u64;
        stats.dedup_overflowed = self.seen.overflowed();
        stats.sched_chunk = self.sched_chunk as u64;
        stats.elapsed = self.params.started.elapsed();
        stats
    }

    fn finish(&self, provenance: Provenance) -> SynthesisResult {
        let regex = self.cache.reconstruct(provenance);
        let cost = regex.cost(&self.params.costs);
        debug_assert!(
            self.params.spec.misclassified_by(&regex) <= self.params.allowed_errors,
            "reconstructed expression {regex} does not satisfy the specification"
        );
        SynthesisResult {
            regex,
            cost,
            stats: self.final_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_provenance_round_trip() {
        assert_eq!(Job::Question(3).provenance(), Provenance::Question(3));
        assert_eq!(Job::Star(4).provenance(), Provenance::Star(4));
        assert_eq!(Job::Concat(1, 2).provenance(), Provenance::Concat(1, 2));
        assert_eq!(Job::Union(5, 6).provenance(), Provenance::Union(5, 6));
    }

    #[test]
    fn sched_chunk_adapts_to_steal_rate() {
        // Contended level: halve.
        assert_eq!(adapted_sched_chunk(64, 64, 100, 40), 32);
        // Calm level: grow back ...
        assert_eq!(adapted_sched_chunk(32, 64, 100, 2), 64);
        // ... but never beyond the configured cap.
        assert_eq!(adapted_sched_chunk(64, 64, 100, 2), 64);
        // Floored so scheduler overhead cannot dominate.
        assert_eq!(adapted_sched_chunk(8, 64, 100, 90), 8);
        // A cap below the floor wins (explicitly tiny configuration).
        assert_eq!(adapted_sched_chunk(4, 4, 100, 90), 4);
        // Moderate steal rate: hold steady.
        assert_eq!(adapted_sched_chunk(64, 64, 100, 15), 64);
        // No claims at all (empty level): hold steady.
        assert_eq!(adapted_sched_chunk(32, 64, 0, 0), 32);
    }

    #[test]
    fn stop_check_polls_cancel_and_deadline() {
        assert!(StopCheck::default().poll().is_none());

        let token = CancelToken::new();
        let stop = StopCheck {
            cancel: Some(token.clone()),
            ..StopCheck::default()
        };
        assert!(stop.poll().is_none());
        token.cancel();
        assert!(matches!(stop.poll(), Some(Stop::Cancelled)));

        let expired = StopCheck {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            budget: Duration::ZERO,
            cancel: None,
        };
        assert!(matches!(expired.poll(), Some(Stop::TimedOut)));
    }
}
