//! The bottom-up, cost-ordered search over characteristic sequences.
//!
//! This module implements Algorithms 1 and 2 of the paper. The search is
//! parameterised by an [`Engine`]: the sequential engine computes candidate
//! rows one at a time with early exits, the parallel engine computes each
//! cost level as batches of data-parallel kernel items on a
//! [`gpu_sim::Device`] and then performs the uniqueness / satisfaction pass
//! over the temporary batch, mirroring the temporary-buffer → cache copy of
//! the paper's GPU implementation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use gpu_sim::hashset::CsSet;
use gpu_sim::Device;
use rei_lang::{csops, Alphabet, CsWidth, GuideTable, InfixClosure, SatisfyMasks, Spec};
use rei_syntax::CostFn;

use crate::cache::{LanguageCache, Provenance};
use crate::result::{LevelStats, SynthesisError, SynthesisResult, SynthesisStats};
use crate::Engine;

/// Number of candidate rows materialised per kernel launch by the parallel
/// engine. Bounds the size of the temporary device buffer.
const PARALLEL_BATCH: usize = 1 << 16;

/// Everything the search needs, assembled by [`crate::Synthesizer`].
pub(crate) struct SearchParams<'a> {
    pub spec: &'a Spec,
    pub alphabet: Alphabet,
    pub costs: CostFn,
    pub engine: &'a Engine,
    pub memory_budget: usize,
    pub allowed_errors: usize,
    pub max_cost: u64,
    pub time_budget: Option<Duration>,
    pub started: Instant,
}

/// A candidate construction at the current cost level: the outermost
/// constructor plus cache indices of its operands.
#[derive(Debug, Clone, Copy)]
enum Job {
    Question(u32),
    Star(u32),
    Concat(u32, u32),
    Union(u32, u32),
}

impl Job {
    fn provenance(self) -> Provenance {
        match self {
            Job::Question(i) => Provenance::Question(i),
            Job::Star(i) => Provenance::Star(i),
            Job::Concat(l, r) => Provenance::Concat(l, r),
            Job::Union(l, r) => Provenance::Union(l, r),
        }
    }
}

/// Result of building one cost level.
enum LevelOutcome {
    /// A satisfying row was constructed; its provenance is returned.
    Found(Provenance),
    /// The level was built (possibly partially cached); continue.
    Continue,
    /// OnTheFly mode can no longer reach the operands it needs.
    Exhausted,
    /// The wall-clock budget expired while building the level.
    TimedOut,
}

struct Search<'a> {
    params: SearchParams<'a>,
    guide: GuideTable,
    masks: SatisfyMasks,
    width: CsWidth,
    eps_index: usize,
    cache: LanguageCache,
    seen: CsSet,
    device: Device,
    stats: SynthesisStats,
    /// `true` once the cache rejected a row: new rows are no longer cached
    /// or uniqueness-checked (the paper's OnTheFly mode).
    on_the_fly: bool,
    /// The highest cost whose level was stored completely.
    last_full_cost: u64,
}

/// Runs the full search. Trivial specifications (`P = ∅`, `P = {ε}` and the
/// corresponding relaxed checks) are handled by the caller.
pub(crate) fn run(params: SearchParams<'_>) -> Result<SynthesisResult, SynthesisError> {
    let ic = InfixClosure::of_spec(params.spec);
    let guide = GuideTable::build(&ic);
    let masks = SatisfyMasks::new(params.spec, &ic);
    let width = ic.width();
    let eps_index = ic.eps_index().expect("non-trivial spec has a non-empty closure");
    let cache = LanguageCache::new(width, params.memory_budget);
    // The uniqueness table starts small and is grown between kernel
    // launches as the cache fills (see `CsSet::maybe_grow`).
    let seen = CsSet::new(width.blocks(), 4096.min(cache.capacity_rows()));
    let device = params
        .engine
        .device()
        .cloned()
        .unwrap_or_else(Device::sequential);
    let literal_cost = params.costs.literal;
    let max_cost = params.max_cost;

    let mut stats = SynthesisStats::default();
    stats.infix_closure_size = ic.len() as u64;

    let mut search = Search {
        params,
        guide,
        masks,
        width,
        eps_index,
        cache,
        seen,
        device,
        stats,
        on_the_fly: false,
        last_full_cost: 0,
    };

    // Seed the cache with the characteristic sequences of the alphabet
    // characters (line 6 of Algorithm 1), checking each for satisfaction.
    if let Some(found) = search.seed_alphabet(&ic) {
        return Ok(search.finish(found));
    }

    for cost in (literal_cost + 1)..=max_cost {
        search.stats.max_cost_reached = cost;
        match search.build_level(cost) {
            LevelOutcome::Found(prov) => return Ok(search.finish(prov)),
            LevelOutcome::Continue => {}
            LevelOutcome::Exhausted => {
                return Err(SynthesisError::OutOfMemory {
                    last_complete_cost: search.last_full_cost,
                    stats: search.final_stats(),
                });
            }
            LevelOutcome::TimedOut => {
                return Err(SynthesisError::Timeout {
                    budget: search.params.time_budget.unwrap_or_default(),
                    stats: search.final_stats(),
                });
            }
        }
    }

    Err(SynthesisError::NotFound { max_cost, stats: search.final_stats() })
}

impl<'a> Search<'a> {
    fn seed_alphabet(&mut self, ic: &InfixClosure) -> Option<Provenance> {
        let cost = self.params.costs.literal;
        self.stats.max_cost_reached = cost;
        let alphabet = self.params.alphabet.clone();
        for &a in alphabet.symbols() {
            let row = ic.cs_of_literal(a);
            self.stats.candidates_generated += 1;
            self.device.record_hash_insertions(1);
            if !self.seen.insert(row.blocks()) {
                continue;
            }
            self.stats.unique_languages += 1;
            if self.masks.is_satisfied_with_error(row.blocks(), self.params.allowed_errors) {
                return Some(Provenance::Literal(a));
            }
            if self
                .cache
                .push(row.blocks(), Provenance::Literal(a), cost)
                .is_none()
            {
                // A memory budget too small even for the alphabet: OnTheFly
                // from the start; nothing will ever be cached.
                self.enter_on_the_fly();
            }
        }
        if !self.on_the_fly {
            self.last_full_cost = cost;
        }
        self.stats.levels.push(LevelStats {
            cost,
            candidates: alphabet.len() as u64,
            unique: self.stats.unique_languages,
            cached: self.cache.len() as u64,
        });
        None
    }

    fn enter_on_the_fly(&mut self) {
        self.on_the_fly = true;
        self.stats.used_on_the_fly = true;
    }

    /// Returns `true` when a wall-clock budget is configured and exceeded.
    fn over_time_budget(&self) -> bool {
        match self.params.time_budget {
            Some(budget) => self.params.started.elapsed() > budget,
            None => false,
        }
    }

    /// The highest operand cost any constructor may need when building
    /// languages of cost `cost`.
    fn max_operand_cost(&self, cost: u64) -> u64 {
        cost.saturating_sub(self.params.costs.min_constructor_cost())
    }

    fn build_level(&mut self, cost: u64) -> LevelOutcome {
        if self.on_the_fly && self.max_operand_cost(cost) > self.last_full_cost {
            // OnTheFly mode would need operand levels that were never
            // (fully) cached: the search cannot make further progress
            // without violating minimality, so it stops (paper: the
            // out-of-memory outcome).
            return LevelOutcome::Exhausted;
        }
        let jobs = self.enumerate_jobs(cost);
        self.stats.candidates_generated += jobs.len() as u64;
        let unique_before = self.stats.unique_languages;
        let cached_before = self.cache.len() as u64;
        let mut level_complete = !self.on_the_fly;

        let parallel = matches!(self.params.engine, Engine::Parallel(_));
        let blocks = self.width.blocks();
        let mut scratch = vec![0u64; blocks];
        let mut row = vec![0u64; blocks];
        // Each parallel batch row carries one extra word of flags (bit 0:
        // survived the uniqueness check, bit 1: satisfies the masks).
        let mut batch_rows = vec![0u64; PARALLEL_BATCH * (blocks + 1)];

        for batch in jobs.chunks(PARALLEL_BATCH) {
            if self.over_time_budget() {
                return LevelOutcome::TimedOut;
            }
            if parallel {
                match self.process_batch_parallel(batch, &mut batch_rows, cost) {
                    Admit::Found(prov) => return LevelOutcome::Found(prov),
                    Admit::Overflowed => level_complete = false,
                    Admit::Stored | Admit::Duplicate => {}
                }
            } else {
                for job in batch {
                    self.compute_row(*job, &mut row, &mut scratch);
                    match self.admit(&row, *job, cost) {
                        Admit::Found(prov) => return LevelOutcome::Found(prov),
                        Admit::Overflowed => level_complete = false,
                        Admit::Stored | Admit::Duplicate => {}
                    }
                }
            }
        }

        if level_complete {
            self.last_full_cost = cost;
        }
        // Per-level breakdown for fully processed levels (levels cut short
        // by a satisfying row or a timeout are not recorded).
        self.stats.levels.push(LevelStats {
            cost,
            candidates: jobs.len() as u64,
            unique: self.stats.unique_languages - unique_before,
            cached: self.cache.len() as u64 - cached_before,
        });
        LevelOutcome::Continue
    }

    /// Processes one batch of jobs on the device, mirroring the paper's GPU
    /// structure: a single kernel computes each candidate row *and* performs
    /// the uniqueness insertion (into the WarpCore-style concurrent set) and
    /// the satisfaction check; the host then only copies the surviving rows
    /// into the language cache.
    ///
    /// Item `k` of the launch owns the `k`-th chunk of `batch_rows`, laid
    /// out as `blocks` row words followed by one flag word (bit 0 = unique,
    /// bit 1 = satisfies the specification).
    fn process_batch_parallel(&mut self, batch: &[Job], batch_rows: &mut [u64], cost: u64) -> Admit {
        let blocks = self.width.blocks();
        let stride = blocks + 1;
        // Make sure the concurrent set cannot fill up mid-kernel.
        if !self.on_the_fly {
            self.seen.reserve(batch.len());
            self.device.record_hash_insertions(batch.len() as u64);
        }
        let buf = &mut batch_rows[..batch.len() * stride];
        let found = AtomicU64::new(u64::MAX);
        {
            let cache = &self.cache;
            let guide = &self.guide;
            let masks = &self.masks;
            let seen = &self.seen;
            let device = &self.device;
            let eps = self.eps_index;
            let allowed = self.params.allowed_errors;
            let on_the_fly = self.on_the_fly;
            let num_words = guide.num_words();
            let found = &found;
            device.launch_chunks("build-level", buf, stride, move |k, chunk| {
                let (row, flags) = chunk.split_at_mut(blocks);
                flags[0] = 0;
                match batch[k] {
                    Job::Question(i) => csops::question_into(row, cache.row(i), eps),
                    Job::Union(l, r) => csops::or_into(row, cache.row(l), cache.row(r)),
                    Job::Concat(l, r) => {
                        // GPU-style kernel: fold over every word with no
                        // data-dependent early exit (cf. Algorithm 2). The
                        // output row must be cleared first because the
                        // batch buffer is reused across launches.
                        csops::clear(row);
                        let (a, b) = (cache.row(l), cache.row(r));
                        for w in 0..num_words {
                            if csops::concat_word_bit(a, b, guide, w) {
                                csops::set_bit(row, w);
                            }
                        }
                    }
                    Job::Star(i) => {
                        let mut scratch = vec![0u64; blocks];
                        csops::star_into(row, cache.row(i), guide, eps, &mut scratch);
                    }
                }
                let unique = if on_the_fly {
                    false
                } else {
                    let fresh = seen.insert(row);
                    if fresh {
                        flags[0] |= 1;
                    }
                    fresh
                };
                if (on_the_fly || unique) && masks.is_satisfied_with_error(row, allowed) {
                    flags[0] |= 2;
                    found.fetch_min(k as u64, Ordering::Relaxed);
                }
            });
        }

        // Host-side pass: account for unique rows and copy them into the
        // write-once cache (the paper's temporary-buffer → cache copy).
        let winner = found.load(Ordering::Relaxed);
        let mut outcome = Admit::Duplicate;
        for (k, chunk) in buf.chunks(stride).enumerate() {
            let (row, flags) = chunk.split_at(blocks);
            if flags[0] & 1 == 0 {
                continue;
            }
            self.stats.unique_languages += 1;
            if winner != u64::MAX {
                // A satisfying row exists in this batch: nothing after it
                // needs caching, exactly as in the sequential early return.
                continue;
            }
            if !self.on_the_fly && self.cache.push(row, batch[k].provenance(), cost).is_none() {
                self.enter_on_the_fly();
                outcome = Admit::Overflowed;
            }
        }
        if winner != u64::MAX {
            return Admit::Found(batch[winner as usize].provenance());
        }
        outcome
    }

    fn compute_row(&self, job: Job, row: &mut [u64], scratch: &mut [u64]) {
        match job {
            Job::Question(i) => csops::question_into(row, self.cache.row(i), self.eps_index),
            Job::Star(i) => {
                csops::star_into(row, self.cache.row(i), &self.guide, self.eps_index, scratch)
            }
            Job::Concat(l, r) => {
                csops::concat_into(row, self.cache.row(l), self.cache.row(r), &self.guide)
            }
            Job::Union(l, r) => csops::or_into(row, self.cache.row(l), self.cache.row(r)),
        }
    }

    fn admit(&mut self, row: &[u64], job: Job, cost: u64) -> Admit {
        self.seen.maybe_grow();
        if self.on_the_fly {
            // OnTheFly: no uniqueness check, no caching — only the
            // satisfaction check (which preserves precision/minimality).
            if self
                .masks
                .is_satisfied_with_error(row, self.params.allowed_errors)
            {
                return Admit::Found(job.provenance());
            }
            return Admit::Duplicate;
        }
        self.device.record_hash_insertions(1);
        if !self.seen.insert(row) {
            return Admit::Duplicate;
        }
        self.stats.unique_languages += 1;
        if self
            .masks
            .is_satisfied_with_error(row, self.params.allowed_errors)
        {
            return Admit::Found(job.provenance());
        }
        if self.cache.push(row, job.provenance(), cost).is_none() {
            self.enter_on_the_fly();
            return Admit::Overflowed;
        }
        Admit::Stored
    }

    /// Enumerates every candidate construction of the given cost from the
    /// cached lower-cost rows (the loop bodies of Algorithm 1).
    fn enumerate_jobs(&self, cost: u64) -> Vec<Job> {
        let costs = &self.params.costs;
        let mut jobs = Vec::new();

        // r? with cost(r) = cost - cost(?).
        if let Some(operand) = cost.checked_sub(costs.question) {
            for i in self.cache.indices_of_cost(operand) {
                jobs.push(Job::Question(i as u32));
            }
        }
        // r* with cost(r) = cost - cost(*).
        if let Some(operand) = cost.checked_sub(costs.star) {
            for i in self.cache.indices_of_cost(operand) {
                jobs.push(Job::Star(i as u32));
            }
        }
        // r·s with cost(r) + cost(s) = cost - cost(·).
        if let Some(remaining) = cost.checked_sub(costs.concat) {
            self.push_binary_jobs(remaining, false, &mut jobs);
        }
        // r+s with cost(r) + cost(s) = cost - cost(+). Union is commutative,
        // so only ordered pairs (left cost ≤ right cost) are generated.
        if let Some(remaining) = cost.checked_sub(costs.union) {
            self.push_binary_jobs(remaining, true, &mut jobs);
        }
        jobs
    }

    fn push_binary_jobs(&self, remaining: u64, commutative: bool, jobs: &mut Vec<Job>) {
        let literal = self.params.costs.literal;
        if remaining < 2 * literal {
            return;
        }
        for left_cost in literal..=(remaining - literal) {
            let right_cost = remaining - left_cost;
            if commutative && left_cost > right_cost {
                break;
            }
            let left_range = self.cache.indices_of_cost(left_cost);
            let right_range = self.cache.indices_of_cost(right_cost);
            if left_range.is_empty() || right_range.is_empty() {
                continue;
            }
            for l in left_range.clone() {
                for r in right_range.clone() {
                    if commutative && left_cost == right_cost && r < l {
                        continue;
                    }
                    if commutative {
                        jobs.push(Job::Union(l as u32, r as u32));
                    } else {
                        jobs.push(Job::Concat(l as u32, r as u32));
                    }
                }
            }
        }
    }

    fn final_stats(&self) -> SynthesisStats {
        let mut stats = self.stats.clone();
        stats.cache_rows = self.cache.len() as u64;
        stats.cache_bytes = self.cache.memory_bytes() as u64;
        stats.elapsed = self.params.started.elapsed();
        stats
    }

    fn finish(&self, provenance: Provenance) -> SynthesisResult {
        let regex = self.cache.reconstruct(provenance);
        let cost = regex.cost(&self.params.costs);
        debug_assert!(
            self.params.spec.misclassified_by(&regex) <= self.params.allowed_errors,
            "reconstructed expression {regex} does not satisfy the specification"
        );
        SynthesisResult { regex, cost, stats: self.final_stats() }
    }
}

enum Admit {
    Found(Provenance),
    Stored,
    Duplicate,
    Overflowed,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_provenance_round_trip() {
        assert_eq!(Job::Question(3).provenance(), Provenance::Question(3));
        assert_eq!(Job::Star(4).provenance(), Provenance::Star(4));
        assert_eq!(Job::Concat(1, 2).provenance(), Provenance::Concat(1, 2));
        assert_eq!(Job::Union(5, 6).provenance(), Provenance::Union(5, 6));
    }
}
