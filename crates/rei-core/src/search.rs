//! The bottom-up, cost-ordered search over characteristic sequences.
//!
//! This module implements Algorithms 1 and 2 of the paper. The search is
//! parameterised by a [`Backend`]: each batch of a cost level's candidate
//! constructions is handed to the backend as a [`LevelBatch`], which runs
//! the reference sequential loop ([`LevelBatch::run_sequential`]),
//! partitions the batch across worker threads running the bit-parallel
//! mask kernels ([`LevelBatch::run_threaded`]), or computes the batch as
//! data-parallel kernel items on a [`gpu_sim::Device`]
//! ([`LevelBatch::run_on_device`]), mirroring the temporary-buffer →
//! cache copy of the paper's GPU implementation.
//!
//! Between batches and between levels the search polls a [`StopCheck`]
//! (deadline + cooperative [`CancelToken`]) and reports each completed
//! level to the run's [`Observer`].

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use gpu_sim::hashset::CsSet;
use gpu_sim::Device;
use rei_lang::{
    csops, Alphabet, CsWidth, GuideMasks, GuideTable, InfixClosure, SatisfyMasks, Spec,
};
use rei_syntax::CostFn;

use crate::backend::Backend;
use crate::cache::{LanguageCache, Provenance};
use crate::observe::{CancelToken, Observer};
use crate::result::{LevelStats, SynthesisError, SynthesisResult, SynthesisStats};

/// Number of candidate rows materialised per kernel launch. Bounds the size
/// of the temporary device buffer.
const PARALLEL_BATCH: usize = 1 << 16;

/// Everything the search needs about the problem, assembled by
/// [`crate::SynthSession`].
pub(crate) struct SearchParams<'a> {
    pub spec: &'a Spec,
    pub alphabet: Alphabet,
    pub costs: CostFn,
    pub memory_budget: usize,
    pub allowed_errors: usize,
    pub max_cost: u64,
    pub started: Instant,
}

/// The unified stop condition, polled between batches and between levels:
/// an optional wall-clock deadline (the old ad-hoc time-budget check) and
/// an optional cooperative cancellation token.
#[derive(Debug, Clone, Default)]
pub(crate) struct StopCheck {
    pub deadline: Option<Instant>,
    /// The configured budget, reported in [`SynthesisError::Timeout`].
    pub budget: Duration,
    pub cancel: Option<CancelToken>,
}

impl StopCheck {
    fn poll(&self) -> Option<Stop> {
        if let Some(cancel) = &self.cancel {
            if cancel.is_cancelled() {
                return Some(Stop::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                return Some(Stop::TimedOut);
            }
        }
        None
    }
}

#[derive(Debug, Clone, Copy)]
enum Stop {
    TimedOut,
    Cancelled,
}

/// Warm per-session buffers reused across runs, owned by
/// [`crate::SynthSession`]. Reusing the device batch buffer across the
/// specs of a `run_batch` avoids re-allocating a multi-megabyte temporary
/// per spec — part of the amortisation the session API exists for.
#[derive(Debug, Default)]
pub(crate) struct SessionScratch {
    batch_rows: Vec<u64>,
}

/// A candidate construction at the current cost level: the outermost
/// constructor plus cache indices of its operands.
#[derive(Debug, Clone, Copy)]
enum Job {
    Question(u32),
    Star(u32),
    Concat(u32, u32),
    Union(u32, u32),
}

impl Job {
    fn provenance(self) -> Provenance {
        match self {
            Job::Question(i) => Provenance::Question(i),
            Job::Star(i) => Provenance::Star(i),
            Job::Concat(l, r) => Provenance::Concat(l, r),
            Job::Union(l, r) => Provenance::Union(l, r),
        }
    }
}

/// Computes the characteristic sequence of one candidate with the fast
/// CPU kernels (mask-based concatenation, star by squaring).
///
/// This is the kernel body shared by the sequential path
/// ([`Search::compute_row`]) and the thread-parallel workers
/// ([`LevelBatch::run_threaded`]); the data-parallel device instead runs
/// the branch-free GPU-style body in [`LevelBatch::run_on_device`].
fn compute_job_row(
    job: Job,
    row: &mut [u64],
    scratch: &mut [u64],
    cache: &LanguageCache,
    guide_masks: &GuideMasks,
    eps_index: usize,
) {
    match job {
        Job::Question(i) => csops::question_into(row, cache.row(i), eps_index),
        Job::Star(i) => csops::star_into(row, cache.row(i), guide_masks, eps_index, scratch),
        Job::Concat(l, r) => csops::concat_into(row, cache.row(l), cache.row(r), guide_masks),
        Job::Union(l, r) => csops::or_into(row, cache.row(l), cache.row(r)),
    }
}

thread_local! {
    /// Star scratch row for the device kernel body: the device schedules
    /// items rather than workers, so per-worker reusable state lives in a
    /// thread local instead of a per-item heap allocation.
    static STAR_SCRATCH: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// The kernel-side admission protocol shared by the parallel strategies:
/// resets the per-item flag word, records uniqueness (bit 0) through the
/// shared concurrent set, checks satisfaction (bit 1) and lowers `found`
/// to the earliest satisfying batch index.
#[allow(clippy::too_many_arguments)]
fn flag_computed_row(
    k: usize,
    row: &[u64],
    flags: &mut [u64],
    seen: &CsSet,
    masks: &SatisfyMasks,
    on_the_fly: bool,
    allowed: usize,
    found: &AtomicU64,
) {
    flags[0] = 0;
    let unique = if on_the_fly {
        false
    } else {
        let fresh = seen.insert(row);
        if fresh {
            flags[0] |= 1;
        }
        fresh
    };
    if (on_the_fly || unique) && masks.is_satisfied_with_error(row, allowed) {
        flags[0] |= 2;
        found.fetch_min(k as u64, Ordering::Relaxed);
    }
}

/// Result of building one cost level.
enum LevelOutcome {
    /// A satisfying row was constructed; its provenance is returned.
    Found(Provenance),
    /// The level was built (possibly partially cached); continue.
    Continue,
    /// OnTheFly mode can no longer reach the operands it needs.
    Exhausted,
    /// The stop condition fired while building the level.
    Stopped(Stop),
}

/// The outcome a [`Backend`] reports for one processed [`LevelBatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchOutcome {
    /// A satisfying candidate was found; the search reconstructs the
    /// expression from this provenance.
    Found(Provenance),
    /// Every candidate of the batch was processed without a hit.
    Continue,
}

/// The outcome of admitting one computed row via [`LevelBatch::admit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowVerdict {
    /// The row satisfies the specification.
    Found(Provenance),
    /// The row is a new unique language and was cached.
    Admitted,
    /// The row duplicates an earlier language (or OnTheFly mode is active
    /// and the row does not satisfy the specification).
    Duplicate,
    /// The cache rejected the row; the search switched to OnTheFly mode.
    Overflowed,
}

struct Search<'a> {
    params: SearchParams<'a>,
    observer: &'a mut dyn Observer,
    stop: StopCheck,
    scratch: &'a mut SessionScratch,
    ic: InfixClosure,
    /// The pair-based guide table, staged lazily: only the device
    /// strategy's GPU-style concatenation reads it, so sequential and
    /// thread-parallel runs never pay for building it.
    pair_table: OnceLock<GuideTable>,
    /// The transposed block-mask form of the guide relation, driving the
    /// bit-parallel CPU kernels (`csops::concat_into`, squared
    /// `csops::star_into`). Always staged — every strategy uses it.
    guide_masks: GuideMasks,
    masks: SatisfyMasks,
    width: CsWidth,
    eps_index: usize,
    cache: LanguageCache,
    seen: CsSet,
    /// Device used for statistics accounting; the backend's device when it
    /// has one, a single-threaded stand-in otherwise.
    stats_device: Device,
    stats: SynthesisStats,
    /// `true` once the cache rejected a row: new rows are no longer cached
    /// or uniqueness-checked (the paper's OnTheFly mode).
    on_the_fly: bool,
    /// The highest cost whose level was stored completely.
    last_full_cost: u64,
}

/// One batch of same-cost candidate constructions, handed to a
/// [`Backend`].
///
/// Built-in strategies are available as [`run_sequential`] and
/// [`run_on_device`]; custom backends can instead drive the
/// per-candidate primitives [`compute_row`] and [`admit`] in any order
/// or partition, as long as every candidate is eventually admitted.
///
/// [`run_sequential`]: LevelBatch::run_sequential
/// [`run_on_device`]: LevelBatch::run_on_device
/// [`compute_row`]: LevelBatch::compute_row
/// [`admit`]: LevelBatch::admit
pub struct LevelBatch<'b, 'a> {
    search: &'b mut Search<'a>,
    jobs: &'b [Job],
    cost: u64,
}

impl LevelBatch<'_, '_> {
    /// Number of candidate constructions in this batch.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The cost of the level this batch belongs to.
    pub fn cost(&self) -> u64 {
        self.cost
    }

    /// Width of a characteristic-sequence row, in `u64` words.
    pub fn row_blocks(&self) -> usize {
        self.search.width.blocks()
    }

    /// Computes the characteristic sequence of candidate `k` into `row`.
    /// `scratch` must be another `row_blocks()`-sized buffer (used by the
    /// star fixpoint).
    pub fn compute_row(&self, k: usize, row: &mut [u64], scratch: &mut [u64]) {
        self.search.compute_row(self.jobs[k], row, scratch);
    }

    /// Runs candidate `k`'s computed row through the uniqueness check, the
    /// satisfaction check and the cache (the admission pipeline of
    /// Algorithm 1).
    pub fn admit(&mut self, k: usize, row: &[u64]) -> RowVerdict {
        self.search.admit(row, self.jobs[k], self.cost)
    }

    /// The reference strategy: one candidate at a time with early exits.
    pub fn run_sequential(&mut self) -> BatchOutcome {
        let blocks = self.row_blocks();
        let mut row = vec![0u64; blocks];
        let mut scratch = vec![0u64; blocks];
        for k in 0..self.jobs.len() {
            self.compute_row(k, &mut row, &mut scratch);
            if let RowVerdict::Found(prov) = self.admit(k, &row) {
                return BatchOutcome::Found(prov);
            }
        }
        BatchOutcome::Continue
    }

    /// The data-parallel strategy: a single kernel computes each candidate
    /// row *and* performs the uniqueness insertion (into the WarpCore-style
    /// concurrent set) and the satisfaction check; the host then only
    /// copies the surviving rows into the language cache.
    ///
    /// Item `k` of the launch owns the `k`-th chunk of the batch buffer,
    /// laid out as `row_blocks()` row words followed by one flag word
    /// (bit 0 = unique, bit 1 = satisfies the specification).
    pub fn run_on_device(&mut self, device: &Device) -> BatchOutcome {
        let blocks = self.row_blocks();
        let stride = blocks + 1;
        let batch = self.jobs;
        // The batch buffer is session state: warm across batches, levels
        // and runs.
        let mut batch_rows = std::mem::take(&mut self.search.scratch.batch_rows);
        if batch_rows.len() < batch.len() * stride {
            batch_rows.resize(batch.len() * stride, 0);
        }

        // Make sure the concurrent set cannot fill up mid-kernel.
        if !self.search.on_the_fly {
            self.search.seen.reserve(batch.len());
            device.record_hash_insertions(batch.len() as u64);
        }
        let buf = &mut batch_rows[..batch.len() * stride];
        let found = AtomicU64::new(u64::MAX);
        {
            let cache = &self.search.cache;
            let guide = self.search.pair_table();
            let guide_masks = &self.search.guide_masks;
            let masks = &self.search.masks;
            let seen = &self.search.seen;
            let eps = self.search.eps_index;
            let allowed = self.search.params.allowed_errors;
            let on_the_fly = self.search.on_the_fly;
            let num_words = guide.num_words();
            let found = &found;
            device.launch_chunks("build-level", buf, stride, move |k, chunk| {
                let (row, flags) = chunk.split_at_mut(blocks);
                match batch[k] {
                    Job::Concat(l, r) => {
                        // GPU-style kernel: fold over every word with no
                        // data-dependent early exit (cf. Algorithm 2). The
                        // output row must be cleared first because the
                        // batch buffer is reused across launches.
                        csops::clear(row);
                        let (a, b) = (cache.row(l), cache.row(r));
                        for w in 0..num_words {
                            if csops::concat_word_bit(a, b, guide, w) {
                                csops::set_bit(row, w);
                            }
                        }
                    }
                    // The device schedules items, not workers, so the star
                    // scratch row lives in a thread local instead of a
                    // per-worker stack slot.
                    job => STAR_SCRATCH.with(|cell| {
                        let mut scratch = cell.borrow_mut();
                        scratch.resize(blocks, 0);
                        compute_job_row(job, row, &mut scratch, cache, guide_masks, eps);
                    }),
                }
                flag_computed_row(k, row, flags, seen, masks, on_the_fly, allowed, found);
            });
        }

        let outcome = self.flush_unique_rows(buf, stride, found.load(Ordering::Relaxed));
        self.search.scratch.batch_rows = batch_rows;
        outcome
    }

    /// The thread-parallel CPU strategy: the batch is split into one
    /// contiguous span per worker thread; each worker computes its
    /// candidates with the fast sequential kernels (mask-based
    /// concatenation, star by squaring) into its own span of the batch
    /// buffer, using a private star scratch row and the shared concurrent
    /// [`CsSet`] for the global uniqueness check. The host then performs
    /// the same admission pass as the device strategy.
    ///
    /// Compared to [`run_on_device`](LevelBatch::run_on_device) this is
    /// the pragmatic multi-core backend: static partitioning (no
    /// per-block channel traffic), per-thread scratch reuse, and the
    /// bit-parallel kernels instead of the branch-free GPU bodies.
    pub fn run_threaded(&mut self, threads: usize) -> BatchOutcome {
        let blocks = self.row_blocks();
        let stride = blocks + 1;
        let batch = self.jobs;
        if batch.is_empty() {
            return BatchOutcome::Continue;
        }
        let threads = threads.clamp(1, batch.len());
        let mut batch_rows = std::mem::take(&mut self.search.scratch.batch_rows);
        if batch_rows.len() < batch.len() * stride {
            batch_rows.resize(batch.len() * stride, 0);
        }

        // Make sure the concurrent set cannot fill up mid-pass.
        if !self.search.on_the_fly {
            self.search.seen.reserve(batch.len());
            self.search
                .stats_device
                .record_hash_insertions(batch.len() as u64);
        }
        self.search.stats_device.record_launch(batch.len());
        let buf = &mut batch_rows[..batch.len() * stride];
        let found = AtomicU64::new(u64::MAX);
        {
            let cache = &self.search.cache;
            let guide_masks = &self.search.guide_masks;
            let masks = &self.search.masks;
            let seen = &self.search.seen;
            let eps = self.search.eps_index;
            let allowed = self.search.params.allowed_errors;
            let on_the_fly = self.search.on_the_fly;
            let found = &found;
            let per_worker = batch.len().div_ceil(threads);
            let worker = |base: usize, span: &mut [u64]| {
                let mut scratch = vec![0u64; blocks];
                for (offset, chunk) in span.chunks_mut(stride).enumerate() {
                    let k = base + offset;
                    let (row, flags) = chunk.split_at_mut(blocks);
                    compute_job_row(batch[k], row, &mut scratch, cache, guide_masks, eps);
                    flag_computed_row(k, row, flags, seen, masks, on_the_fly, allowed, found);
                }
            };
            if threads == 1 {
                // Single worker: run inline, no thread spawn (keeps the
                // backend graceful on single-core hosts).
                worker(0, buf);
            } else {
                let worker = &worker;
                crossbeam::scope(|scope| {
                    for (t, span) in buf.chunks_mut(per_worker * stride).enumerate() {
                        scope.spawn(move |_| worker(t * per_worker, span));
                    }
                })
                .expect("level worker panicked");
            }
        }

        let outcome = self.flush_unique_rows(buf, stride, found.load(Ordering::Relaxed));
        self.search.scratch.batch_rows = batch_rows;
        outcome
    }

    /// Host-side admission pass shared by the parallel strategies:
    /// accounts for unique rows and copies them into the write-once cache
    /// (the paper's temporary-buffer → cache copy). `winner` is the
    /// smallest batch index whose row satisfied the specification, or
    /// `u64::MAX`.
    fn flush_unique_rows(&mut self, buf: &[u64], stride: usize, winner: u64) -> BatchOutcome {
        let blocks = self.row_blocks();
        for (k, chunk) in buf.chunks(stride).enumerate() {
            let (row, flags) = chunk.split_at(blocks);
            if flags[0] & 1 == 0 {
                continue;
            }
            self.search.stats.unique_languages += 1;
            if winner != u64::MAX {
                // A satisfying row exists in this batch: nothing after it
                // needs caching, exactly as in the sequential early return.
                continue;
            }
            if !self.search.on_the_fly
                && self
                    .search
                    .cache
                    .push(row, self.jobs[k].provenance(), self.cost)
                    .is_none()
            {
                self.search.enter_on_the_fly();
            }
        }
        if winner != u64::MAX {
            return BatchOutcome::Found(self.jobs[winner as usize].provenance());
        }
        BatchOutcome::Continue
    }
}

/// Runs the full search. Trivial specifications (`P = ∅`, `P = {ε}` and the
/// corresponding relaxed checks) are handled by the caller.
pub(crate) fn run(
    params: SearchParams<'_>,
    backend: &dyn Backend,
    observer: &mut dyn Observer,
    stop: StopCheck,
    scratch: &mut SessionScratch,
) -> Result<SynthesisResult, SynthesisError> {
    let ic = InfixClosure::of_spec(params.spec);
    let guide_masks = GuideMasks::build(&ic);
    let masks = SatisfyMasks::new(params.spec, &ic);
    let width = ic.width();
    let eps_index = ic
        .eps_index()
        .expect("non-trivial spec has a non-empty closure");
    let cache = LanguageCache::new(width, params.memory_budget);
    // The uniqueness table starts small and is grown between kernel
    // launches as the cache fills (see `CsSet::maybe_grow`).
    let seen = CsSet::new(width.blocks(), 4096.min(cache.capacity_rows()));
    let stats_device = backend.device().cloned().unwrap_or_else(Device::sequential);
    let literal_cost = params.costs.literal;
    let max_cost = params.max_cost;

    let stats = SynthesisStats {
        infix_closure_size: ic.len() as u64,
        ..Default::default()
    };

    let mut search = Search {
        params,
        observer,
        stop,
        scratch,
        ic,
        pair_table: OnceLock::new(),
        guide_masks,
        masks,
        width,
        eps_index,
        cache,
        seen,
        stats_device,
        stats,
        on_the_fly: false,
        last_full_cost: 0,
    };

    // Seed the cache with the characteristic sequences of the alphabet
    // characters (line 6 of Algorithm 1), checking each for satisfaction.
    if let Some(found) = search.seed_alphabet() {
        return Ok(search.finish(found));
    }

    for cost in (literal_cost + 1)..=max_cost {
        // The unified stop check, at the level boundary.
        if let Some(stop) = search.stop.poll() {
            return Err(search.stopped(stop));
        }
        search.stats.max_cost_reached = cost;
        match search.build_level(cost, backend) {
            LevelOutcome::Found(prov) => return Ok(search.finish(prov)),
            LevelOutcome::Continue => {}
            LevelOutcome::Exhausted => {
                return Err(SynthesisError::OutOfMemory {
                    last_complete_cost: search.last_full_cost,
                    stats: search.final_stats(),
                });
            }
            LevelOutcome::Stopped(stop) => return Err(search.stopped(stop)),
        }
    }

    Err(SynthesisError::NotFound {
        max_cost,
        stats: search.final_stats(),
    })
}

impl<'a> Search<'a> {
    /// The pair-based guide table, built on first use (only the device
    /// strategy reads it).
    fn pair_table(&self) -> &GuideTable {
        self.pair_table.get_or_init(|| GuideTable::build(&self.ic))
    }

    fn seed_alphabet(&mut self) -> Option<Provenance> {
        let cost = self.params.costs.literal;
        self.stats.max_cost_reached = cost;
        let alphabet = self.params.alphabet.clone();
        for &a in alphabet.symbols() {
            let row = self.ic.cs_of_literal(a);
            self.stats.candidates_generated += 1;
            self.stats_device.record_hash_insertions(1);
            if !self.seen.insert(row.blocks()) {
                continue;
            }
            self.stats.unique_languages += 1;
            if self
                .masks
                .is_satisfied_with_error(row.blocks(), self.params.allowed_errors)
            {
                return Some(Provenance::Literal(a));
            }
            if self
                .cache
                .push(row.blocks(), Provenance::Literal(a), cost)
                .is_none()
            {
                // A memory budget too small even for the alphabet: OnTheFly
                // from the start; nothing will ever be cached.
                self.enter_on_the_fly();
            }
        }
        if !self.on_the_fly {
            self.last_full_cost = cost;
        }
        self.push_level(LevelStats {
            cost,
            candidates: alphabet.len() as u64,
            unique: self.stats.unique_languages,
            cached: self.cache.len() as u64,
        });
        None
    }

    fn enter_on_the_fly(&mut self) {
        self.on_the_fly = true;
        self.stats.used_on_the_fly = true;
    }

    /// Records a completed level and reports it to the observer.
    fn push_level(&mut self, level: LevelStats) {
        self.stats.levels.push(level);
        self.observer.on_level(&level);
    }

    /// Converts a fired stop condition into the corresponding error.
    fn stopped(&self, stop: Stop) -> SynthesisError {
        match stop {
            Stop::TimedOut => SynthesisError::Timeout {
                budget: self.stop.budget,
                stats: self.final_stats(),
            },
            Stop::Cancelled => SynthesisError::Cancelled {
                stats: self.final_stats(),
            },
        }
    }

    /// The highest operand cost any constructor may need when building
    /// languages of cost `cost`.
    fn max_operand_cost(&self, cost: u64) -> u64 {
        cost.saturating_sub(self.params.costs.min_constructor_cost())
    }

    fn build_level(&mut self, cost: u64, backend: &dyn Backend) -> LevelOutcome {
        if self.on_the_fly && self.max_operand_cost(cost) > self.last_full_cost {
            // OnTheFly mode would need operand levels that were never
            // (fully) cached: the search cannot make further progress
            // without violating minimality, so it stops (paper: the
            // out-of-memory outcome).
            return LevelOutcome::Exhausted;
        }
        let jobs = self.enumerate_jobs(cost);
        self.stats.candidates_generated += jobs.len() as u64;
        let unique_before = self.stats.unique_languages;
        let cached_before = self.cache.len() as u64;

        for chunk in jobs.chunks(PARALLEL_BATCH) {
            if let Some(stop) = self.stop.poll() {
                return LevelOutcome::Stopped(stop);
            }
            let mut batch = LevelBatch {
                search: self,
                jobs: chunk,
                cost,
            };
            if let BatchOutcome::Found(prov) = backend.process(&mut batch) {
                return LevelOutcome::Found(prov);
            }
        }

        // Once the cache has rejected a row the level is not fully stored
        // (and `on_the_fly` stays set), so level completeness is exactly
        // the absence of OnTheFly mode.
        if !self.on_the_fly {
            self.last_full_cost = cost;
        }
        // Per-level breakdown for fully processed levels (levels cut short
        // by a satisfying row or a stop are not recorded).
        self.push_level(LevelStats {
            cost,
            candidates: jobs.len() as u64,
            unique: self.stats.unique_languages - unique_before,
            cached: self.cache.len() as u64 - cached_before,
        });
        LevelOutcome::Continue
    }

    fn compute_row(&self, job: Job, row: &mut [u64], scratch: &mut [u64]) {
        compute_job_row(
            job,
            row,
            scratch,
            &self.cache,
            &self.guide_masks,
            self.eps_index,
        );
    }

    fn admit(&mut self, row: &[u64], job: Job, cost: u64) -> RowVerdict {
        self.seen.maybe_grow();
        if self.on_the_fly {
            // OnTheFly: no uniqueness check, no caching — only the
            // satisfaction check (which preserves precision/minimality).
            if self
                .masks
                .is_satisfied_with_error(row, self.params.allowed_errors)
            {
                return RowVerdict::Found(job.provenance());
            }
            return RowVerdict::Duplicate;
        }
        self.stats_device.record_hash_insertions(1);
        if !self.seen.insert(row) {
            return RowVerdict::Duplicate;
        }
        self.stats.unique_languages += 1;
        if self
            .masks
            .is_satisfied_with_error(row, self.params.allowed_errors)
        {
            return RowVerdict::Found(job.provenance());
        }
        if self.cache.push(row, job.provenance(), cost).is_none() {
            self.enter_on_the_fly();
            return RowVerdict::Overflowed;
        }
        RowVerdict::Admitted
    }

    /// Enumerates every candidate construction of the given cost from the
    /// cached lower-cost rows (the loop bodies of Algorithm 1).
    fn enumerate_jobs(&self, cost: u64) -> Vec<Job> {
        let costs = &self.params.costs;
        let mut jobs = Vec::new();

        // r? with cost(r) = cost - cost(?).
        if let Some(operand) = cost.checked_sub(costs.question) {
            for i in self.cache.indices_of_cost(operand) {
                jobs.push(Job::Question(i as u32));
            }
        }
        // r* with cost(r) = cost - cost(*).
        if let Some(operand) = cost.checked_sub(costs.star) {
            for i in self.cache.indices_of_cost(operand) {
                jobs.push(Job::Star(i as u32));
            }
        }
        // r·s with cost(r) + cost(s) = cost - cost(·).
        if let Some(remaining) = cost.checked_sub(costs.concat) {
            self.push_binary_jobs(remaining, false, &mut jobs);
        }
        // r+s with cost(r) + cost(s) = cost - cost(+). Union is commutative,
        // so only ordered pairs (left cost ≤ right cost) are generated.
        if let Some(remaining) = cost.checked_sub(costs.union) {
            self.push_binary_jobs(remaining, true, &mut jobs);
        }
        jobs
    }

    fn push_binary_jobs(&self, remaining: u64, commutative: bool, jobs: &mut Vec<Job>) {
        let literal = self.params.costs.literal;
        if remaining < 2 * literal {
            return;
        }
        for left_cost in literal..=(remaining - literal) {
            let right_cost = remaining - left_cost;
            if commutative && left_cost > right_cost {
                break;
            }
            let left_range = self.cache.indices_of_cost(left_cost);
            let right_range = self.cache.indices_of_cost(right_cost);
            if left_range.is_empty() || right_range.is_empty() {
                continue;
            }
            for l in left_range.clone() {
                for r in right_range.clone() {
                    if commutative && left_cost == right_cost && r < l {
                        continue;
                    }
                    if commutative {
                        jobs.push(Job::Union(l as u32, r as u32));
                    } else {
                        jobs.push(Job::Concat(l as u32, r as u32));
                    }
                }
            }
        }
    }

    fn final_stats(&self) -> SynthesisStats {
        let mut stats = self.stats.clone();
        stats.cache_rows = self.cache.len() as u64;
        stats.cache_bytes = self.cache.memory_bytes() as u64;
        stats.elapsed = self.params.started.elapsed();
        stats
    }

    fn finish(&self, provenance: Provenance) -> SynthesisResult {
        let regex = self.cache.reconstruct(provenance);
        let cost = regex.cost(&self.params.costs);
        debug_assert!(
            self.params.spec.misclassified_by(&regex) <= self.params.allowed_errors,
            "reconstructed expression {regex} does not satisfy the specification"
        );
        SynthesisResult {
            regex,
            cost,
            stats: self.final_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_provenance_round_trip() {
        assert_eq!(Job::Question(3).provenance(), Provenance::Question(3));
        assert_eq!(Job::Star(4).provenance(), Provenance::Star(4));
        assert_eq!(Job::Concat(1, 2).provenance(), Provenance::Concat(1, 2));
        assert_eq!(Job::Union(5, 6).provenance(), Provenance::Union(5, 6));
    }

    #[test]
    fn stop_check_polls_cancel_and_deadline() {
        assert!(StopCheck::default().poll().is_none());

        let token = CancelToken::new();
        let stop = StopCheck {
            cancel: Some(token.clone()),
            ..StopCheck::default()
        };
        assert!(stop.poll().is_none());
        token.cancel();
        assert!(matches!(stop.poll(), Some(Stop::Cancelled)));

        let expired = StopCheck {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            budget: Duration::ZERO,
            cancel: None,
        };
        assert!(matches!(expired.poll(), Some(Stop::TimedOut)));
    }
}
