//! The language cache: a write-once matrix of characteristic sequences
//! grouped by cost, with the provenance needed to reconstruct expressions.

use std::collections::BTreeMap;
use std::ops::Range;

use rei_lang::CsWidth;
use rei_syntax::Regex;

/// How a cached characteristic sequence was constructed.
///
/// Each row of the language cache records the outermost regular constructor
/// that produced it together with the indices of its operand rows. This is
/// the "auxiliary L/R data" of the paper's cache figure: it is what allows
/// the synthesiser to reverse-engineer a minimal regular expression from
/// the first satisfying row without ever materialising syntax during the
/// search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// A single alphabet character (a seed row).
    Literal(char),
    /// `r?` where `r` is the row at the given index.
    Question(u32),
    /// `r*` where `r` is the row at the given index.
    Star(u32),
    /// `r · s` of the rows at the given indices.
    Concat(u32, u32),
    /// `r + s` of the rows at the given indices.
    Union(u32, u32),
}

/// The contiguous, write-once store of all unique characteristic sequences
/// constructed so far, ordered by non-decreasing cost.
///
/// Rows are fixed-width (`width.blocks()` 64-bit words each) and are only
/// ever appended; the *startPoints* index maps each cost to the range of
/// row indices holding the languages of exactly that cost, mirroring the
/// paper's "matrix of matrices of matrices".
///
/// # Example
///
/// ```
/// use rei_core::{LanguageCache, Provenance};
/// use rei_lang::CsWidth;
///
/// let width = CsWidth::for_len(10);
/// let mut cache = LanguageCache::new(width, 1 << 20);
/// let idx = cache.push(&[0b1010], Provenance::Literal('a'), 1).unwrap();
/// assert_eq!(cache.row(idx), &[0b1010]);
/// assert_eq!(cache.len(), 1);
/// assert_eq!(cache.rows_of_cost(1).count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct LanguageCache {
    width: CsWidth,
    capacity_rows: usize,
    rows: Vec<u64>,
    provenance: Vec<Provenance>,
    costs: Vec<u64>,
    start_points: BTreeMap<u64, Range<usize>>,
}

impl LanguageCache {
    /// Per-row overhead besides the bitvector itself (provenance and cost
    /// book-keeping), used to translate a byte budget into a row capacity.
    /// The paper estimates roughly `3·k` bits per CS overall; we account
    /// for our concrete representation instead.
    pub const ROW_OVERHEAD_BYTES: usize =
        std::mem::size_of::<Provenance>() + std::mem::size_of::<u64>();

    /// Creates an empty cache for rows of the given width, able to hold at
    /// most as many rows as fit in `memory_budget_bytes`.
    pub fn new(width: CsWidth, memory_budget_bytes: usize) -> Self {
        let per_row = width.bytes() + Self::ROW_OVERHEAD_BYTES;
        let capacity_rows = (memory_budget_bytes / per_row).max(1);
        LanguageCache {
            width,
            capacity_rows,
            rows: Vec::new(),
            provenance: Vec::new(),
            costs: Vec::new(),
            start_points: BTreeMap::new(),
        }
    }

    /// The bitvector geometry of the cached rows.
    pub fn width(&self) -> CsWidth {
        self.width
    }

    /// Number of rows currently stored.
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// Returns `true` if no row is stored.
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }

    /// Maximum number of rows the memory budget allows.
    pub fn capacity_rows(&self) -> usize {
        self.capacity_rows
    }

    /// Returns `true` if no further row can be stored.
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity_rows
    }

    /// Approximate memory used by the stored rows, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.len() * (self.width.bytes() + Self::ROW_OVERHEAD_BYTES)
    }

    /// The blocks of row `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn row(&self, idx: u32) -> &[u64] {
        let blocks = self.width.blocks();
        let start = idx as usize * blocks;
        &self.rows[start..start + blocks]
    }

    /// The provenance of row `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn provenance(&self, idx: u32) -> Provenance {
        self.provenance[idx as usize]
    }

    /// The cost of row `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn cost(&self, idx: u32) -> u64 {
        self.costs[idx as usize]
    }

    /// Appends a row, returning its index, or `None` when the memory budget
    /// is exhausted (the caller then switches to OnTheFly mode).
    ///
    /// # Panics
    ///
    /// Panics if `blocks` does not match the cache width, or if `cost` is
    /// smaller than the cost of a previously pushed row (the cache is
    /// ordered by non-decreasing cost by construction).
    pub fn push(&mut self, blocks: &[u64], provenance: Provenance, cost: u64) -> Option<u32> {
        assert_eq!(blocks.len(), self.width.blocks(), "row width mismatch");
        if let Some(&last) = self.costs.last() {
            assert!(
                cost >= last,
                "cache must be filled in non-decreasing cost order"
            );
        }
        if self.is_full() {
            return None;
        }
        let idx = self.costs.len() as u32;
        self.rows.extend_from_slice(blocks);
        self.provenance.push(provenance);
        self.costs.push(cost);
        self.start_points
            .entry(cost)
            .and_modify(|r| r.end = idx as usize + 1)
            .or_insert(idx as usize..idx as usize + 1);
        Some(idx)
    }

    /// Drops every row of cost strictly greater than `cost`, keeping the
    /// complete prefix of levels up to and including `cost`.
    ///
    /// This is the retention step of an incremental refinement session:
    /// after a run wins mid-level, the winning level is only partially
    /// stored, so a resumed search truncates back to the last *complete*
    /// level before re-enumerating from there. Rows are stored in
    /// non-decreasing cost order, so the retained rows are a prefix and
    /// every surviving provenance index stays valid.
    pub fn truncate_to_cost(&mut self, cost: u64) {
        let keep = self.costs.partition_point(|&c| c <= cost);
        if keep == self.costs.len() {
            return;
        }
        self.rows.truncate(keep * self.width.blocks());
        self.provenance.truncate(keep);
        self.costs.truncate(keep);
        // Ranges are contiguous per cost and costs are non-decreasing, so
        // every range keyed at most `cost` lies entirely inside the kept
        // prefix; the rest are dropped whole.
        self.start_points.retain(|&c, _| c <= cost);
    }

    /// The row indices holding languages of exactly `cost`.
    pub fn indices_of_cost(&self, cost: u64) -> Range<usize> {
        self.start_points.get(&cost).cloned().unwrap_or(0..0)
    }

    /// Iterates over `(index, row)` pairs of exactly the given cost.
    pub fn rows_of_cost(&self, cost: u64) -> impl Iterator<Item = (u32, &[u64])> {
        let blocks = self.width.blocks();
        self.indices_of_cost(cost)
            .map(move |i| (i as u32, &self.rows[i * blocks..(i + 1) * blocks]))
    }

    /// Number of rows of exactly the given cost.
    pub fn count_of_cost(&self, cost: u64) -> usize {
        self.indices_of_cost(cost).len()
    }

    /// The costs for which at least one row is stored, in ascending order.
    pub fn cost_levels(&self) -> impl Iterator<Item = u64> + '_ {
        self.start_points.keys().copied()
    }

    /// Reconstructs the regular expression recorded by the provenance
    /// chain starting at `provenance` (for a row that may not itself be in
    /// the cache — the satisfying row is returned to the caller before it
    /// is stored, exactly as in the paper's pseudocode).
    pub fn reconstruct(&self, provenance: Provenance) -> Regex {
        match provenance {
            Provenance::Literal(a) => Regex::literal(a),
            Provenance::Question(i) => self.reconstruct_row(i).question(),
            Provenance::Star(i) => self.reconstruct_row(i).star(),
            Provenance::Concat(l, r) => {
                Regex::concat(self.reconstruct_row(l), self.reconstruct_row(r))
            }
            Provenance::Union(l, r) => {
                Regex::union(self.reconstruct_row(l), self.reconstruct_row(r))
            }
        }
    }

    /// Reconstructs the regular expression of the cached row `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn reconstruct_row(&self, idx: u32) -> Regex {
        self.reconstruct(self.provenance(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rei_syntax::CostFn;

    fn width() -> CsWidth {
        CsWidth::for_len(8)
    }

    #[test]
    fn push_and_lookup() {
        let mut cache = LanguageCache::new(width(), 1 << 16);
        let a = cache.push(&[0b01], Provenance::Literal('0'), 1).unwrap();
        let b = cache.push(&[0b10], Provenance::Literal('1'), 1).unwrap();
        let u = cache.push(&[0b11], Provenance::Union(a, b), 3).unwrap();
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.row(u), &[0b11]);
        assert_eq!(cache.cost(u), 3);
        assert_eq!(cache.provenance(u), Provenance::Union(a, b));
        assert_eq!(cache.indices_of_cost(1), 0..2);
        assert_eq!(cache.indices_of_cost(2), 0..0);
        assert_eq!(cache.count_of_cost(3), 1);
        assert_eq!(cache.cost_levels().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn capacity_is_respected() {
        // Budget for exactly two rows.
        let per_row = width().bytes() + LanguageCache::ROW_OVERHEAD_BYTES;
        let mut cache = LanguageCache::new(width(), per_row * 2);
        assert_eq!(cache.capacity_rows(), 2);
        assert!(cache.push(&[1], Provenance::Literal('a'), 1).is_some());
        assert!(cache.push(&[2], Provenance::Literal('b'), 1).is_some());
        assert!(cache.is_full());
        assert!(cache.push(&[3], Provenance::Literal('c'), 1).is_none());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    #[should_panic(expected = "non-decreasing cost")]
    fn decreasing_cost_is_rejected() {
        let mut cache = LanguageCache::new(width(), 1 << 16);
        cache.push(&[1], Provenance::Literal('a'), 5).unwrap();
        let _ = cache.push(&[2], Provenance::Literal('b'), 4);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_is_rejected() {
        let mut cache = LanguageCache::new(CsWidth::for_len(100), 1 << 16);
        let _ = cache.push(&[1], Provenance::Literal('a'), 1);
    }

    #[test]
    fn reconstruction_follows_provenance() {
        let mut cache = LanguageCache::new(width(), 1 << 16);
        let zero = cache.push(&[0b001], Provenance::Literal('0'), 1).unwrap();
        let one = cache.push(&[0b010], Provenance::Literal('1'), 1).unwrap();
        let union = cache
            .push(&[0b011], Provenance::Union(zero, one), 3)
            .unwrap();
        let star = cache.push(&[0b111], Provenance::Star(union), 4).unwrap();
        let r = cache.reconstruct_row(star);
        assert_eq!(r.to_string(), "(0+1)*");
        assert_eq!(r.cost(&CostFn::UNIFORM), 4);
        // Reconstruction of an un-cached provenance referencing cached rows.
        let q = cache.reconstruct(Provenance::Question(star));
        assert_eq!(q.to_string(), "(0+1)*?");
        let c = cache.reconstruct(Provenance::Concat(zero, star));
        assert_eq!(c.to_string(), "0(0+1)*");
    }

    #[test]
    fn memory_accounting_grows_with_rows() {
        let mut cache = LanguageCache::new(width(), 1 << 16);
        assert_eq!(cache.memory_bytes(), 0);
        cache.push(&[1], Provenance::Literal('a'), 1).unwrap();
        let one_row = cache.memory_bytes();
        cache.push(&[2], Provenance::Literal('b'), 1).unwrap();
        assert_eq!(cache.memory_bytes(), 2 * one_row);
    }
}
