//! Execution backends: the open abstraction over *how* a cost level's
//! candidate rows are computed.
//!
//! Execution strategy is the open [`Backend`] trait, so new strategies
//! (chunked/rayon-style CPU,
//! a real GPU runtime, remote executors) can plug into the search without
//! touching the search core. Two implementations ship with this crate,
//! mirroring the paper's CPU/GPU split:
//!
//! * [`Sequential`] — one candidate at a time on the calling thread, with
//!   early exits; the reference implementation.
//! * [`ThreadParallel`] — each batch of a level is statically partitioned
//!   across worker threads, each running the fast sequential kernels
//!   (mask-based concatenation, star by squaring) with per-thread scratch
//!   rows and the shared concurrent uniqueness set; the multi-core CPU
//!   strategy.
//! * [`DeviceParallel`] — each batch of a level is materialised as
//!   data-parallel kernel items on an owned, reusable
//!   [`gpu_sim::Device`], mirroring the temporary-buffer → cache copy
//!   structure of the paper's GPU implementation.
//!
//! A backend receives each batch as a [`LevelBatch`] and either drives one
//! of the prebuilt strategies ([`LevelBatch::run_sequential`],
//! [`LevelBatch::run_on_device`]) or composes its own loop from the
//! per-candidate primitives ([`LevelBatch::compute_row`],
//! [`LevelBatch::admit`]).

use std::fmt;

use gpu_sim::{Device, DeviceConfig};

pub use crate::search::{BatchOutcome, LevelBatch, RowVerdict};

/// An execution strategy for the cost-ordered search.
///
/// Implementations must be deterministic in *outcome*: any two backends
/// must find expressions of the same minimal cost on the same
/// specification (the expressions themselves may differ between
/// equally-minimal candidates, as in the paper's CPU/GPU comparison).
pub trait Backend: fmt::Debug + Send + Sync {
    /// A short, stable, human-readable name.
    ///
    /// This is the single source of truth used by the CLI's `--backend`
    /// flag, the benchmark reports and the session statistics.
    fn name(&self) -> &'static str;

    /// The device owned by this backend, if any. The search uses it for
    /// statistics accounting; sessions expose it for reuse across runs.
    fn device(&self) -> Option<&Device> {
        None
    }

    /// Called once at the start of every run, before any level is built.
    /// Backends with warm per-run state reset it here.
    fn begin_run(&self) {}

    /// Processes one batch of same-cost candidate constructions.
    fn process(&self, batch: &mut LevelBatch<'_, '_>) -> BatchOutcome;
}

/// The reference CPU strategy: one candidate at a time with early exits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sequential;

impl Sequential {
    /// The canonical name of this backend.
    pub const NAME: &'static str = "cpu-sequential";
}

impl Backend for Sequential {
    fn name(&self) -> &'static str {
        Sequential::NAME
    }

    fn process(&self, batch: &mut LevelBatch<'_, '_>) -> BatchOutcome {
        batch.run_sequential()
    }
}

/// The multi-core CPU strategy: level batches are partitioned across
/// worker threads, each running the bit-parallel sequential kernels.
///
/// The backend owns a [`Device`] purely for statistics accounting
/// (launches, items, hash insertions accumulate there exactly as for
/// [`DeviceParallel`], so benchmark reports can compare backends); work
/// is scheduled over scoped threads by
/// [`LevelBatch::run_threaded`], not through the device's kernel
/// launcher.
#[derive(Debug, Clone)]
pub struct ThreadParallel {
    device: Device,
}

impl ThreadParallel {
    /// The canonical name of this backend.
    pub const NAME: &'static str = "cpu-thread-parallel";

    /// A backend with one worker per available core.
    pub fn new() -> Self {
        ThreadParallel {
            device: Device::new(DeviceConfig::default()),
        }
    }

    /// A backend with an explicit number of worker threads.
    pub fn with_threads(threads: usize) -> Self {
        ThreadParallel {
            device: Device::with_threads(threads),
        }
    }

    /// Number of worker threads the backend partitions batches over.
    pub fn threads(&self) -> usize {
        self.device.config().threads
    }
}

impl Default for ThreadParallel {
    fn default() -> Self {
        ThreadParallel::new()
    }
}

impl Backend for ThreadParallel {
    fn name(&self) -> &'static str {
        ThreadParallel::NAME
    }

    fn device(&self) -> Option<&Device> {
        Some(&self.device)
    }

    fn process(&self, batch: &mut LevelBatch<'_, '_>) -> BatchOutcome {
        batch.run_threaded(self.threads())
    }
}

/// The data-parallel strategy: level batches run as kernels on an owned,
/// reusable simulated SIMT [`Device`].
///
/// The device is created once (per backend) and shared across every run of
/// the owning session, so thread-pool setup and statistics accumulate per
/// session rather than per specification — the batching win the
/// session API exists for. Use [`Device::reset_stats`] for per-run deltas.
#[derive(Debug, Clone)]
pub struct DeviceParallel {
    device: Device,
}

impl DeviceParallel {
    /// The canonical name of this backend.
    pub const NAME: &'static str = "gpu-sim-parallel";

    /// A backend on a device with the default configuration (one worker
    /// per available core).
    pub fn new() -> Self {
        DeviceParallel {
            device: Device::new(DeviceConfig::default()),
        }
    }

    /// A backend on a device with an explicit number of worker threads.
    pub fn with_threads(threads: usize) -> Self {
        DeviceParallel {
            device: Device::with_threads(threads),
        }
    }

    /// A backend on an existing device (shared statistics).
    pub fn with_device(device: Device) -> Self {
        DeviceParallel { device }
    }
}

impl Default for DeviceParallel {
    fn default() -> Self {
        DeviceParallel::new()
    }
}

impl Backend for DeviceParallel {
    fn name(&self) -> &'static str {
        DeviceParallel::NAME
    }

    fn device(&self) -> Option<&Device> {
        Some(&self.device)
    }

    fn process(&self, batch: &mut LevelBatch<'_, '_>) -> BatchOutcome {
        batch.run_on_device(&self.device)
    }
}

/// A serializable selector for the built-in backends, used by
/// [`SynthConfig`](crate::SynthConfig), the CLI's `--backend` flag and the
/// benchmark harness.
///
/// Unlike a [`Backend`] instance (which may own live device state), a
/// choice is plain data: `Copy`, comparable, and round-trippable through
/// [`fmt::Display`] / [`std::str::FromStr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendChoice {
    /// The reference CPU strategy ([`Sequential`]).
    #[default]
    Sequential,
    /// The multi-core CPU strategy ([`ThreadParallel`]).
    ThreadParallel {
        /// Worker threads; `None` uses one per core.
        threads: Option<usize>,
    },
    /// The data-parallel strategy ([`DeviceParallel`]).
    DeviceParallel {
        /// Worker threads of the device; `None` uses one per core.
        threads: Option<usize>,
    },
}

impl BackendChoice {
    /// The data-parallel choice with the default thread count.
    pub fn parallel() -> Self {
        BackendChoice::DeviceParallel { threads: None }
    }

    /// The multi-core CPU choice with the default thread count.
    pub fn threaded() -> Self {
        BackendChoice::ThreadParallel { threads: None }
    }

    /// The canonical backend name this choice resolves to (the same string
    /// the built [`Backend::name`] reports).
    pub fn name(&self) -> &'static str {
        match self {
            BackendChoice::Sequential => Sequential::NAME,
            BackendChoice::ThreadParallel { .. } => ThreadParallel::NAME,
            BackendChoice::DeviceParallel { .. } => DeviceParallel::NAME,
        }
    }

    /// Constructs the chosen backend.
    pub fn build(&self) -> Box<dyn Backend> {
        match self {
            BackendChoice::Sequential => Box::new(Sequential),
            BackendChoice::ThreadParallel { threads: None } => Box::new(ThreadParallel::new()),
            BackendChoice::ThreadParallel { threads: Some(n) } => {
                Box::new(ThreadParallel::with_threads(*n))
            }
            BackendChoice::DeviceParallel { threads: None } => Box::new(DeviceParallel::new()),
            BackendChoice::DeviceParallel { threads: Some(n) } => {
                Box::new(DeviceParallel::with_threads(*n))
            }
        }
    }

    /// Parses a backend name: a canonical [`name`](BackendChoice::name) or
    /// one of the aliases `sequential`/`cpu`, `threads`/`thread-parallel`
    /// and `parallel`/`gpu`. The multi-threaded forms accept a
    /// `:<threads>` suffix, e.g. `parallel:8` or `threads:4`.
    pub fn parse(raw: &str) -> Option<Self> {
        let (base, threads) = match raw.split_once(':') {
            Some((base, t)) => (base, Some(t.parse::<usize>().ok()?)),
            None => (raw, None),
        };
        match base {
            _ if base == Sequential::NAME => threads.is_none().then_some(BackendChoice::Sequential),
            "sequential" | "cpu" => threads.is_none().then_some(BackendChoice::Sequential),
            _ if base == ThreadParallel::NAME => Some(BackendChoice::ThreadParallel { threads }),
            "threads" | "thread-parallel" => Some(BackendChoice::ThreadParallel { threads }),
            _ if base == DeviceParallel::NAME => Some(BackendChoice::DeviceParallel { threads }),
            "parallel" | "gpu" => Some(BackendChoice::DeviceParallel { threads }),
            _ => None,
        }
    }
}

impl fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendChoice::ThreadParallel { threads: Some(n) }
            | BackendChoice::DeviceParallel { threads: Some(n) } => {
                write!(f, "{}:{n}", self.name())
            }
            _ => f.write_str(self.name()),
        }
    }
}

impl std::str::FromStr for BackendChoice {
    type Err = String;

    fn from_str(raw: &str) -> Result<Self, Self::Err> {
        BackendChoice::parse(raw).ok_or_else(|| {
            format!(
                "unknown backend '{raw}' (expected '{}', '{}', '{}', or aliases \
                 'sequential'/'cpu'/'threads'/'thread-parallel'/'parallel'/'gpu', \
                 optionally with a thread count as in 'parallel:<threads>')",
                Sequential::NAME,
                ThreadParallel::NAME,
                DeviceParallel::NAME
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_the_single_source_of_truth() {
        assert_eq!(Sequential.name(), Sequential::NAME);
        assert_eq!(ThreadParallel::new().name(), ThreadParallel::NAME);
        assert_eq!(DeviceParallel::new().name(), DeviceParallel::NAME);
        assert_eq!(BackendChoice::Sequential.name(), Sequential::NAME);
        assert_eq!(BackendChoice::threaded().name(), ThreadParallel::NAME);
        assert_eq!(BackendChoice::parallel().name(), DeviceParallel::NAME);
        assert_eq!(BackendChoice::Sequential.build().name(), Sequential::NAME);
        assert_eq!(
            BackendChoice::threaded().build().name(),
            ThreadParallel::NAME
        );
        assert_eq!(
            BackendChoice::parallel().build().name(),
            DeviceParallel::NAME
        );
    }

    #[test]
    fn thread_parallel_owns_a_stats_device() {
        let backend = ThreadParallel::with_threads(3);
        assert_eq!(backend.threads(), 3);
        assert_eq!(backend.device().unwrap().config().threads, 3);
        backend.device().unwrap().record_hash_insertions(5);
        assert_eq!(backend.device().unwrap().stats().hash_insertions, 5);
    }

    #[test]
    fn devices_are_owned_and_reusable() {
        assert!(Sequential.device().is_none());
        let backend = DeviceParallel::with_threads(3);
        assert_eq!(backend.device().unwrap().config().threads, 3);
        let shared = Device::with_threads(2);
        let reused = DeviceParallel::with_device(shared.clone());
        reused.device().unwrap().record_hash_insertions(7);
        assert_eq!(shared.stats().hash_insertions, 7);
    }

    #[test]
    fn choice_parsing_round_trips() {
        for raw in ["cpu-sequential", "sequential", "cpu"] {
            assert_eq!(BackendChoice::parse(raw), Some(BackendChoice::Sequential));
        }
        for raw in ["cpu-thread-parallel", "threads", "thread-parallel"] {
            assert_eq!(
                BackendChoice::parse(raw),
                Some(BackendChoice::ThreadParallel { threads: None })
            );
        }
        for raw in ["gpu-sim-parallel", "parallel", "gpu"] {
            assert_eq!(
                BackendChoice::parse(raw),
                Some(BackendChoice::DeviceParallel { threads: None })
            );
        }
        assert_eq!(
            BackendChoice::parse("parallel:8"),
            Some(BackendChoice::DeviceParallel { threads: Some(8) })
        );
        assert_eq!(
            BackendChoice::parse("threads:4"),
            Some(BackendChoice::ThreadParallel { threads: Some(4) })
        );
        assert_eq!(BackendChoice::parse("sequential:8"), None);
        assert_eq!(BackendChoice::parse("quantum"), None);

        for choice in [
            BackendChoice::Sequential,
            BackendChoice::threaded(),
            BackendChoice::ThreadParallel { threads: Some(2) },
            BackendChoice::parallel(),
            BackendChoice::DeviceParallel { threads: Some(4) },
        ] {
            let rendered = choice.to_string();
            assert_eq!(rendered.parse::<BackendChoice>().unwrap(), choice);
        }
        assert!("quantum".parse::<BackendChoice>().is_err());
    }
}
