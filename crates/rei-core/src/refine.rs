//! Incremental refinement of synthesis sessions.
//!
//! Interactive programming-by-example traffic is iterative: a user adds
//! an example, the specification *strengthens* (the new positive and
//! negative example sets are supersets of the previous ones) and the
//! previous answer is either still correct or the search must look
//! further. [`SynthSession::refine`](crate::SynthSession::refine) exploits
//! that structure instead of restarting from cost 1:
//!
//! * **Unchanged** — the spec equals the previous one: the cached outcome
//!   is returned without re-running admission (0 `admission_folds`).
//! * **Warm** — the spec is a strengthening over the same alphabet with
//!   the same absolute allowed-error budget: the previous winner is
//!   re-checked against the new examples (sound because rejection is
//!   monotone under example supersets), and if it no longer satisfies,
//!   enumeration resumes from the retained level caches at the previously
//!   reached cost instead of re-enumerating from scratch.
//! * **Cold** — anything else (example removed, alphabet changed, budget
//!   changed, new examples outside the retained closure, no usable
//!   previous run): a transparent cold run, identical to
//!   [`SynthSession::run`](crate::SynthSession::run).
//!
//! Every tier returns results identical to a cold run of the same spec —
//! the tiers differ only in how much work they skip. The soundness
//! argument lives in DESIGN.md ("Interactive refinement").

use std::time::Duration;

use rei_lang::{Alphabet, Spec};
use rei_syntax::Regex;

use crate::result::{SynthesisError, SynthesisResult, SynthesisStats};
use crate::search::ResumeState;

/// Why a [`refine`](crate::SynthSession::refine) call fell back to a cold
/// run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColdReason {
    /// The session has no previous run to refine from.
    NoPrevious,
    /// The previous run failed non-deterministically (timeout, cancel,
    /// out of memory), so its outcome cannot be reused.
    PreviousFailed,
    /// The new spec is not a strengthening: an example was removed or the
    /// positive/negative sets are otherwise not supersets.
    NotStrengthening,
    /// The effective alphabet changed, so the previous minimality proof
    /// does not cover the new candidate space.
    AlphabetChanged,
    /// The absolute allowed-error budget changed, breaking the
    /// monotonicity argument that lets retained rejections stand.
    BudgetChanged,
    /// A new example lies outside the retained infix closure, so the
    /// retained level caches cannot index it (and the previous winner
    /// also failed the new spec).
    ClosureGrew,
    /// The previous run left no resumable search state (trivially solved,
    /// or it ended in OnTheFly mode) and its winner failed the new spec.
    NoRetainedSearch,
}

impl ColdReason {
    /// Stable lower-snake identifier, reported over the wire protocol.
    pub fn as_str(&self) -> &'static str {
        match self {
            ColdReason::NoPrevious => "no_previous",
            ColdReason::PreviousFailed => "previous_failed",
            ColdReason::NotStrengthening => "not_strengthening",
            ColdReason::AlphabetChanged => "alphabet_changed",
            ColdReason::BudgetChanged => "budget_changed",
            ColdReason::ClosureGrew => "closure_grew",
            ColdReason::NoRetainedSearch => "no_retained_search",
        }
    }
}

/// How much previous-run state a [`refine`](crate::SynthSession::refine)
/// call reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReuseDecision {
    /// The spec was unchanged; the cached outcome was returned without
    /// re-running admission.
    Unchanged,
    /// The spec strengthened the previous one; retained state answered or
    /// resumed the search.
    Warm {
        /// Cached rows carried over from the previous run.
        retained_rows: u64,
        /// The cost level enumeration resumed from (for the
        /// previous-winner fast path, the winner's own cost).
        resumed_cost: u64,
    },
    /// A transparent cold run, for the stated reason.
    Cold(ColdReason),
}

impl ReuseDecision {
    /// Coarse wire label: `"unchanged"`, `"warm"` or `"cold"`.
    pub fn label(&self) -> &'static str {
        match self {
            ReuseDecision::Unchanged => "unchanged",
            ReuseDecision::Warm { .. } => "warm",
            ReuseDecision::Cold(_) => "cold",
        }
    }

    /// The cold-fallback reason, when this decision is cold.
    pub fn cold_reason(&self) -> Option<ColdReason> {
        match self {
            ReuseDecision::Cold(reason) => Some(*reason),
            _ => None,
        }
    }

    /// Whether previous-run state was reused (unchanged or warm).
    pub fn reused(&self) -> bool {
        !matches!(self, ReuseDecision::Cold(_))
    }
}

/// The outcome of one [`refine`](crate::SynthSession::refine) call: the
/// synthesis outcome (identical to what a cold
/// [`run`](crate::SynthSession::run) of the same spec would return) plus
/// the reuse decision that produced it.
#[derive(Debug)]
pub struct RunOutcome {
    /// The synthesis outcome for the refined specification.
    pub outcome: Result<SynthesisResult, SynthesisError>,
    /// How much previous-run state was reused.
    pub reuse: ReuseDecision,
}

impl RunOutcome {
    /// The successful result, if any.
    pub fn result(&self) -> Option<&SynthesisResult> {
        self.outcome.as_ref().ok()
    }
}

/// The deterministic part of a previous run's outcome, replayable for an
/// unchanged spec and re-checkable against a strengthened one.
#[derive(Debug, Clone)]
pub(crate) enum PrevOutcome {
    /// The previous run found a minimal satisfying expression.
    Solved {
        /// The winning expression.
        regex: Regex,
        /// Its cost under the session's cost homomorphism.
        cost: u64,
    },
    /// The previous run exhausted its cost bound without a winner.
    NotFound {
        /// The exhausted bound.
        max_cost: u64,
    },
}

/// Everything a previous run leaves behind for the next refinement.
#[derive(Debug)]
pub(crate) struct PrevRun {
    /// The previous specification.
    pub spec: Spec,
    /// The absolute allowed-error budget the previous run used.
    pub allowed: usize,
    /// The effective alphabet the previous run searched over.
    pub alphabet: Alphabet,
    /// The previous deterministic outcome; `None` after a timeout,
    /// cancellation or out-of-memory failure.
    pub outcome: Option<PrevOutcome>,
    /// Retained search state (closure, guide masks, complete level
    /// caches), when the run left any.
    pub retained: Option<ResumeState>,
}

impl PrevRun {
    /// Materialises the cached outcome for an unchanged spec. The stats
    /// are fresh (all zero except `elapsed`): they describe the work of
    /// *this* call, which re-ran nothing.
    pub fn replay(&self, elapsed: Duration) -> Option<Result<SynthesisResult, SynthesisError>> {
        match self.outcome.as_ref()? {
            PrevOutcome::Solved { regex, cost } => Some(Ok(SynthesisResult {
                regex: regex.clone(),
                cost: *cost,
                stats: SynthesisStats {
                    elapsed,
                    ..SynthesisStats::default()
                },
            })),
            PrevOutcome::NotFound { max_cost } => Some(Err(SynthesisError::NotFound {
                max_cost: *max_cost,
                stats: SynthesisStats {
                    elapsed,
                    ..SynthesisStats::default()
                },
            })),
        }
    }
}

/// The refinement state of one logical user session: what the previous
/// run established and what it left behind for reuse.
///
/// A [`SynthSession`](crate::SynthSession) owns one `RefineState` for its
/// own [`refine`](crate::SynthSession::refine) convenience method; the
/// service tier instead keeps one `RefineState` per *user* session (in
/// its session table) and drives any pool worker's `SynthSession` through
/// [`refine_with_state`](crate::SynthSession::refine_with_state), so warm
/// state survives across worker threads.
#[derive(Debug, Default)]
pub struct RefineState {
    pub(crate) prev: Option<PrevRun>,
}

impl RefineState {
    /// A fresh state with no previous run (the first `refine` goes cold).
    pub fn new() -> Self {
        RefineState::default()
    }

    /// Whether a previous run's outcome is available for reuse.
    pub fn has_previous(&self) -> bool {
        self.prev
            .as_ref()
            .is_some_and(|prev| prev.outcome.is_some())
    }

    /// Drops all retained state; the next `refine` goes cold.
    pub fn clear(&mut self) {
        self.prev = None;
    }

    /// Records the outcome of a run just performed on `spec`.
    pub(crate) fn record(
        &mut self,
        spec: &Spec,
        allowed: usize,
        alphabet: Alphabet,
        outcome: &Result<SynthesisResult, SynthesisError>,
        retained: Option<ResumeState>,
    ) {
        let prev_outcome = match outcome {
            Ok(result) => Some(PrevOutcome::Solved {
                regex: result.regex.clone(),
                cost: result.cost,
            }),
            Err(SynthesisError::NotFound { max_cost, .. }) => Some(PrevOutcome::NotFound {
                max_cost: *max_cost,
            }),
            Err(_) => None,
        };
        self.prev = Some(PrevRun {
            spec: spec.clone(),
            allowed,
            alphabet,
            outcome: prev_outcome,
            retained,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_reasons_are_stable() {
        assert_eq!(ReuseDecision::Unchanged.label(), "unchanged");
        assert_eq!(
            ReuseDecision::Warm {
                retained_rows: 3,
                resumed_cost: 5
            }
            .label(),
            "warm"
        );
        let cold = ReuseDecision::Cold(ColdReason::ClosureGrew);
        assert_eq!(cold.label(), "cold");
        assert_eq!(cold.cold_reason(), Some(ColdReason::ClosureGrew));
        assert_eq!(ColdReason::ClosureGrew.as_str(), "closure_grew");
        assert!(ReuseDecision::Unchanged.reused());
        assert!(!cold.reused());
    }

    #[test]
    fn fresh_state_has_no_previous() {
        let mut state = RefineState::new();
        assert!(!state.has_previous());
        state.clear();
        assert!(!state.has_previous());
    }
}
