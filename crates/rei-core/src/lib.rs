//! The Paresy algorithm: search-based regular expression inference.
//!
//! This crate implements Section 3 of *"Search-Based Regular Expression
//! Inference on a GPU"* (Valizadeh & Berger, PLDI 2023): a bottom-up,
//! cost-ordered search over regular *languages*, represented as
//! characteristic sequences over the infix closure of the examples, with
//!
//! * a write-once, contiguous **language cache** grouped by cost
//!   ([`cache::LanguageCache`]),
//! * per-cost **builders** for the `?`, `*`, `·` and `+` constructors that
//!   combine cached rows using the staged guide table,
//! * a global **uniqueness check** through a WarpCore-style concurrent set,
//! * **OnTheFly mode** once the memory budget is exhausted,
//! * reconstruction of a **minimal regular expression** from the provenance
//!   stored next to each row, and
//! * the **REI-with-error** extension of Section 5.2.
//!
//! # Architecture
//!
//! Execution strategy is an open abstraction: the [`Backend`] trait
//! decides how the rows of a cost level are computed. Three backends ship
//! with the crate — [`Sequential`] (the reference CPU loop),
//! [`ThreadParallel`] (level batches statically partitioned over worker
//! threads running the bit-parallel mask kernels) and [`DeviceParallel`]
//! (data-parallel kernels on an owned [`gpu_sim::Device`], mirroring the
//! paper's GPU implementation). All produce results of identical minimal
//! cost.
//!
//! The primary entry point is the session API: a [`SynthConfig`] (plain,
//! serializable data, validated into [`SynthesisError::InvalidConfig`])
//! creates a [`SynthSession`] that is reused across runs — it owns the
//! backend, the warm device buffers and cumulative counters, and exposes
//! [`run`](SynthSession::run), [`run_batch`](SynthSession::run_batch),
//! [`run_with`](SynthSession::run_with) (per-cost-level [`Observer`]
//! events) and [`run_fused`](SynthSession::run_fused) (several
//! specifications advanced in lock step as one fused level sweep, with
//! per-member [`FusedRequest`] cancellation). Long runs stop
//! cooperatively through a [`CancelToken`].
//! [`Synthesizer`] remains as a one-shot convenience wrapper.
//!
//! Interactive workloads refine a session instead of re-running it:
//! [`refine`](SynthSession::refine) detects when a new [`Spec`] is a
//! *strengthening* of the previous one and reuses the previous outcome
//! and retained level caches (see [`RunOutcome`], [`ReuseDecision`] and
//! the [`refine`] module); any other spec transparently
//! falls back to a cold run.
//!
//! [`Spec`]: rei_lang::Spec
//!
//! # Example
//!
//! ```
//! use rei_core::{SynthConfig, SynthSession, SynthesisError};
//! use rei_lang::Spec;
//! use rei_syntax::CostFn;
//!
//! let spec = Spec::from_strs(
//!     ["10", "101", "100", "1010", "1011", "1000", "1001"],
//!     ["", "0", "1", "00", "11", "010"],
//! ).unwrap();
//! let mut session = SynthSession::new(SynthConfig::new(CostFn::UNIFORM))?;
//! let result = session.run(&spec)?;
//! assert_eq!(result.regex.to_string(), "10(0+1)*");
//! assert_eq!(result.cost, 8);
//! # Ok::<(), SynthesisError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Failed runs deliberately carry their full `SynthesisStats` payload
// (the benchmark harness and the service layer account failures from
// it). The error path is cold — at most one value per run — so the
// by-value size clippy flags is irrelevant here, and boxing would
// complicate every public pattern match on `SynthesisError`.
#![allow(clippy::result_large_err)]

pub mod backend;
pub mod cache;
mod config;
mod observe;
pub mod refine;
mod result;
pub mod sched;
mod search;
mod session;
mod synth;

pub use backend::{
    Backend, BackendChoice, BatchOutcome, DeviceParallel, LevelBatch, RowVerdict, Sequential,
    ThreadParallel,
};
pub use cache::{LanguageCache, Provenance};
pub use config::SynthConfig;
pub use observe::{CancelToken, LevelLog, NoopObserver, Observer};
pub use refine::{ColdReason, RefineState, ReuseDecision, RunOutcome};
pub use result::{LevelStats, SynthesisError, SynthesisResult, SynthesisStats};
pub use session::{FusedRequest, SessionStats, SynthSession};
pub use synth::Synthesizer;
