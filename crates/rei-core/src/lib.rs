//! The Paresy algorithm: search-based regular expression inference.
//!
//! This crate implements Section 3 of *"Search-Based Regular Expression
//! Inference on a GPU"* (Valizadeh & Berger, PLDI 2023): a bottom-up,
//! cost-ordered search over regular *languages*, represented as
//! characteristic sequences over the infix closure of the examples, with
//!
//! * a write-once, contiguous **language cache** grouped by cost
//!   ([`cache::LanguageCache`]),
//! * per-cost **builders** for the `?`, `*`, `·` and `+` constructors that
//!   combine cached rows using the staged guide table,
//! * a global **uniqueness check** through a WarpCore-style concurrent set,
//! * **OnTheFly mode** once the memory budget is exhausted,
//! * reconstruction of a **minimal regular expression** from the provenance
//!   stored next to each row, and
//! * the **REI-with-error** extension of Section 5.2.
//!
//! Two engines share all of this machinery and differ only in how the rows
//! of a cost level are computed: [`Engine::Sequential`] is the reference
//! CPU implementation, [`Engine::parallel`] dispatches the per-candidate
//! work as data-parallel kernels on a [`gpu_sim::Device`].
//!
//! # Example
//!
//! ```
//! use rei_core::{Synthesizer, SynthesisError};
//! use rei_lang::Spec;
//! use rei_syntax::CostFn;
//!
//! let spec = Spec::from_strs(
//!     ["10", "101", "100", "1010", "1011", "1000", "1001"],
//!     ["", "0", "1", "00", "11", "010"],
//! ).unwrap();
//! let result = Synthesizer::new(CostFn::UNIFORM).run(&spec).unwrap();
//! assert_eq!(result.regex.to_string(), "10(0+1)*");
//! assert_eq!(result.cost, 8);
//! # Ok::<(), SynthesisError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod engine;
mod result;
mod search;
mod synth;

pub use cache::{LanguageCache, Provenance};
pub use engine::Engine;
pub use result::{LevelStats, SynthesisError, SynthesisResult, SynthesisStats};
pub use synth::Synthesizer;
