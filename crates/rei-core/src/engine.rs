//! The deprecated closed-enum engine selector, kept as a thin shim over
//! the open [`Backend`] abstraction so pre-0.2 call sites keep compiling
//! (with deprecation warnings).

#![allow(deprecated)]

use gpu_sim::Device;

use crate::backend::{Backend, BackendChoice, DeviceParallel, Sequential};

/// How the rows of each cost level are computed.
///
/// Deprecated: the two variants correspond one-to-one to the
/// [`Sequential`] and [`DeviceParallel`] backends; new code should select
/// a backend through [`SynthConfig::with_backend`](crate::SynthConfig) or
/// pass a custom [`Backend`] to
/// [`SynthSession::with_backend`](crate::SynthSession::with_backend).
#[deprecated(
    since = "0.2.0",
    note = "use the `Backend` trait (`Sequential`, `DeviceParallel`) with `SynthSession`, \
            or `BackendChoice` in `SynthConfig`"
)]
#[derive(Debug, Clone, Default)]
pub enum Engine {
    /// One candidate at a time, on the calling thread.
    #[default]
    Sequential,
    /// Candidates of a level computed as kernels on the given device.
    Parallel(Device),
}

impl Engine {
    /// A parallel engine on a device with the default configuration (one
    /// worker per available core).
    pub fn parallel() -> Self {
        Engine::Parallel(Device::default())
    }

    /// A parallel engine with an explicit number of device threads.
    pub fn parallel_with_threads(threads: usize) -> Self {
        Engine::Parallel(Device::with_threads(threads))
    }

    /// Returns the device backing this engine, if any.
    pub fn device(&self) -> Option<&Device> {
        match self {
            Engine::Sequential => None,
            Engine::Parallel(device) => Some(device),
        }
    }

    /// A short human-readable name. Delegates to the canonical
    /// [`Backend::name`] constants, which are the single source of truth
    /// shared with the CLI and the benchmark reports.
    pub fn name(&self) -> &'static str {
        match self {
            Engine::Sequential => Sequential::NAME,
            Engine::Parallel(_) => DeviceParallel::NAME,
        }
    }

    /// The backend this engine corresponds to. A `Parallel` engine's
    /// device is shared with the returned backend (statistics and
    /// configuration included).
    pub fn to_backend(&self) -> Box<dyn Backend> {
        match self {
            Engine::Sequential => Box::new(Sequential),
            Engine::Parallel(device) => Box::new(DeviceParallel::with_device(device.clone())),
        }
    }

    /// The serializable [`BackendChoice`] naming the same strategy. The
    /// device identity of a `Parallel` engine is not representable as a
    /// choice; only its thread count carries over.
    pub fn to_choice(&self) -> BackendChoice {
        match self {
            Engine::Sequential => BackendChoice::Sequential,
            Engine::Parallel(device) => BackendChoice::DeviceParallel {
                threads: Some(device.config().threads),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_devices() {
        assert_eq!(Engine::Sequential.name(), "cpu-sequential");
        assert!(Engine::Sequential.device().is_none());
        let parallel = Engine::parallel_with_threads(3);
        assert_eq!(parallel.name(), "gpu-sim-parallel");
        assert_eq!(parallel.device().unwrap().config().threads, 3);
    }

    #[test]
    fn default_is_sequential() {
        assert!(matches!(Engine::default(), Engine::Sequential));
    }

    #[test]
    fn shim_agrees_with_backend_names() {
        assert_eq!(
            Engine::Sequential.name(),
            Engine::Sequential.to_backend().name()
        );
        let parallel = Engine::parallel_with_threads(2);
        assert_eq!(parallel.name(), parallel.to_backend().name());
        assert_eq!(
            parallel.to_choice(),
            BackendChoice::DeviceParallel { threads: Some(2) }
        );
    }

    #[test]
    fn to_backend_shares_the_parallel_device() {
        let engine = Engine::parallel_with_threads(2);
        let backend = engine.to_backend();
        backend.device().unwrap().record_hash_insertions(5);
        assert_eq!(engine.device().unwrap().stats().hash_insertions, 5);
    }
}
