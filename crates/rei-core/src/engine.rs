//! Execution engines: sequential (CPU) and data-parallel (simulated GPU).

use gpu_sim::{Device, DeviceConfig};

/// How the rows of each cost level are computed.
///
/// Both engines implement the same algorithm and produce identical results;
/// they correspond to the paper's CPU and GPU implementations. The
/// sequential engine iterates over candidates one at a time with early
/// exits; the parallel engine materialises each level's candidates as a
/// batch of data-parallel kernel items on a [`Device`] and performs the
/// uniqueness/satisfaction pass afterwards, mirroring the temporary-buffer
/// → cache copy structure of the paper's GPU implementation.
#[derive(Debug, Clone)]
pub enum Engine {
    /// One candidate at a time, on the calling thread.
    Sequential,
    /// Candidates of a level computed as kernels on the given device.
    Parallel(Device),
}

impl Engine {
    /// A parallel engine on a device with the default configuration (one
    /// worker per available core).
    pub fn parallel() -> Self {
        Engine::Parallel(Device::new(DeviceConfig::default()))
    }

    /// A parallel engine with an explicit number of device threads.
    pub fn parallel_with_threads(threads: usize) -> Self {
        Engine::Parallel(Device::with_threads(threads))
    }

    /// Returns the device backing this engine, if any.
    pub fn device(&self) -> Option<&Device> {
        match self {
            Engine::Sequential => None,
            Engine::Parallel(device) => Some(device),
        }
    }

    /// A short human-readable name used by the benchmark harness.
    pub fn name(&self) -> &'static str {
        match self {
            Engine::Sequential => "cpu-sequential",
            Engine::Parallel(_) => "gpu-sim-parallel",
        }
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::Sequential
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_devices() {
        assert_eq!(Engine::Sequential.name(), "cpu-sequential");
        assert!(Engine::Sequential.device().is_none());
        let parallel = Engine::parallel_with_threads(3);
        assert_eq!(parallel.name(), "gpu-sim-parallel");
        assert_eq!(parallel.device().unwrap().config().threads, 3);
    }

    #[test]
    fn default_is_sequential() {
        assert!(matches!(Engine::default(), Engine::Sequential));
    }
}
