//! The public synthesiser API.

use std::time::{Duration, Instant};

use rei_lang::{Alphabet, Spec};
use rei_syntax::{CostFn, Regex};

use crate::result::{SynthesisError, SynthesisResult, SynthesisStats};
use crate::search::{self, SearchParams};
use crate::Engine;

/// Default memory budget for the language cache (bytes). The paper restricts
/// both implementations to the 25 GB of the Colab CPU; the default here is
/// sized for laptop-scale runs and can be raised with
/// [`Synthesizer::with_memory_budget`].
const DEFAULT_MEMORY_BUDGET: usize = 256 * 1024 * 1024;

/// A configured Paresy synthesiser.
///
/// A `Synthesizer` is constructed from a cost homomorphism and optional
/// overrides (engine, memory budget, cost bound, allowed error, alphabet)
/// and then applied to one or more specifications with
/// [`Synthesizer::run`]. The synthesiser is stateless across runs.
///
/// # Example
///
/// ```
/// use rei_core::{Engine, Synthesizer};
/// use rei_lang::Spec;
/// use rei_syntax::CostFn;
///
/// let spec = Spec::from_strs(["00", "0000"], ["", "0", "000"]).unwrap();
/// let synth = Synthesizer::new(CostFn::UNIFORM).with_engine(Engine::parallel_with_threads(2));
/// let result = synth.run(&spec).unwrap();
/// assert!(spec.is_satisfied_by(&result.regex));
/// ```
#[derive(Debug, Clone)]
pub struct Synthesizer {
    costs: CostFn,
    engine: Engine,
    memory_budget: usize,
    max_cost: Option<u64>,
    allowed_error: f64,
    alphabet: Option<Alphabet>,
    time_budget: Option<Duration>,
}

impl Synthesizer {
    /// Creates a synthesiser for the given cost homomorphism with default
    /// settings: sequential engine, 256 MiB cache budget, no explicit cost
    /// bound (the cost of the maximally overfitted expression is used), no
    /// allowed error, alphabet inferred from the specification.
    pub fn new(costs: CostFn) -> Self {
        Synthesizer {
            costs,
            engine: Engine::Sequential,
            memory_budget: DEFAULT_MEMORY_BUDGET,
            max_cost: None,
            allowed_error: 0.0,
            alphabet: None,
            time_budget: None,
        }
    }

    /// Selects the execution engine (sequential or data-parallel).
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the memory budget of the language cache in bytes. When the
    /// budget is exhausted the search switches to OnTheFly mode and may
    /// eventually fail with [`SynthesisError::OutOfMemory`].
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = bytes;
        self
    }

    /// Bounds the search to expressions of cost at most `max_cost`
    /// (`maxCost` in Algorithm 1). Without a bound, the cost of the
    /// maximally overfitted union of all positive examples is used, which
    /// always suffices for a precise solution.
    pub fn with_max_cost(mut self, max_cost: u64) -> Self {
        self.max_cost = Some(max_cost);
        self
    }

    /// Sets the allowed error of the REI-with-error extension (§5.2): a
    /// fraction in `[0, 1]` of examples the result may misclassify.
    ///
    /// # Panics
    ///
    /// Panics if `error` is not in `[0, 1]` or is not finite.
    pub fn with_allowed_error(mut self, error: f64) -> Self {
        assert!(
            error.is_finite() && (0.0..=1.0).contains(&error),
            "allowed error must be a fraction in [0, 1]"
        );
        self.allowed_error = error;
        self
    }

    /// Bounds the wall-clock time of a run. When exceeded the run fails
    /// with [`SynthesisError::Timeout`]. This mirrors the 5-second timeout
    /// the paper's evaluation applies to its random benchmark suite.
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Overrides the alphabet. By default the alphabet is the set of
    /// characters occurring in the examples; supplying a larger alphabet
    /// lets the result mention characters the examples do not exhibit.
    pub fn with_alphabet(mut self, alphabet: Alphabet) -> Self {
        self.alphabet = Some(alphabet);
        self
    }

    /// The cost homomorphism this synthesiser minimises against.
    pub fn costs(&self) -> &CostFn {
        &self.costs
    }

    /// The configured engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Runs regular expression inference on `spec`.
    ///
    /// On success the returned expression is *precise* (accepts all of `P`,
    /// rejects all of `N`, up to the configured allowed error) and
    /// *minimal* with respect to the cost homomorphism.
    ///
    /// # Errors
    ///
    /// * [`SynthesisError::NotFound`] if no expression within the cost
    ///   bound satisfies the specification.
    /// * [`SynthesisError::OutOfMemory`] if the language cache exceeded its
    ///   memory budget and OnTheFly mode could not finish the search.
    pub fn run(&self, spec: &Spec) -> Result<SynthesisResult, SynthesisError> {
        let started = Instant::now();
        let allowed_errors = self.allowed_example_errors(spec);

        // Trivial candidates of minimal cost, checked before the search
        // proper (lines 4-5 of Algorithm 1, generalised to allowed error).
        let mut candidates_checked = 0u64;
        for trivial in [Regex::Empty, Regex::Epsilon] {
            candidates_checked += 1;
            if spec.misclassified_by(&trivial) <= allowed_errors {
                return Ok(SynthesisResult {
                    cost: trivial.cost(&self.costs),
                    regex: trivial,
                    stats: SynthesisStats {
                        candidates_generated: candidates_checked,
                        unique_languages: candidates_checked,
                        elapsed: started.elapsed(),
                        ..SynthesisStats::default()
                    },
                });
            }
        }

        let alphabet = self
            .alphabet
            .clone()
            .unwrap_or_else(|| Alphabet::of_spec(spec));
        let max_cost = self
            .max_cost
            .unwrap_or_else(|| spec.overfit_regex().cost(&self.costs));

        let params = SearchParams {
            spec,
            alphabet,
            costs: self.costs,
            engine: &self.engine,
            memory_budget: self.memory_budget,
            allowed_errors,
            max_cost,
            time_budget: self.time_budget,
            started,
        };
        let mut outcome = search::run(params);
        match &mut outcome {
            Ok(result) => result.stats.candidates_generated += candidates_checked,
            Err(err) => match err {
                SynthesisError::NotFound { stats, .. }
                | SynthesisError::OutOfMemory { stats, .. }
                | SynthesisError::Timeout { stats, .. } => {
                    stats.candidates_generated += candidates_checked;
                }
            },
        }
        outcome
    }

    /// Number of examples the result may misclassify under the configured
    /// allowed-error fraction.
    pub fn allowed_example_errors(&self, spec: &Spec) -> usize {
        (self.allowed_error * spec.len() as f64).floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rei_lang::Word;

    fn uniform() -> Synthesizer {
        Synthesizer::new(CostFn::UNIFORM)
    }

    #[test]
    fn empty_positive_set_yields_empty_language() {
        let spec = Spec::from_strs([], ["0", "1", ""]).unwrap();
        let result = uniform().run(&spec).unwrap();
        assert_eq!(result.regex, Regex::Empty);
        assert_eq!(result.cost, 1);
    }

    #[test]
    fn epsilon_only_positive_yields_epsilon() {
        let spec = Spec::from_strs([""], ["0", "1"]).unwrap();
        let result = uniform().run(&spec).unwrap();
        assert_eq!(result.regex, Regex::Epsilon);
    }

    #[test]
    fn single_literal_spec() {
        let spec = Spec::from_strs(["1"], ["", "0"]).unwrap();
        let result = uniform().run(&spec).unwrap();
        assert_eq!(result.regex.to_string(), "1");
        assert_eq!(result.cost, 1);
    }

    #[test]
    fn paper_intro_example_uniform_cost() {
        let spec = Spec::from_strs(
            ["10", "101", "100", "1010", "1011", "1000", "1001"],
            ["", "0", "1", "00", "11", "010"],
        )
        .unwrap();
        let result = uniform().run(&spec).unwrap();
        assert_eq!(result.regex.to_string(), "10(0+1)*");
        assert_eq!(result.cost, 8);
        assert!(result.stats.candidates_generated > 0);
        assert!(result.stats.infix_closure_size >= 13);
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let spec = Spec::from_strs(
            ["1", "011", "1011", "11011"],
            ["", "10", "101", "0011"],
        )
        .unwrap();
        let sequential = uniform().run(&spec).unwrap();
        let parallel = uniform()
            .with_engine(Engine::parallel_with_threads(4))
            .run(&spec)
            .unwrap();
        assert!(spec.is_satisfied_by(&sequential.regex));
        assert!(spec.is_satisfied_by(&parallel.regex));
        assert_eq!(sequential.cost, parallel.cost, "both engines must be minimal");
    }

    #[test]
    fn minimality_against_exhaustive_oracle() {
        // For a small spec, check that no strictly cheaper expression
        // (enumerated exhaustively up to the found cost) satisfies it.
        let spec = Spec::from_strs(["0", "00", "000"], ["", "01", "1"]).unwrap();
        let result = uniform().run(&spec).unwrap();
        assert!(spec.is_satisfied_by(&result.regex));
        assert_eq!(result.regex.to_string(), "00*");
        // 2 literals + star + concat under the uniform cost function.
        assert_eq!(result.cost, 4);
    }

    #[test]
    fn max_cost_bound_yields_not_found() {
        let spec = Spec::from_strs(
            ["10", "101", "100", "1010", "1011", "1000", "1001"],
            ["", "0", "1", "00", "11", "010"],
        )
        .unwrap();
        let err = uniform().with_max_cost(5).run(&spec).unwrap_err();
        match err {
            SynthesisError::NotFound { max_cost, stats } => {
                assert_eq!(max_cost, 5);
                assert!(stats.candidates_generated > 0);
            }
            other => panic!("expected NotFound, got {other:?}"),
        }
    }

    #[test]
    fn tiny_memory_budget_reports_out_of_memory() {
        let spec = Spec::from_strs(
            ["10", "101", "100", "1010", "1011", "1000", "1001"],
            ["", "0", "1", "00", "11", "010"],
        )
        .unwrap();
        // A budget of a few hundred bytes holds only a handful of rows.
        let err = uniform().with_memory_budget(300).run(&spec).unwrap_err();
        match err {
            SynthesisError::OutOfMemory { stats, .. } => assert!(stats.used_on_the_fly),
            other => panic!("expected OutOfMemory, got {other:?}"),
        }
    }

    #[test]
    fn allowed_error_half_returns_empty_language() {
        // With 50 % allowed error the empty language misclassifies only the
        // positives, which is within budget — matching the last row of the
        // paper's allowed-error table.
        let spec = Spec::from_strs(["0", "1"], ["00", "11"]).unwrap();
        let result = uniform().with_allowed_error(0.5).run(&spec).unwrap();
        assert_eq!(result.regex, Regex::Empty);
    }

    #[test]
    #[should_panic(expected = "allowed error")]
    fn allowed_error_out_of_range_panics() {
        let _ = uniform().with_allowed_error(1.5);
    }

    #[test]
    fn zero_time_budget_times_out() {
        let spec = Spec::from_strs(
            ["10", "101", "100", "1010", "1011", "1000", "1001"],
            ["", "0", "1", "00", "11", "010"],
        )
        .unwrap();
        let err = uniform()
            .with_time_budget(Duration::ZERO)
            .run(&spec)
            .unwrap_err();
        assert!(matches!(err, SynthesisError::Timeout { .. }), "got {err:?}");
    }

    #[test]
    fn explicit_alphabet_extends_search_space() {
        // With the alphabet {0, 1, 2} the synthesiser may use '2' even
        // though it never occurs in the examples.
        let spec = Spec::from_strs(["0", "1", "2"], [""]).unwrap();
        let result = uniform()
            .with_alphabet(Alphabet::new(['0', '1', '2']))
            .run(&spec)
            .unwrap();
        assert!(spec.is_satisfied_by(&result.regex));
        assert!(result.regex.literals().contains(&'2'));
    }

    #[test]
    fn star_expensive_cost_function_prefers_star_free_results() {
        let spec = Spec::from_strs(["01", "0101"], ["", "0", "1", "10"]).unwrap();
        let expensive_star = Synthesizer::new(CostFn::new(1, 1, 50, 1, 1));
        let result = expensive_star.run(&spec).unwrap();
        assert!(spec.is_satisfied_by(&result.regex));
        assert!(
            rei_syntax::metrics::is_star_free(&result.regex),
            "expected a star-free result, got {}",
            result.regex
        );
    }

    #[test]
    fn alphabet_with_epsilon_examples() {
        let spec = Spec::new(
            [Word::epsilon(), Word::from("ab")],
            [Word::from("a"), Word::from("b")],
        )
        .unwrap();
        let result = uniform().run(&spec).unwrap();
        assert!(spec.is_satisfied_by(&result.regex));
    }
}
