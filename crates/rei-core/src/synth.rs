//! The one-shot synthesiser API, now a thin convenience wrapper around
//! [`SynthSession`].

use std::time::Duration;

use rei_lang::{Alphabet, Spec};
use rei_syntax::CostFn;

use crate::config::SynthConfig;
use crate::result::{SynthesisError, SynthesisResult};
use crate::session::SynthSession;

/// A configured Paresy synthesiser for one-shot runs.
///
/// A `Synthesizer` is constructed from a cost homomorphism and optional
/// overrides and then applied to a specification with
/// [`Synthesizer::run`]; it is stateless across runs. Internally every run
/// creates a fresh [`SynthSession`] — when running many specifications,
/// create one session yourself (via [`SynthConfig`]) so device setup and
/// warm buffers are paid once.
///
/// # Example
///
/// ```
/// use rei_core::Synthesizer;
/// use rei_lang::Spec;
/// use rei_syntax::CostFn;
///
/// let spec = Spec::from_strs(["00", "0000"], ["", "0", "000"]).unwrap();
/// let result = Synthesizer::new(CostFn::UNIFORM).run(&spec).unwrap();
/// assert!(spec.is_satisfied_by(&result.regex));
/// ```
#[derive(Debug, Clone)]
pub struct Synthesizer {
    config: SynthConfig,
}

impl Synthesizer {
    /// Creates a synthesiser for the given cost homomorphism with default
    /// settings (see [`SynthConfig::new`]).
    pub fn new(costs: CostFn) -> Self {
        Synthesizer {
            config: SynthConfig::new(costs),
        }
    }

    /// Selects the execution backend for one-shot runs (see
    /// [`SynthConfig::with_backend`]).
    pub fn with_backend(mut self, backend: crate::BackendChoice) -> Self {
        self.config = self.config.with_backend(backend);
        self
    }

    /// Sets the memory budget of the language cache in bytes. When the
    /// budget is exhausted the search switches to OnTheFly mode and may
    /// eventually fail with [`SynthesisError::OutOfMemory`].
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.config = self.config.with_memory_budget(bytes);
        self
    }

    /// Bounds the search to expressions of cost at most `max_cost`
    /// (`maxCost` in Algorithm 1).
    pub fn with_max_cost(mut self, max_cost: u64) -> Self {
        self.config = self.config.with_max_cost(max_cost);
        self
    }

    /// Sets the allowed error of the REI-with-error extension (§5.2): a
    /// fraction in `[0, 1]` of examples the result may misclassify.
    ///
    /// Out-of-range values no longer panic: they are reported by
    /// [`Synthesizer::run`] as [`SynthesisError::InvalidConfig`], exactly
    /// like [`SynthConfig::with_allowed_error`].
    pub fn with_allowed_error(mut self, error: f64) -> Self {
        self.config = self.config.with_allowed_error(error);
        self
    }

    /// Bounds the wall-clock time of a run. When exceeded the run fails
    /// with [`SynthesisError::Timeout`].
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.config = self.config.with_time_budget(budget);
        self
    }

    /// Overrides the alphabet. By default the alphabet is the set of
    /// characters occurring in the examples.
    pub fn with_alphabet(mut self, alphabet: Alphabet) -> Self {
        self.config = self.config.with_alphabet(alphabet);
        self
    }

    /// The cost homomorphism this synthesiser minimises against.
    pub fn costs(&self) -> &CostFn {
        self.config.costs()
    }

    /// The underlying session configuration.
    pub fn config(&self) -> &SynthConfig {
        &self.config
    }

    /// Runs regular expression inference on `spec` in a fresh one-shot
    /// session. See [`SynthSession::run`] for the result contract.
    pub fn run(&self, spec: &Spec) -> Result<SynthesisResult, SynthesisError> {
        let mut session = SynthSession::new(self.config.clone())?;
        session.run(spec)
    }

    /// Number of examples the result may misclassify under the configured
    /// allowed-error fraction.
    pub fn allowed_example_errors(&self, spec: &Spec) -> usize {
        self.config.allowed_example_errors(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rei_lang::Word;
    use rei_syntax::Regex;

    fn uniform() -> Synthesizer {
        Synthesizer::new(CostFn::UNIFORM)
    }

    #[test]
    fn empty_positive_set_yields_empty_language() {
        let spec = Spec::from_strs([], ["0", "1", ""]).unwrap();
        let result = uniform().run(&spec).unwrap();
        assert_eq!(result.regex, Regex::Empty);
        assert_eq!(result.cost, 1);
    }

    #[test]
    fn epsilon_only_positive_yields_epsilon() {
        let spec = Spec::from_strs([""], ["0", "1"]).unwrap();
        let result = uniform().run(&spec).unwrap();
        assert_eq!(result.regex, Regex::Epsilon);
    }

    #[test]
    fn single_literal_spec() {
        let spec = Spec::from_strs(["1"], ["", "0"]).unwrap();
        let result = uniform().run(&spec).unwrap();
        assert_eq!(result.regex.to_string(), "1");
        assert_eq!(result.cost, 1);
    }

    #[test]
    fn paper_intro_example_uniform_cost() {
        let spec = Spec::from_strs(
            ["10", "101", "100", "1010", "1011", "1000", "1001"],
            ["", "0", "1", "00", "11", "010"],
        )
        .unwrap();
        let result = uniform().run(&spec).unwrap();
        assert_eq!(result.regex.to_string(), "10(0+1)*");
        assert_eq!(result.cost, 8);
        assert!(result.stats.candidates_generated > 0);
        assert!(result.stats.infix_closure_size >= 13);
    }

    #[test]
    fn sequential_and_parallel_agree() {
        use crate::BackendChoice;
        let spec =
            Spec::from_strs(["1", "011", "1011", "11011"], ["", "10", "101", "0011"]).unwrap();
        let sequential = uniform().run(&spec).unwrap();
        let parallel = uniform()
            .with_backend(BackendChoice::DeviceParallel { threads: Some(4) })
            .run(&spec)
            .unwrap();
        assert!(spec.is_satisfied_by(&sequential.regex));
        assert!(spec.is_satisfied_by(&parallel.regex));
        assert_eq!(
            sequential.cost, parallel.cost,
            "both backends must be minimal"
        );
    }

    #[test]
    fn minimality_against_exhaustive_oracle() {
        // For a small spec, check that no strictly cheaper expression
        // (enumerated exhaustively up to the found cost) satisfies it.
        let spec = Spec::from_strs(["0", "00", "000"], ["", "01", "1"]).unwrap();
        let result = uniform().run(&spec).unwrap();
        assert!(spec.is_satisfied_by(&result.regex));
        assert_eq!(result.regex.to_string(), "00*");
        // 2 literals + star + concat under the uniform cost function.
        assert_eq!(result.cost, 4);
    }

    #[test]
    fn max_cost_bound_yields_not_found() {
        let spec = Spec::from_strs(
            ["10", "101", "100", "1010", "1011", "1000", "1001"],
            ["", "0", "1", "00", "11", "010"],
        )
        .unwrap();
        let err = uniform().with_max_cost(5).run(&spec).unwrap_err();
        match err {
            SynthesisError::NotFound { max_cost, stats } => {
                assert_eq!(max_cost, 5);
                assert!(stats.candidates_generated > 0);
            }
            other => panic!("expected NotFound, got {other:?}"),
        }
    }

    #[test]
    fn tiny_memory_budget_reports_out_of_memory() {
        let spec = Spec::from_strs(
            ["10", "101", "100", "1010", "1011", "1000", "1001"],
            ["", "0", "1", "00", "11", "010"],
        )
        .unwrap();
        // A budget of a few hundred bytes holds only a handful of rows.
        let err = uniform().with_memory_budget(300).run(&spec).unwrap_err();
        match err {
            SynthesisError::OutOfMemory { stats, .. } => assert!(stats.used_on_the_fly),
            other => panic!("expected OutOfMemory, got {other:?}"),
        }
    }

    #[test]
    fn allowed_error_half_returns_empty_language() {
        // With 50 % allowed error the empty language misclassifies only the
        // positives, which is within budget — matching the last row of the
        // paper's allowed-error table.
        let spec = Spec::from_strs(["0", "1"], ["00", "11"]).unwrap();
        let result = uniform().with_allowed_error(0.5).run(&spec).unwrap();
        assert_eq!(result.regex, Regex::Empty);
    }

    #[test]
    fn allowed_error_out_of_range_is_invalid_config() {
        // The old builder panicked here; the config-validated API reports
        // the problem as a recoverable error instead.
        let spec = Spec::from_strs(["0"], ["1"]).unwrap();
        for bad in [1.5, -0.5, f64::NAN] {
            let err = uniform().with_allowed_error(bad).run(&spec).unwrap_err();
            assert!(
                matches!(err, SynthesisError::InvalidConfig { .. }),
                "expected InvalidConfig for {bad}, got {err:?}"
            );
        }
    }

    #[test]
    fn zero_time_budget_times_out() {
        let spec = Spec::from_strs(
            ["10", "101", "100", "1010", "1011", "1000", "1001"],
            ["", "0", "1", "00", "11", "010"],
        )
        .unwrap();
        let err = uniform()
            .with_time_budget(Duration::ZERO)
            .run(&spec)
            .unwrap_err();
        assert!(matches!(err, SynthesisError::Timeout { .. }), "got {err:?}");
    }

    #[test]
    fn explicit_alphabet_extends_search_space() {
        // With the alphabet {0, 1, 2} the synthesiser may use '2' even
        // though it never occurs in the examples.
        let spec = Spec::from_strs(["0", "1", "2"], [""]).unwrap();
        let result = uniform()
            .with_alphabet(Alphabet::new(['0', '1', '2']))
            .run(&spec)
            .unwrap();
        assert!(spec.is_satisfied_by(&result.regex));
        assert!(result.regex.literals().contains(&'2'));
    }

    #[test]
    fn star_expensive_cost_function_prefers_star_free_results() {
        let spec = Spec::from_strs(["01", "0101"], ["", "0", "1", "10"]).unwrap();
        let expensive_star = Synthesizer::new(CostFn::new(1, 1, 50, 1, 1));
        let result = expensive_star.run(&spec).unwrap();
        assert!(spec.is_satisfied_by(&result.regex));
        assert!(
            rei_syntax::metrics::is_star_free(&result.regex),
            "expected a star-free result, got {}",
            result.regex
        );
    }

    #[test]
    fn alphabet_with_epsilon_examples() {
        let spec = Spec::new(
            [Word::epsilon(), Word::from("ab")],
            [Word::from("a"), Word::from("b")],
        )
        .unwrap();
        let result = uniform().run(&spec).unwrap();
        assert!(spec.is_satisfied_by(&result.regex));
    }
}
