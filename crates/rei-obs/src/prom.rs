//! A minimal Prometheus text-format (version 0.0.4) builder.
//!
//! The service tier exposes counters, gauges and latency histograms on
//! a plain-text scrape endpoint. This builder owns the formatting
//! rules — `# TYPE` headers, label escaping, cumulative `le` buckets
//! ending in `+Inf`, `_sum`/`_count` companions — so the encoders in
//! higher crates only decide *what* to expose.

use crate::hist::HistogramSnapshot;

/// Accumulates one scrape body.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
    typed: Vec<String>,
}

/// Escapes a label value (backslash, quote, newline).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn format_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(key, value)| format!("{key}=\"{}\"", escape_label(value)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Formats an f64 the way Prometheus expects (no exponent surprises
/// for the magnitudes we emit; integral values lose the ".0").
fn format_value(value: f64) -> String {
    if value == value.trunc() && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

impl PromText {
    /// An empty scrape body.
    pub fn new() -> Self {
        Self::default()
    }

    /// Emits the `# TYPE` header for a metric family once; repeated
    /// declarations of the same family are ignored.
    pub fn family(&mut self, name: &str, kind: &str, help: &str) {
        if self.typed.iter().any(|seen| seen == name) {
            return;
        }
        self.typed.push(name.to_string());
        self.out.push_str(&format!("# HELP {name} {help}\n"));
        self.out.push_str(&format!("# TYPE {name} {kind}\n"));
    }

    /// Emits one sample line.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(&format!(
            "{name}{} {}\n",
            format_labels(labels),
            format_value(value)
        ));
    }

    /// Emits a full histogram family instance from a snapshot of
    /// nanosecond samples: cumulative `_bucket` lines at the given
    /// `le` boundaries (seconds) plus `+Inf`, then `_sum` (seconds)
    /// and `_count`.
    pub fn histogram(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        bounds_secs: &[f64],
        snapshot: &HistogramSnapshot,
    ) {
        let bounds_ns: Vec<u64> = bounds_secs.iter().map(|s| (s * 1e9) as u64).collect();
        let cumulative = snapshot.cumulative(&bounds_ns);
        let bucket_name = format!("{name}_bucket");
        for (bound, seen) in bounds_secs.iter().zip(&cumulative) {
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            let le = format_value(*bound);
            with_le.push(("le", &le));
            self.sample(&bucket_name, &with_le, *seen as f64);
        }
        let mut with_inf: Vec<(&str, &str)> = labels.to_vec();
        with_inf.push(("le", "+Inf"));
        self.sample(&bucket_name, &with_inf, snapshot.count as f64);
        self.sample(&format!("{name}_sum"), labels, snapshot.sum as f64 / 1e9);
        self.sample(&format!("{name}_count"), labels, snapshot.count as f64);
    }

    /// The finished scrape body.
    pub fn render(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    #[test]
    fn counters_and_labels_are_formatted() {
        let mut text = PromText::new();
        text.family("rei_requests_total", "counter", "Requests.");
        text.family("rei_requests_total", "counter", "Requests."); // deduped
        text.sample("rei_requests_total", &[("pool", "pool-0")], 7.0);
        text.sample("rei_requests_total", &[("pool", "po\"ol")], 1.5);
        let body = text.render();
        assert_eq!(body.matches("# TYPE rei_requests_total").count(), 1);
        assert!(body.contains("rei_requests_total{pool=\"pool-0\"} 7\n"));
        assert!(body.contains("rei_requests_total{pool=\"po\\\"ol\"} 1.5\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_in_inf() {
        let hist = Histogram::new();
        // 1µs, 1ms, 1s in nanoseconds.
        for ns in [1_000, 1_000_000, 1_000_000_000u64] {
            hist.record(ns);
        }
        let mut text = PromText::new();
        text.family("rei_wait_seconds", "histogram", "Wait.");
        text.histogram(
            "rei_wait_seconds",
            &[("pool", "p")],
            &[0.001, 0.1, 10.0],
            &hist.snapshot(),
        );
        let body = text.render();
        let counts: Vec<f64> = body
            .lines()
            .filter(|line| line.starts_with("rei_wait_seconds_bucket"))
            .map(|line| line.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert_eq!(counts.len(), 4);
        for pair in counts.windows(2) {
            assert!(pair[0] <= pair[1], "non-monotone buckets: {counts:?}");
        }
        assert_eq!(*counts.last().unwrap(), 3.0);
        assert!(body.contains("le=\"+Inf\""));
        assert!(body.contains("rei_wait_seconds_count{pool=\"p\"} 3\n"));
    }
}
