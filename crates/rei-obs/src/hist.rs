//! Mergeable log-linear histograms over atomic counters.
//!
//! Values (nanoseconds, but the math is unit-agnostic) are bucketed
//! log-linearly: each power-of-two octave is split into 16 linear
//! sub-buckets, and values below 16 get one exact bucket each. A
//! bucket's width is therefore at most 1/16 of its lower bound, which
//! bounds the relative error of any reported quantile by 6.25%.
//!
//! The live [`Histogram`] is a fixed array of `AtomicU64` counters —
//! recording is one relaxed `fetch_add`, safe from any thread, and
//! never blocks the serving path. [`HistogramSnapshot`] is the plain
//! (`Vec<u64>`) copy that merges across pools and answers quantiles.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// log2 of the sub-buckets per octave (16 sub-buckets).
const SUB_BITS: u32 = 4;
/// Linear sub-buckets per power-of-two octave.
const SUB: usize = 1 << SUB_BITS;
/// Octaves covered above the exact range: exponents 4..=63.
const OCTAVES: usize = 64 - SUB_BITS as usize;

/// Total bucket count: 16 exact buckets for values `0..16`, then 16
/// sub-buckets for each of the 60 octaves up to `u64::MAX`.
pub const BUCKETS: usize = SUB + OCTAVES * SUB;

/// Default `le` boundaries (seconds) for Prometheus exposition of
/// latency histograms: 100µs to 10s plus `+Inf` added by the encoder.
pub const LATENCY_BOUNDS_SECS: &[f64] = &[
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0,
];

/// Bucket index of a value. Exact below 16; log-linear above.
fn bucket_index(value: u64) -> usize {
    if value < SUB as u64 {
        value as usize
    } else {
        let exp = 63 - value.leading_zeros() as usize;
        let group = exp - SUB_BITS as usize;
        let sub = (value >> group) as usize - SUB;
        SUB + group * SUB + sub
    }
}

/// Inclusive `(low, high)` value range of a bucket.
fn bucket_range(index: usize) -> (u64, u64) {
    if index < SUB {
        (index as u64, index as u64)
    } else {
        let group = (index - SUB) / SUB;
        let sub = ((index - SUB) % SUB) as u64;
        let low = (SUB as u64 + sub) << group;
        let high = low + ((1u64 << group) - 1);
        (low, high)
    }
}

/// A live log-linear histogram: lock-free recording into atomic
/// buckets. Take a [`snapshot`](Histogram::snapshot) to merge or query.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        let buckets = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one value (relaxed atomics; callable from any thread).
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, duration: Duration) {
        self.record(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Copies the counters into a plain, mergeable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A plain-integer copy of a [`Histogram`]: mergeable across pools and
/// processes, and the thing quantiles are answered from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    /// Total recorded samples.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Adds every sample of `other` into `self`. Merging snapshots is
    /// exactly equivalent to having recorded both sample sets into one
    /// histogram.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The `q`-quantile (`0.0..=1.0`) as an upper estimate: the
    /// inclusive upper edge of the bucket holding the rank-`⌈q·n⌉`
    /// sample. Never below the true sample value and at most 1/16
    /// above it. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_range(index).1;
            }
        }
        bucket_range(BUCKETS - 1).1
    }

    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Cumulative counts at the given sorted inclusive upper bounds: the
    /// number of samples whose bucket lies entirely at or below each
    /// bound. Samples above the last bound appear only in the implicit
    /// `+Inf` bucket ([`count`](Self::count)). The result is monotone
    /// non-decreasing by construction.
    pub fn cumulative(&self, bounds: &[u64]) -> Vec<u64> {
        let mut per_bound = vec![0u64; bounds.len()];
        for (index, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let high = bucket_range(index).1;
            if let Some(slot) = bounds.iter().position(|&b| high <= b) {
                per_bound[slot] += n;
            }
        }
        let mut running = 0;
        for slot in per_bound.iter_mut() {
            running += *slot;
            *slot = running;
        }
        per_bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift so the quantile test needs no rand shim.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn buckets_partition_the_value_space() {
        // Every bucket's range maps back to the bucket, and ranges abut.
        let mut expected_low = 0u64;
        for index in 0..BUCKETS {
            let (low, high) = bucket_range(index);
            assert_eq!(low, expected_low, "bucket {index} starts off-by");
            assert_eq!(bucket_index(low), index);
            assert_eq!(bucket_index(high), index);
            if high == u64::MAX {
                assert_eq!(index, BUCKETS - 1);
                return;
            }
            expected_low = high + 1;
        }
        panic!("last bucket must end at u64::MAX");
    }

    #[test]
    fn relative_bucket_error_is_bounded() {
        for index in SUB..BUCKETS {
            let (low, high) = bucket_range(index);
            // Bucket width ≤ low/16, so high ≤ low · (1 + 1/16).
            assert!(high - low <= low / SUB as u64, "bucket {index}");
        }
    }

    #[test]
    fn quantiles_match_exact_reference_within_error_bound() {
        let mut rng = Rng(0x9E3779B97F4A7C15);
        let hist = Histogram::new();
        let mut samples: Vec<u64> = (0..10_000).map(|_| rng.next() % 1_000_000_000).collect();
        for &s in &samples {
            hist.record(s);
        }
        samples.sort_unstable();
        let snapshot = hist.snapshot();
        assert_eq!(snapshot.count, samples.len() as u64);
        for q in [0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let exact = samples[rank - 1];
            let approx = snapshot.quantile(q);
            assert!(approx >= exact, "q={q}: {approx} < exact {exact}");
            assert!(
                approx <= exact + exact / 16 + 1,
                "q={q}: {approx} above error bound for exact {exact}"
            );
        }
    }

    #[test]
    fn merge_is_equivalent_to_combined_recording() {
        let (a, b, combined) = (Histogram::new(), Histogram::new(), Histogram::new());
        let mut rng = Rng(42);
        for i in 0..5_000 {
            let value = rng.next() % 10_000_000;
            if i % 2 == 0 { &a } else { &b }.record(value);
            combined.record(value);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, combined.snapshot());
    }

    #[test]
    fn concurrent_recording_loses_no_counts() {
        let hist = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let hist = hist.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        hist.record(t * 1_000 + i % 997);
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().unwrap();
        }
        let snapshot = hist.snapshot();
        assert_eq!(snapshot.count, 40_000);
        assert_eq!(snapshot.buckets.iter().sum::<u64>(), 40_000);
    }

    #[test]
    fn cumulative_counts_are_monotone_and_capped_by_count() {
        let hist = Histogram::new();
        for value in [5, 50, 500, 5_000, 50_000, 500_000, u64::MAX] {
            hist.record(value);
        }
        let snapshot = hist.snapshot();
        let bounds = [10, 1_000, 100_000, 10_000_000];
        let cumulative = snapshot.cumulative(&bounds);
        assert_eq!(cumulative.len(), bounds.len());
        for pair in cumulative.windows(2) {
            assert!(pair[0] <= pair[1], "non-monotone: {cumulative:?}");
        }
        assert!(cumulative[bounds.len() - 1] <= snapshot.count);
        assert_eq!(cumulative[0], 1); // only the 5 fits under 10
    }

    #[test]
    fn empty_histogram_answers_zero() {
        let snapshot = Histogram::new().snapshot();
        assert_eq!(snapshot.quantile(0.99), 0);
        assert_eq!(snapshot.mean(), 0.0);
    }

    #[test]
    fn mean_tracks_the_exact_sum() {
        let hist = Histogram::new();
        for value in [10, 20, 30] {
            hist.record(value);
        }
        assert_eq!(hist.snapshot().mean(), 20.0);
    }
}
