//! Per-request trace timelines.
//!
//! A [`TraceRegistry`] hands out monotonically increasing trace ids at
//! admission and keeps the phase events of recent requests in one
//! bounded ring buffer (oldest events drop first, so a hot service can
//! trace forever in constant memory). A [`Trace`] is the cheap
//! cloneable handle a request carries through the layers; each layer
//! appends a phase event — the vocabulary is
//!
//! ```text
//! admitted → routed(pool) → enqueued → fused(batch) →
//!     level(cost, wall, candidates)* → cache-append → answered
//! ```
//!
//! When the registry was given an SLO threshold, [`Trace::finish`]
//! dumps the full timeline of any request whose end-to-end latency
//! reached the threshold to the structured log ([`crate::log`], level
//! `warn`, component `slo`).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One phase event of one request's timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The trace id the event belongs to.
    pub trace: u64,
    /// Offset from the trace's admission (when [`TraceRegistry::begin`]
    /// handed out the id).
    pub offset: Duration,
    /// Phase name (fixed vocabulary; see the module docs).
    pub phase: &'static str,
    /// Free-form detail: pool name, batch size, level counters, …
    pub detail: String,
}

/// The shared ring of recent trace events plus the id allocator.
#[derive(Debug)]
pub struct TraceRegistry {
    next: AtomicU64,
    ring: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
    slo: Option<Duration>,
}

impl TraceRegistry {
    /// A registry keeping at most `capacity` events; requests at or
    /// above `slo` end-to-end are dumped to the slow-request log.
    pub fn new(capacity: usize, slo: Option<Duration>) -> Arc<TraceRegistry> {
        Arc::new(TraceRegistry {
            next: AtomicU64::new(1),
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity: capacity.max(1),
            slo,
        })
    }

    /// Allocates the next trace id and returns the request's handle.
    pub fn begin(self: &Arc<TraceRegistry>) -> Trace {
        Trace {
            registry: Arc::clone(self),
            id: self.next.fetch_add(1, Ordering::Relaxed),
            started: Instant::now(),
        }
    }

    /// The configured SLO threshold, if any.
    pub fn slo(&self) -> Option<Duration> {
        self.slo
    }

    /// All retained events of one trace, in recording order.
    pub fn events(&self, trace: u64) -> Vec<TraceEvent> {
        let ring = self.ring.lock().expect("trace ring poisoned");
        ring.iter().filter(|e| e.trace == trace).cloned().collect()
    }

    fn push(&self, event: TraceEvent) {
        let mut ring = self.ring.lock().expect("trace ring poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(event);
    }
}

/// The per-request handle: clones share the same id and registry.
#[derive(Debug, Clone)]
pub struct Trace {
    registry: Arc<TraceRegistry>,
    id: u64,
    started: Instant,
}

impl Trace {
    /// The request's trace id (echoed in the wire response).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Appends a phase event to the registry's ring.
    pub fn record(&self, phase: &'static str, detail: impl Into<String>) {
        self.registry.push(TraceEvent {
            trace: self.id,
            offset: self.started.elapsed(),
            phase,
            detail: detail.into(),
        });
    }

    /// Records the terminal `answered` event and, when the measured
    /// end-to-end `elapsed` reached the registry's SLO threshold,
    /// dumps the full timeline to the slow-request log. Returns
    /// whether the dump fired.
    pub fn finish(&self, elapsed: Duration) -> bool {
        self.record(
            "answered",
            format!("elapsed_ms={:.3}", elapsed.as_secs_f64() * 1e3),
        );
        let Some(slo) = self.registry.slo else {
            return false;
        };
        if elapsed < slo {
            return false;
        }
        let timeline: Vec<String> = self
            .registry
            .events(self.id)
            .iter()
            .map(|event| {
                let at_ms = event.offset.as_secs_f64() * 1e3;
                if event.detail.is_empty() {
                    format!("{}@{at_ms:.3}ms", event.phase)
                } else {
                    format!("{}({})@{at_ms:.3}ms", event.phase, event.detail)
                }
            })
            .collect();
        crate::log::warn(
            "slo",
            "slow request",
            &[
                ("trace", self.id.to_string()),
                ("elapsed_ms", format!("{:.3}", elapsed.as_secs_f64() * 1e3)),
                ("slo_ms", format!("{:.3}", slo.as_secs_f64() * 1e3)),
                ("timeline", timeline.join(" ")),
            ],
        );
        true
    }

    /// Time elapsed since the trace was begun (admission).
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_events_are_queryable() {
        let registry = TraceRegistry::new(64, None);
        let a = registry.begin();
        let b = registry.begin();
        assert_ne!(a.id(), b.id());
        a.record("admitted", "tenant=t");
        b.record("admitted", "tenant=u");
        a.record("enqueued", "");
        let events = registry.events(a.id());
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].phase, "admitted");
        assert_eq!(events[0].detail, "tenant=t");
        assert_eq!(events[1].phase, "enqueued");
        assert!(events[1].offset >= events[0].offset);
        assert_eq!(registry.events(b.id()).len(), 1);
    }

    #[test]
    fn ring_overflow_drops_the_oldest_events() {
        let registry = TraceRegistry::new(4, None);
        let trace = registry.begin();
        for i in 0..6 {
            trace.record("level", format!("cost={i}"));
        }
        let events = registry.events(trace.id());
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].detail, "cost=2"); // 0 and 1 were dropped
        assert_eq!(events[3].detail, "cost=5");
    }

    #[test]
    fn slow_dump_fires_exactly_at_the_threshold() {
        let slo = Duration::from_millis(250);
        let registry = TraceRegistry::new(16, Some(slo));
        let trace = registry.begin();
        trace.record("admitted", "");
        assert!(!trace.finish(slo - Duration::from_nanos(1)));
        assert!(trace.finish(slo)); // boundary inclusive
        assert!(trace.finish(slo + Duration::from_millis(1)));
    }

    #[test]
    fn without_an_slo_finish_never_dumps_but_still_records() {
        let registry = TraceRegistry::new(16, None);
        let trace = registry.begin();
        assert!(!trace.finish(Duration::from_secs(60)));
        let events = registry.events(trace.id());
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].phase, "answered");
    }
}
