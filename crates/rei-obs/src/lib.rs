//! Observability primitives for the Paresy service tier.
//!
//! Three building blocks, deliberately free of external dependencies so
//! they can sit below every other crate in the workspace:
//!
//! * [`Histogram`] — a mergeable log-linear latency histogram over
//!   atomic counters. Recording is a single relaxed `fetch_add`;
//!   [`HistogramSnapshot::quantile`] answers p50/p95/p99 with a relative
//!   error bounded by 1/16 (one sub-bucket).
//! * [`TraceRegistry`] / [`Trace`] — per-request trace timelines: a
//!   trace id handed out at admission plus a bounded ring buffer of
//!   phase events (`admitted → routed → enqueued → fused → level →
//!   cache-append → answered`). Requests that blow through a configured
//!   SLO are dumped to the structured log on completion.
//! * [`PromText`] — a tiny Prometheus-text-format builder (counters,
//!   gauges, histograms with `le` labels) used by the scrape endpoint.
//!
//! Plus [`mod@log`], a leveled JSONL-to-stderr logger (`REI_LOG` env,
//! programmatic override) that replaces ad-hoc `eprintln!` diagnostics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
pub mod log;
mod prom;
mod trace;

pub use hist::{Histogram, HistogramSnapshot, BUCKETS, LATENCY_BOUNDS_SECS};
pub use log::Level;
pub use prom::PromText;
pub use trace::{Trace, TraceEvent, TraceRegistry};
