//! Leveled structured logging: one JSON object per line on stderr.
//!
//! The level is taken from the `REI_LOG` environment variable
//! (`error` | `warn` | `info` | `debug`, default `info`) the first time
//! anything logs, and can be overridden programmatically with
//! [`set_level`] (the `--log-level` flag of `paresy serve`). Each line
//! looks like
//!
//! ```text
//! {"ts":1719410000.123,"level":"warn","component":"cache","msg":"cannot read cache file","path":"/x.jsonl"}
//! ```
//!
//! so operators can machine-parse service diagnostics instead of
//! scraping free-form `eprintln!` text.

use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or data-losing conditions.
    Error = 0,
    /// Degraded but continuing (skipped cache records, slow requests).
    Warn = 1,
    /// Lifecycle events. The default threshold.
    Info = 2,
    /// Per-request chatter.
    Debug = 3,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// Parses a level name (case-insensitive). `None` on anything else.
pub fn parse_level(name: &str) -> Option<Level> {
    match name.to_ascii_lowercase().as_str() {
        "error" => Some(Level::Error),
        "warn" | "warning" => Some(Level::Warn),
        "info" => Some(Level::Info),
        "debug" => Some(Level::Debug),
        _ => None,
    }
}

const UNSET: u8 = u8::MAX;
static THRESHOLD: AtomicU8 = AtomicU8::new(UNSET);

/// Overrides the log threshold (wins over `REI_LOG`).
pub fn set_level(level: Level) {
    THRESHOLD.store(level as u8, Ordering::Relaxed);
}

/// The active threshold: the programmatic override if set, else
/// `REI_LOG`, else [`Level::Info`].
pub fn level() -> Level {
    match THRESHOLD.load(Ordering::Relaxed) {
        UNSET => {
            let level = std::env::var("REI_LOG")
                .ok()
                .and_then(|name| parse_level(&name))
                .unwrap_or(Level::Info);
            THRESHOLD.store(level as u8, Ordering::Relaxed);
            level
        }
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn escape_json(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Emits one structured line at `level` if it clears the threshold.
/// `fields` are appended as extra string-valued JSON members.
pub fn log(level: Level, component: &str, message: &str, fields: &[(&str, String)]) {
    if level > self::level() {
        return;
    }
    let ts = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0);
    let mut line = format!(
        "{{\"ts\":{ts:.3},\"level\":\"{}\",\"component\":\"{}\",\"msg\":\"{}\"",
        level.as_str(),
        escape_json(component),
        escape_json(message)
    );
    for (key, value) in fields {
        line.push_str(&format!(
            ",\"{}\":\"{}\"",
            escape_json(key),
            escape_json(value)
        ));
    }
    line.push('}');
    eprintln!("{line}");
}

/// [`log`] at [`Level::Error`].
pub fn error(component: &str, message: &str, fields: &[(&str, String)]) {
    log(Level::Error, component, message, fields);
}

/// [`log`] at [`Level::Warn`].
pub fn warn(component: &str, message: &str, fields: &[(&str, String)]) {
    log(Level::Warn, component, message, fields);
}

/// [`log`] at [`Level::Info`].
pub fn info(component: &str, message: &str, fields: &[(&str, String)]) {
    log(Level::Info, component, message, fields);
}

/// [`log`] at [`Level::Debug`].
pub fn debug(component: &str, message: &str, fields: &[(&str, String)]) {
    log(Level::Debug, component, message, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_names_round_trip() {
        for level in [Level::Error, Level::Warn, Level::Info, Level::Debug] {
            assert_eq!(parse_level(level.as_str()), Some(level));
        }
        assert_eq!(parse_level("WARNING"), Some(Level::Warn));
        assert_eq!(parse_level("verbose"), None);
    }

    #[test]
    fn escaping_covers_quotes_and_control_characters() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("line\nbreak\t"), "line\\nbreak\\t");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn severity_orders_most_severe_first() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }
}
