//! Words (finite strings) over a `char` alphabet with the shortlex order.

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// A finite string over an arbitrary `char` alphabet.
///
/// Words are ordered by **shortlex** (Definition 2.5 of the paper): shorter
/// words come first, words of equal length are compared lexicographically.
/// This is the total order used to lay out characteristic sequences in
/// memory.
///
/// # Example
///
/// ```
/// use rei_lang::Word;
///
/// let a: Word = "10".parse().unwrap();
/// let b: Word = "011".parse().unwrap();
/// assert!(a < b, "shortlex: length dominates");
/// assert!(Word::epsilon() < a);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Word(Vec<char>);

impl Word {
    /// The empty word `ε`.
    pub fn epsilon() -> Self {
        Word(Vec::new())
    }

    /// Creates a word from an iterator of characters.
    pub fn new<I: IntoIterator<Item = char>>(chars: I) -> Self {
        Word(chars.into_iter().collect())
    }

    /// Length of the word (`||σ||` in the paper's notation).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if this is the empty word.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The characters of the word.
    pub fn chars(&self) -> &[char] {
        &self.0
    }

    /// Concatenation `self · other`.
    pub fn concat(&self, other: &Word) -> Word {
        let mut chars = self.0.clone();
        chars.extend_from_slice(&other.0);
        Word(chars)
    }

    /// The infix (substring) spanning positions `start..end`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.len()`.
    pub fn infix(&self, start: usize, end: usize) -> Word {
        Word(self.0[start..end].to_vec())
    }

    /// Iterates over all infixes of the word, including `ε` and the word
    /// itself. Duplicates are produced when the same infix occurs at
    /// multiple positions.
    pub fn infixes(&self) -> impl Iterator<Item = Word> + '_ {
        let n = self.len();
        std::iter::once(Word::epsilon()).chain(
            (0..n).flat_map(move |start| (start + 1..=n).map(move |end| self.infix(start, end))),
        )
    }

    /// Returns `true` if `other` occurs as an infix of `self`.
    pub fn contains_infix(&self, other: &Word) -> bool {
        if other.is_empty() {
            return true;
        }
        if other.len() > self.len() {
            return false;
        }
        self.0.windows(other.len()).any(|w| w == other.chars())
    }
}

impl Ord for Word {
    fn cmp(&self, other: &Self) -> Ordering {
        self.len()
            .cmp(&other.len())
            .then_with(|| self.0.cmp(&other.0))
    }
}

impl PartialOrd for Word {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Word {
    /// The empty word is displayed as `ε`, other words as their characters.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            f.write_str("ε")
        } else {
            for c in &self.0 {
                write!(f, "{c}")?;
            }
            Ok(())
        }
    }
}

impl FromStr for Word {
    type Err = std::convert::Infallible;

    /// Every string parses; the empty string parses to `ε`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(Word::new(s.chars()))
    }
}

impl From<&str> for Word {
    fn from(s: &str) -> Self {
        Word::new(s.chars())
    }
}

impl FromIterator<char> for Word {
    fn from_iter<I: IntoIterator<Item = char>>(iter: I) -> Self {
        Word::new(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn shortlex_orders_by_length_first() {
        let mut words: Vec<Word> = ["11", "0", "", "10", "000", "1"]
            .iter()
            .map(|s| Word::from(*s))
            .collect();
        words.sort();
        let rendered: Vec<String> = words.iter().map(|w| w.to_string()).collect();
        assert_eq!(rendered, vec!["ε", "0", "1", "10", "11", "000"]);
    }

    #[test]
    fn infixes_of_small_word() {
        let w = Word::from("abc");
        let mut infixes: Vec<String> = w.infixes().map(|x| x.to_string()).collect();
        infixes.sort();
        infixes.dedup();
        assert_eq!(infixes, vec!["a", "ab", "abc", "b", "bc", "c", "ε"]);
    }

    #[test]
    fn contains_infix_matches_paper_definition() {
        let w = Word::from("11011");
        assert!(w.contains_infix(&Word::from("101")));
        assert!(w.contains_infix(&Word::epsilon()));
        assert!(!w.contains_infix(&Word::from("00")));
        assert!(!w.contains_infix(&Word::from("110110")));
    }

    #[test]
    fn concat_and_display() {
        let w = Word::from("10").concat(&Word::from("01"));
        assert_eq!(w.to_string(), "1001");
        assert_eq!(Word::epsilon().to_string(), "ε");
    }

    #[test]
    fn parse_round_trip() {
        let w: Word = "0101".parse().unwrap();
        assert_eq!(w, Word::from("0101"));
        let e: Word = "".parse().unwrap();
        assert_eq!(e, Word::epsilon());
    }

    proptest! {
        /// Every infix reported by `infixes` is contained in the word.
        #[test]
        fn infixes_are_contained(s in "[01ab]{0,8}") {
            let w = Word::from(s.as_str());
            for infix in w.infixes() {
                prop_assert!(w.contains_infix(&infix));
            }
        }

        /// The number of infix occurrences of a word of length n is
        /// 1 + n(n+1)/2.
        #[test]
        fn infix_occurrence_count(s in "[01]{0,10}") {
            let w = Word::from(s.as_str());
            let n = w.len();
            prop_assert_eq!(w.infixes().count(), 1 + n * (n + 1) / 2);
        }

        /// Shortlex is a total order compatible with concatenation length.
        #[test]
        fn shortlex_total(a in "[01]{0,5}", b in "[01]{0,5}") {
            let wa = Word::from(a.as_str());
            let wb = Word::from(b.as_str());
            let ordered = wa.cmp(&wb);
            prop_assert_eq!(ordered.reverse(), wb.cmp(&wa));
            if wa.len() < wb.len() {
                prop_assert_eq!(ordered, std::cmp::Ordering::Less);
            }
        }
    }
}
