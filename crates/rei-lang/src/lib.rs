//! Formal-language substrate for Paresy-rs.
//!
//! This crate implements the data structures of Sections 2 and 3 of the
//! paper that the synthesiser searches over:
//!
//! * [`Word`] — strings over an arbitrary `char` alphabet with the
//!   **shortlex** total order (Definition 2.5).
//! * [`Alphabet`] — a finite, ordered set of characters.
//! * [`Spec`] — a specification `(P, N)` of positive and negative examples
//!   (Definition 3.1).
//! * [`InfixClosure`] — the infix closure `ic(P ∪ N)` in shortlex order,
//!   which is the index set of every characteristic sequence
//!   (Definition 3.5).
//! * [`Cs`] — characteristic sequences: bitvectors of length
//!   `#ic(P ∪ N)`, padded to a power of two (the paper's second space-time
//!   trade-off), with the semiring operations of infix power series
//!   (union, concatenation, Kleene star, question mark).
//! * [`GuideTable`] — the staged pre-computation of all splits of every
//!   word in the infix closure, which turns concatenation into a gather
//!   over bit positions (the paper's *guide table*).
//! * [`GuideMasks`] — the transposed, block-mask form of the guide table:
//!   one row of `(right-mask, target-mask)` entries per *left* index,
//!   which turns concatenation into whole-`u64` mask-shift-or operations
//!   over only the set bits of the left operand (see [`csops::concat_into`]).
//! * [`SatisfyMasks`] — the pair of bit masks used to check `L ⊨ (P, N)`
//!   with two bitwise operations.
//! * [`simd`] — the runtime-probed SIMD kernel tier behind the block
//!   kernels: AVX2 (and a NEON fold path) widenings of concatenation,
//!   star and the satisfaction folds, with the scalar kernels kept as
//!   the always-correct fallback and reference semantics.
//!
//! # Example
//!
//! ```
//! use rei_lang::{InfixClosure, Spec};
//!
//! let spec = Spec::from_strs(["1", "011", "1011", "11011"], ["", "10", "101", "0011"]).unwrap();
//! let ic = InfixClosure::of_spec(&spec);
//! // Example 3.6 of the paper: the infix closure has 15 elements.
//! assert_eq!(ic.len(), 15);
//! ```

// `deny` rather than `forbid`: the `simd` module (and only it) opts back
// in for `std::arch` intrinsics behind the runtime feature probe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod alphabet;
mod cs;
pub mod csops;
mod error;
mod guide;
mod infix;
mod satisfy;
pub mod simd;
mod spec;
mod word;

pub use alphabet::Alphabet;
pub use cs::{Cs, CsWidth};
pub use error::SpecError;
pub use guide::{GuideMasks, GuideTable, MaskEntry};
pub use infix::InfixClosure;
pub use satisfy::{AdmissionPrefilter, SatisfyMasks};
pub use simd::KernelTier;
pub use spec::{fnv1a, Spec};
pub use word::Word;
