//! Finite, ordered alphabets.

use std::fmt;

use crate::{Spec, Word};

/// A finite alphabet: an ordered set of characters.
///
/// Paresy works over arbitrary alphabets; the alphabet determines which
/// literal characteristic sequences seed the language cache.
///
/// # Example
///
/// ```
/// use rei_lang::Alphabet;
///
/// let sigma = Alphabet::new("abca".chars());
/// assert_eq!(sigma.len(), 3);
/// assert_eq!(sigma.index_of('b'), Some(1));
/// assert!(sigma.contains('c'));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Alphabet {
    symbols: Vec<char>,
}

impl Alphabet {
    /// The binary alphabet `{0, 1}` used by most of the paper's benchmarks.
    pub fn binary() -> Self {
        Alphabet::new(['0', '1'])
    }

    /// Creates an alphabet from an iterator of characters. Duplicates are
    /// removed and the symbols are stored in ascending order.
    pub fn new<I: IntoIterator<Item = char>>(symbols: I) -> Self {
        let mut symbols: Vec<char> = symbols.into_iter().collect();
        symbols.sort_unstable();
        symbols.dedup();
        Alphabet { symbols }
    }

    /// The alphabet of all characters occurring in the examples of `spec`.
    ///
    /// This is the default alphabet the synthesiser uses when none is given
    /// explicitly.
    pub fn of_spec(spec: &Spec) -> Self {
        Alphabet::new(
            spec.positive()
                .iter()
                .chain(spec.negative())
                .flat_map(|w| w.chars().iter().copied()),
        )
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Returns `true` if the alphabet has no symbols.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The symbols in ascending order.
    pub fn symbols(&self) -> &[char] {
        &self.symbols
    }

    /// Returns `true` if `c` belongs to the alphabet.
    pub fn contains(&self, c: char) -> bool {
        self.symbols.binary_search(&c).is_ok()
    }

    /// Index of `c` in the ascending order of the alphabet.
    pub fn index_of(&self, c: char) -> Option<usize> {
        self.symbols.binary_search(&c).ok()
    }

    /// Iterates over all words of exactly length `len`, in lexicographic
    /// order. Used by the Type 1 / Type 2 benchmark generators.
    pub fn words_of_length(&self, len: usize) -> Vec<Word> {
        let mut out = vec![Word::epsilon()];
        for _ in 0..len {
            let mut next = Vec::with_capacity(out.len() * self.symbols.len());
            for w in &out {
                for &c in &self.symbols {
                    next.push(w.concat(&Word::new([c])));
                }
            }
            out = next;
        }
        out
    }

    /// Total number of words of length at most `len` (`|Σ^{≤len}|`).
    pub fn count_words_up_to(&self, len: usize) -> u128 {
        let k = self.symbols.len() as u128;
        if k == 0 {
            return 1;
        }
        if k == 1 {
            return len as u128 + 1;
        }
        (k.pow(len as u32 + 1) - 1) / (k - 1)
    }
}

impl fmt::Display for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.symbols.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<char> for Alphabet {
    fn from_iter<I: IntoIterator<Item = char>>(iter: I) -> Self {
        Alphabet::new(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deduplicates_and_sorts() {
        let sigma = Alphabet::new("cbaab".chars());
        assert_eq!(sigma.symbols(), &['a', 'b', 'c']);
    }

    #[test]
    fn binary_alphabet() {
        let sigma = Alphabet::binary();
        assert_eq!(sigma.len(), 2);
        assert!(sigma.contains('0'));
        assert!(!sigma.contains('2'));
        assert_eq!(sigma.to_string(), "{0, 1}");
    }

    #[test]
    fn alphabet_of_spec() {
        let spec = Spec::from_strs(["ab", "ba"], ["c"]).unwrap();
        let sigma = Alphabet::of_spec(&spec);
        assert_eq!(sigma.symbols(), &['a', 'b', 'c']);
    }

    #[test]
    fn words_of_length_enumerates_all() {
        let sigma = Alphabet::binary();
        let words = sigma.words_of_length(2);
        let rendered: Vec<String> = words.iter().map(|w| w.to_string()).collect();
        assert_eq!(rendered, vec!["00", "01", "10", "11"]);
    }

    #[test]
    fn count_words_up_to_matches_enumeration() {
        let sigma = Alphabet::binary();
        let total: usize = (0..=3).map(|l| sigma.words_of_length(l).len()).sum();
        assert_eq!(sigma.count_words_up_to(3), total as u128);
        let unary = Alphabet::new(['a']);
        assert_eq!(unary.count_words_up_to(5), 6);
    }

    #[test]
    fn empty_alphabet() {
        let sigma = Alphabet::new([]);
        assert!(sigma.is_empty());
        assert_eq!(sigma.count_words_up_to(4), 1);
    }
}
