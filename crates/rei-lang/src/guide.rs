//! Staged pre-computation of every split of every word: the pair-based
//! [`GuideTable`] and its transposed, bit-parallel companion
//! [`GuideMasks`].
//!
//! The [`GuideTable`] is the paper's staging structure: for each word `w`
//! of the infix closure, the list of index pairs `(l, r)` with
//! `word(l) · word(r) = w`. A concatenation kernel driven by it performs
//! one gather (two bit tests) per split per target word.
//!
//! The [`GuideMasks`] structure stores the *same* relation transposed and
//! compressed into block masks: for each **left** index `l`, a row of
//! entries, each covering every split `(l, r) → w` whose `r` bits live in
//! one 64-bit block of the operand, whose `w` bits live in one block of
//! the result, and whose bit offset `w − r` is constant. Because the
//! shortlex order makes the map `r ↦ w` (for fixed `l`) strictly
//! monotone, long runs of consecutive splits collapse into a single entry,
//! and a concatenation becomes: for every set bit `l` of the left operand,
//! a handful of *whole-block* mask-shift-or operations on the right
//! operand — no per-split bit tests at all. See
//! [`crate::csops::concat_into`].
//!
//! # Memory trade-off
//!
//! The pair table costs 8 bytes per split, always. A mask entry costs 32
//! bytes but covers between 1 and 64 splits: on dense closures (all words
//! of a short alphabet up to some length — the common shape of example
//! sets) entire length classes collapse into one entry and the mask table
//! is *smaller* than the pair table; on adversarially sparse closures
//! every entry covers a single split and the mask table costs up to 4× the
//! pair table. Both structures are staged once per synthesis run, and
//! [`GuideMasks::memory_bytes`] / [`GuideTable::memory_bytes`] expose the
//! actual footprint for memory accounting.

use crate::InfixClosure;

/// For each word `w` of the infix closure, the guide table stores every way
/// of writing `w = σ1 · σ2` with both `σ1` and `σ2` in the closure, as a
/// pair of bit positions `(index(σ1), index(σ2))`.
///
/// Because the closure is infix-closed, every prefix and suffix of `w` is a
/// member, so a word of length `ℓ` has exactly `ℓ + 1` splits. The table is
/// computed once per synthesis run (the paper's *staging*), after which the
/// convolution at the heart of concatenation and Kleene star becomes a pure
/// gather over bit positions with no string comparisons.
///
/// # Example
///
/// ```
/// use rei_lang::{GuideTable, InfixClosure, Word};
///
/// let ic = InfixClosure::of_words([Word::from("110")]);
/// let gt = GuideTable::build(&ic);
/// let w = ic.index_of(&Word::from("110")).unwrap();
/// // "110" splits as ε·110, 1·10, 11·0, 110·ε.
/// assert_eq!(gt.splits(w).len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuideTable {
    /// `offsets[w]..offsets[w + 1]` indexes the splits of word `w` in
    /// `pairs`.
    offsets: Vec<u32>,
    /// Flattened `(left, right)` index pairs.
    pairs: Vec<(u32, u32)>,
}

impl GuideTable {
    /// Builds the guide table for an infix closure.
    ///
    /// # Panics
    ///
    /// Panics if the closure has more than `u32::MAX` members (far beyond
    /// any feasible memory budget).
    pub fn build(ic: &InfixClosure) -> Self {
        assert!(ic.len() <= u32::MAX as usize, "infix closure too large");
        let mut offsets = Vec::with_capacity(ic.len() + 1);
        let mut pairs = Vec::new();
        offsets.push(0u32);
        for (_, word) in ic.iter() {
            let n = word.len();
            for cut in 0..=n {
                let left = word.infix(0, cut);
                let right = word.infix(cut, n);
                let li = ic
                    .index_of(&left)
                    .expect("prefix of a closure word must be in the closure");
                let ri = ic
                    .index_of(&right)
                    .expect("suffix of a closure word must be in the closure");
                pairs.push((li as u32, ri as u32));
            }
            offsets.push(pairs.len() as u32);
        }
        GuideTable { offsets, pairs }
    }

    /// Number of words covered by the table.
    pub fn num_words(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Returns `true` if the table covers no words.
    pub fn is_empty(&self) -> bool {
        self.num_words() == 0
    }

    /// The splits of the `w`-th word, as pairs of closure indices.
    ///
    /// # Panics
    ///
    /// Panics if `w >= self.num_words()`.
    pub fn splits(&self, w: usize) -> &[(u32, u32)] {
        let start = self.offsets[w] as usize;
        let end = self.offsets[w + 1] as usize;
        &self.pairs[start..end]
    }

    /// Total number of `(σ1, σ2)` pairs across all words; proportional to
    /// the memory the staged table occupies.
    pub fn total_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Approximate memory footprint of the table in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u32>()
            + self.pairs.len() * std::mem::size_of::<(u32, u32)>()
    }
}

/// One bit-parallel unit of work of a mask-based concatenation: a group of
/// splits `(l, r) → w` (for one fixed left index `l`) whose right indices
/// share a 64-bit block, whose target indices share a block, and whose
/// offset `w − r` is constant.
///
/// Applying an entry to a right operand `b` is three instructions:
/// `dst[target_block] |= (b[right_block] & right_mask) << shift` (a right
/// shift when `shift` is negative). Every bit of `right_mask` lands on the
/// corresponding bit of `target_mask` by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskEntry {
    /// Block index into the right operand.
    pub right_block: u32,
    /// Block index into the result row.
    pub target_block: u32,
    /// Bit distance `(w % 64) − (r % 64)`, in `-63..=63`.
    pub shift: i8,
    /// The right-operand bits `r` covered by this entry.
    pub right_mask: u64,
    /// The result bits `w` covered by this entry (`right_mask` shifted by
    /// `shift`).
    pub target_mask: u64,
}

impl MaskEntry {
    /// ORs into `dst` the target bits whose right operand bit is set in
    /// `b`.
    #[inline]
    pub fn apply(&self, b: &[u64], dst: &mut [u64]) {
        let picked = b[self.right_block as usize] & self.right_mask;
        if picked == 0 {
            return;
        }
        let moved = if self.shift >= 0 {
            picked << self.shift
        } else {
            picked >> -(self.shift as i32)
        };
        debug_assert_eq!(moved & !self.target_mask, 0, "stray bits after shift");
        dst[self.target_block as usize] |= moved;
    }
}

/// The transposed, mask-compressed form of the [`GuideTable`]: for each
/// left index `l`, the block-level [`MaskEntry`] row covering every split
/// `word(l) · word(r) = w` of the closure.
///
/// This is the structure behind the bit-parallel concatenation kernel
/// [`crate::csops::concat_into`], which walks only the set bits of its
/// left operand and applies each entry as a whole-block mask-shift-or.
/// See the `guide` module documentation (in the source) for the layout
/// and its memory trade-off against the pair table.
///
/// # Example
///
/// ```
/// use rei_lang::{GuideMasks, InfixClosure, Word};
///
/// let ic = InfixClosure::of_words([Word::from("110")]);
/// let gm = GuideMasks::build(&ic);
/// // Every split of every closure word is covered by some entry.
/// assert_eq!(gm.num_left(), ic.len());
/// assert!(gm.total_entries() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuideMasks {
    /// `offsets[l]..offsets[l + 1]` indexes the entries of left index `l`.
    offsets: Vec<u32>,
    /// Flattened mask entries, grouped by left index.
    entries: Vec<MaskEntry>,
    /// The same entries re-staged as funnel segments plus scalar
    /// leftovers (see [`FunnelSeg`]), built once so the SIMD
    /// concatenation kernel runs on contiguous loads and stores instead
    /// of gathering per entry.
    simd: SimdEntries,
}

/// Segments shorter than this stay on the scalar entry path: the kernel
/// steps four target blocks per AVX2 iteration, so anything narrower
/// cannot fill one vector step, and measurement shows the SSE pair step
/// plus scalar tail never beats the entry kernel's load-test early-out
/// on runs that short.
pub(crate) const MIN_SEG_TARGETS: usize = 4;

/// One vectorizable *funnel segment* of a mask row: `len` consecutive
/// target blocks whose source bits sit at one constant bit distance
/// `d = 64·q + s` in the right operand, so each target block is
///
/// ```text
/// dst[t] |= ((b[t − q] & low_mask[t]) << s)
///         | ((b[t − q − 1] & high_mask[t]) >> (64 − s))
/// ```
///
/// — the classic funnel shift over a contiguous block range. Shortlex
/// closure order makes `r → l·r` order-preserving within a length group,
/// so the [`MaskEntry`] rows of wide closures decompose almost entirely
/// into such segments; staging finds them by grouping entries on `d` and
/// scanning for target-block runs. Consecutive targets read consecutive
/// right blocks, so the SIMD kernel processes four targets per step with
/// two unaligned loads, one broadcast shift pair, and no gather or
/// scatter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FunnelSeg {
    /// First target block of the segment.
    pub(crate) t0: u32,
    /// Right block feeding the low lane of `t0` (`t0 − q`). At `s > 0`
    /// the high lane of `t0` reads block `rb0 − 1`, and staging trims the
    /// segment's front so that is never negative; at `s = 0` every high
    /// mask is zero, the kernel takes an aligned copy loop that never
    /// touches the high lane, and no front trim is needed.
    pub(crate) rb0: u32,
    /// Funnel bit shift `s`, in `0..64`. A group lands on `s = 0` exactly
    /// when its entries are block-aligned copies (`shift == 0`).
    pub(crate) s: u32,
    /// Number of consecutive target blocks covered.
    pub(crate) len: u32,
    /// Start of this segment's masks in the low/high mask arrays.
    pub(crate) at: u32,
}

/// The funnel-segment staging of the [`MaskEntry`] rows, consumed by the
/// SIMD tier ([`crate::simd`]): per left index a list of [`FunnelSeg`]s
/// covering the entries that fall into target runs of at least
/// [`MIN_SEG_TARGETS`] blocks, plus the *leftover* entries (short runs,
/// trimmed edges, irregular offsets) which the kernel applies scalar.
/// Together the segments and leftovers cover each row's entries exactly
/// once, so applying both is bit-for-bit the scalar row application.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct SimdEntries {
    /// One bit per left index: set when the row has at least one
    /// segment. Rows without segments are served straight from the
    /// original entry table — same arrays, same access pattern as the
    /// scalar kernel — so the staging stores nothing for them and this
    /// bitmap is the only per-row cost the kernel pays.
    seg_rows: Vec<u64>,
    /// `seg_offsets[l]..seg_offsets[l + 1]` indexes `segs`.
    seg_offsets: Vec<u32>,
    segs: Vec<FunnelSeg>,
    /// Per-target-block funnel masks, indexed by [`FunnelSeg::at`]. A
    /// zero mask means the target has no source bits on that lane.
    low_masks: Vec<u64>,
    high_masks: Vec<u64>,
    /// `leftover_offsets[l]..leftover_offsets[l + 1]` indexes
    /// `leftovers`: the entries of *segment rows* not absorbed into any
    /// segment. Empty ranges for rows without segments (their entries
    /// stay in the main table only).
    leftover_offsets: Vec<u32>,
    leftovers: Vec<MaskEntry>,
    /// Exclusive upper bounds over every block index the kernel can read
    /// (right operand) or write (result), for one up-front bounds check
    /// before the unchecked vector loads.
    right_blocks_end: usize,
    target_blocks_end: usize,
}

impl SimdEntries {
    fn build(offsets: &[u32], entries: &[MaskEntry]) -> Self {
        let mut simd = SimdEntries {
            seg_offsets: vec![0],
            leftover_offsets: vec![0],
            ..SimdEntries::default()
        };
        // (bit distance d, target block, index into the row) per entry;
        // sorting groups equal distances and orders targets within one.
        let mut keyed: Vec<(i64, u32, u32)> = Vec::new();
        let mut absorbed: Vec<bool> = Vec::new();
        simd.seg_rows = vec![0; offsets.len().saturating_sub(1).div_ceil(64)];
        for (l, window) in offsets.windows(2).enumerate() {
            let row = &entries[window[0] as usize..window[1] as usize];
            keyed.clear();
            for (i, e) in row.iter().enumerate() {
                simd.right_blocks_end = simd.right_blocks_end.max(e.right_block as usize + 1);
                simd.target_blocks_end = simd.target_blocks_end.max(e.target_block as usize + 1);
                let d = 64 * (e.target_block as i64 - e.right_block as i64) + e.shift as i64;
                keyed.push((d, e.target_block, i as u32));
            }
            keyed.sort_unstable();
            absorbed.clear();
            absorbed.resize(row.len(), false);
            let seg_start = simd.segs.len();
            let mut gi = 0;
            while gi < keyed.len() {
                let d = keyed[gi].0;
                let mut ge = gi;
                while ge < keyed.len() && keyed[ge].0 == d {
                    ge += 1;
                }
                let s = d.rem_euclid(64);
                let q = (d - s) / 64;
                simd.stage_group(row, &keyed[gi..ge], q, s as u32, &mut absorbed);
                gi = ge;
            }
            if simd.row_profitable(seg_start, &absorbed) {
                simd.seg_rows[l / 64] |= 1 << (l % 64);
                for (i, e) in row.iter().enumerate() {
                    if !absorbed[i] {
                        simd.leftovers.push(*e);
                    }
                }
            } else {
                // Roll the row's segments back; the kernel serves it
                // from the main entry table like the scalar kernel.
                let mask_start = simd.segs[seg_start..]
                    .first()
                    .map_or(simd.low_masks.len(), |seg| seg.at as usize);
                simd.segs.truncate(seg_start);
                simd.low_masks.truncate(mask_start);
                simd.high_masks.truncate(mask_start);
            }
            simd.seg_offsets.push(simd.segs.len() as u32);
            simd.leftover_offsets.push(simd.leftovers.len() as u32);
        }
        simd
    }

    /// Decides whether the segments staged for the current row (from
    /// `seg_start` on) beat running the whole row scalar, on a small
    /// per-op cost model: a scalar entry costs ~3 ops thanks to its
    /// load-test early-out (sparse right operands skip most entries
    /// after one test), a vector step covers four blocks for ~1.5 ops
    /// each aligned / ~2.5 funneled, each segment carries its occupancy
    /// range test, and the staged row pays the `target_feature` call
    /// boundary. The setup constants are deliberately pessimistic —
    /// measured against operands the staging cannot see — so only rows
    /// whose segments clearly dominate leave the scalar path. Rows with
    /// short, sparse segments — common on narrow closures — lose to
    /// setup and stay scalar.
    fn row_profitable(&self, seg_start: usize, absorbed: &[bool]) -> bool {
        const ENTRY_COST: usize = 6; // scalar ops per absorbed entry, ×2
        const ROW_SETUP: usize = 40;
        const SEG_SETUP: usize = 16;
        const BLOCK_ALIGNED: usize = 3;
        const BLOCK_FUNNEL: usize = 5;
        if self.segs.len() == seg_start {
            return false;
        }
        let scalar_cost = absorbed.iter().filter(|&&a| a).count() * ENTRY_COST;
        let mut vector_cost = ROW_SETUP;
        for seg in &self.segs[seg_start..] {
            let per_block = if seg.s == 0 {
                BLOCK_ALIGNED
            } else {
                BLOCK_FUNNEL
            };
            vector_cost += SEG_SETUP + seg.len as usize * per_block;
        }
        vector_cost < scalar_cost
    }

    /// Scans one equal-distance group (sorted by target block) for runs
    /// of consecutive targets and stages every run of at least
    /// [`MIN_SEG_TARGETS`] blocks as a [`FunnelSeg`], marking its entries
    /// absorbed. `group` elements are `(d, target_block, row index)`.
    fn stage_group(
        &mut self,
        row: &[MaskEntry],
        group: &[(i64, u32, u32)],
        q: i64,
        s: u32,
        absorbed: &mut [bool],
    ) {
        let mut si = 0;
        while si < group.len() {
            let mut se = si + 1;
            let mut last_t = group[si].1;
            while se < group.len() && group[se].1 <= last_t + 1 {
                last_t = group[se].1;
                se += 1;
            }
            let stretch = &group[si..se];
            si = se;

            let mut t_first = stretch[0].1 as i64;
            let mut t_last = last_t as i64;
            // At `s > 0` the first target's high lane reads block
            // `t_first − q − 1`; trim the front so the kernel never
            // loads below block 0. Aligned segments (`s = 0`, every
            // entry `shift == 0`) never touch the high lane, and their
            // low reads start at a real entry's block, so they need no
            // trim.
            if s > 0 && t_first - q - 1 < 0 {
                t_first += 1;
            }
            // The kernel's low lane reads up to block `t_last − q`
            // whether or not that target has low-lane bits; trim the
            // back until it does, so the loads stay within the blocks
            // real entries reference (and hence within the pre-checked
            // bounds). A no-op at `s = 0`, where every entry is low.
            while t_last >= t_first
                && !stretch
                    .iter()
                    .any(|&(_, t, i)| t as i64 == t_last && row[i as usize].shift >= 0)
            {
                t_last -= 1;
            }
            let len = t_last - t_first + 1;
            if len < MIN_SEG_TARGETS as i64 {
                continue;
            }

            let at = self.low_masks.len();
            self.low_masks.resize(at + len as usize, 0);
            self.high_masks.resize(at + len as usize, 0);
            for &(_, t, i) in stretch {
                let t = t as i64;
                if t < t_first || t > t_last {
                    continue;
                }
                let entry = &row[i as usize];
                let slot = at + (t - t_first) as usize;
                if entry.shift >= 0 {
                    self.low_masks[slot] |= entry.right_mask;
                } else {
                    self.high_masks[slot] |= entry.right_mask;
                }
                absorbed[i as usize] = true;
            }
            self.segs.push(FunnelSeg {
                t0: t_first as u32,
                rb0: (t_first - q) as u32,
                s,
                len: len as u32,
                at: at as u32,
            });
        }
    }

    fn memory_bytes(&self) -> usize {
        (self.seg_offsets.len() + self.leftover_offsets.len()) * std::mem::size_of::<u32>()
            + self.segs.len() * std::mem::size_of::<FunnelSeg>()
            + (self.seg_rows.len() + self.low_masks.len() + self.high_masks.len())
                * std::mem::size_of::<u64>()
            + self.leftovers.len() * std::mem::size_of::<MaskEntry>()
    }
}

/// Borrowed funnel-staged view of one left index's mask entries,
/// consumed by the SIMD concatenation kernel: the row's segments (whose
/// `at` fields index the table-wide mask arrays) and its scalar
/// leftovers.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SimdRow<'a> {
    pub(crate) segs: &'a [FunnelSeg],
    pub(crate) low_masks: &'a [u64],
    pub(crate) high_masks: &'a [u64],
    pub(crate) leftovers: &'a [MaskEntry],
}

impl GuideMasks {
    /// Builds the mask table for an infix closure.
    ///
    /// # Panics
    ///
    /// Panics if the closure has more than `u32::MAX` members.
    pub fn build(ic: &InfixClosure) -> Self {
        assert!(ic.len() <= u32::MAX as usize, "infix closure too large");
        // Bucket every split (l, r) → w of the closure by its left index.
        // Shortlex order makes r (and therefore w) ascending within each
        // bucket, so same-key splits are usually adjacent and the reverse
        // key scan below matches the row's newest entry first.
        let mut pairs_by_left: Vec<Vec<(u32, u32)>> = vec![Vec::new(); ic.len()];
        for (w, word) in ic.iter() {
            let n = word.len();
            for cut in 0..=n {
                let li = ic
                    .index_of(&word.infix(0, cut))
                    .expect("prefix of a closure word must be in the closure");
                let ri = ic
                    .index_of(&word.infix(cut, n))
                    .expect("suffix of a closure word must be in the closure");
                pairs_by_left[li].push((ri as u32, w as u32));
            }
        }

        let mut offsets = Vec::with_capacity(ic.len() + 1);
        let mut entries: Vec<MaskEntry> = Vec::new();
        offsets.push(0u32);
        for pairs in &mut pairs_by_left {
            pairs.sort_unstable();
            let row_start = entries.len();
            for &(r, w) in pairs.iter() {
                let right_block = r / 64;
                let target_block = w / 64;
                let shift = (w % 64) as i8 - (r % 64) as i8;
                let slot = entries[row_start..].iter_mut().rev().find(|e| {
                    e.right_block == right_block
                        && e.target_block == target_block
                        && e.shift == shift
                });
                match slot {
                    Some(entry) => {
                        entry.right_mask |= 1u64 << (r % 64);
                        entry.target_mask |= 1u64 << (w % 64);
                    }
                    None => entries.push(MaskEntry {
                        right_block,
                        target_block,
                        shift,
                        right_mask: 1u64 << (r % 64),
                        target_mask: 1u64 << (w % 64),
                    }),
                }
            }
            offsets.push(entries.len() as u32);
        }
        let simd = SimdEntries::build(&offsets, &entries);
        GuideMasks {
            offsets,
            entries,
            simd,
        }
    }

    /// The funnel-staged view of left index `l`'s entries.
    ///
    /// # Panics
    ///
    /// Panics if `l >= self.num_left()`.
    pub(crate) fn simd_row(&self, l: usize) -> SimdRow<'_> {
        SimdRow {
            segs: &self.simd.segs
                [self.simd.seg_offsets[l] as usize..self.simd.seg_offsets[l + 1] as usize],
            low_masks: &self.simd.low_masks,
            high_masks: &self.simd.high_masks,
            leftovers: &self.simd.leftovers[self.simd.leftover_offsets[l] as usize
                ..self.simd.leftover_offsets[l + 1] as usize],
        }
    }

    /// `true` when funnel staging found at least one profitable segment,
    /// i.e. the lane concatenation kernel actually engages on this
    /// closure (given an accelerated tier). When `false` the dispatched
    /// kernel falls straight back to the scalar walk — narrow closures
    /// whose longest runs lose to segment setup stage nothing, by
    /// design. Benchmarks use this to pin the speedup of a disengaged
    /// closure to exactly 1.0 instead of recording measurement noise.
    pub fn simd_has_segments(&self) -> bool {
        !self.simd.segs.is_empty()
    }

    /// `true` when left index `l`'s row has funnel segments. The kernel
    /// reads whole bitmap words via [`Self::simd_seg_rows_word`]; this
    /// per-row view exists for the staging invariant checks.
    #[cfg(test)]
    pub(crate) fn simd_row_has_segments(&self, l: usize) -> bool {
        self.simd.seg_rows[l / 64] & (1 << (l % 64)) != 0
    }

    /// One word of the segment-row bitmap, aligned with block `block` of
    /// a left-operand row (bit `l % 64` of word `l / 64` marks left
    /// index `l`): the kernel partitions each operand word into
    /// scalar-path and segment-path rows with two ANDs instead of a
    /// per-row test. Zero beyond the bitmap (padding rows are scalar).
    #[inline]
    pub(crate) fn simd_seg_rows_word(&self, block: usize) -> u64 {
        self.simd.seg_rows.get(block).copied().unwrap_or(0)
    }

    /// `true` when every block index the SIMD kernel can touch — the
    /// funnel loads from the right operand (bounded by the rightmost
    /// low-lane entry block, which segment staging guarantees) and the
    /// stores into the result — is in bounds for the given slice lengths.
    /// The one up-front check that lets the kernel run unchecked vector
    /// loads.
    pub(crate) fn simd_bounds_ok(&self, dst_len: usize, b_len: usize) -> bool {
        self.simd.right_blocks_end <= b_len && self.simd.target_blocks_end <= dst_len
    }

    /// Number of left indices covered (the size of the closure).
    pub fn num_left(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Returns `true` if the table covers no words.
    pub fn is_empty(&self) -> bool {
        self.num_left() == 0
    }

    /// The mask entries of left index `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l >= self.num_left()`.
    pub fn row(&self, l: usize) -> &[MaskEntry] {
        let start = self.offsets[l] as usize;
        let end = self.offsets[l + 1] as usize;
        &self.entries[start..end]
    }

    /// Total number of mask entries across all left indices.
    pub fn total_entries(&self) -> usize {
        self.entries.len()
    }

    /// Total number of splits covered (equals
    /// [`GuideTable::total_pairs`] on the same closure).
    pub fn total_splits(&self) -> usize {
        self.entries
            .iter()
            .map(|e| e.right_mask.count_ones() as usize)
            .sum()
    }

    /// Approximate memory footprint of the table in bytes, including the
    /// staged SoA mirror consumed by the SIMD tier.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u32>()
            + self.entries.len() * std::mem::size_of::<MaskEntry>()
            + self.simd.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Spec, Word};
    use proptest::prelude::*;

    #[test]
    fn splits_count_is_length_plus_one() {
        let spec =
            Spec::from_strs(["1", "011", "1011", "11011"], ["", "10", "101", "0011"]).unwrap();
        let ic = InfixClosure::of_spec(&spec);
        let gt = GuideTable::build(&ic);
        assert_eq!(gt.num_words(), ic.len());
        for (i, word) in ic.iter() {
            assert_eq!(gt.splits(i).len(), word.len() + 1, "word {word}");
        }
    }

    #[test]
    fn splits_reconstruct_the_word() {
        let ic = InfixClosure::of_words([Word::from("11011")]);
        let gt = GuideTable::build(&ic);
        for (i, word) in ic.iter() {
            for &(l, r) in gt.splits(i) {
                let rebuilt = ic.word(l as usize).concat(ic.word(r as usize));
                assert_eq!(&rebuilt, word);
            }
        }
    }

    #[test]
    fn paper_guide_table_example() {
        // Section 3 of the paper: the guide-table row for "110" contains a
        // split into "11" and "0".
        let spec =
            Spec::from_strs(["1", "011", "1011", "11011"], ["", "10", "101", "0011"]).unwrap();
        let ic = InfixClosure::of_spec(&spec);
        let gt = GuideTable::build(&ic);
        let w = ic.index_of(&Word::from("110")).unwrap();
        let eleven = ic.index_of(&Word::from("11")).unwrap() as u32;
        let zero = ic.index_of(&Word::from("0")).unwrap() as u32;
        assert!(gt.splits(w).contains(&(eleven, zero)));
    }

    #[test]
    fn empty_closure() {
        let ic = InfixClosure::of_words(Vec::new());
        let gt = GuideTable::build(&ic);
        assert!(gt.is_empty());
        assert_eq!(gt.total_pairs(), 0);
    }

    #[test]
    fn memory_accounting_is_positive() {
        let ic = InfixClosure::of_words([Word::from("0101")]);
        let gt = GuideTable::build(&ic);
        assert!(gt.memory_bytes() > 0);
        assert_eq!(
            gt.total_pairs(),
            ic.iter().map(|(_, w)| w.len() + 1).sum::<usize>()
        );
    }

    /// Expands a mask table back into the set of `(l, r, w)` splits it
    /// encodes.
    fn expand_masks(gm: &GuideMasks) -> Vec<(u32, u32, u32)> {
        let mut splits = Vec::new();
        for l in 0..gm.num_left() {
            for entry in gm.row(l) {
                let mut bits = entry.right_mask;
                while bits != 0 {
                    let bit = bits.trailing_zeros() as i32;
                    bits &= bits - 1;
                    let r = entry.right_block * 64 + bit as u32;
                    let w = entry.target_block * 64 + (bit + entry.shift as i32) as u32;
                    assert_ne!(entry.target_mask & (1u64 << (bit + entry.shift as i32)), 0);
                    splits.push((l as u32, r, w));
                }
            }
        }
        splits.sort_unstable();
        splits
    }

    /// Expands the pair table into the same `(l, r, w)` representation.
    fn expand_table(gt: &GuideTable) -> Vec<(u32, u32, u32)> {
        let mut splits = Vec::new();
        for w in 0..gt.num_words() {
            for &(l, r) in gt.splits(w) {
                splits.push((l, r, w as u32));
            }
        }
        splits.sort_unstable();
        splits
    }

    #[test]
    fn masks_encode_exactly_the_table_splits() {
        let spec =
            Spec::from_strs(["1", "011", "1011", "11011"], ["", "10", "101", "0011"]).unwrap();
        let ic = InfixClosure::of_spec(&spec);
        let gt = GuideTable::build(&ic);
        let gm = GuideMasks::build(&ic);
        assert_eq!(gm.num_left(), ic.len());
        assert_eq!(gm.total_splits(), gt.total_pairs());
        assert_eq!(expand_masks(&gm), expand_table(&gt));
    }

    #[test]
    fn masks_compress_dense_closures() {
        // All binary words up to length 5: length classes collapse into
        // few block entries, so the mask table has far fewer entries than
        // the table has pairs.
        let words: Vec<Word> = (0..32u32)
            .map(|bits| Word::new((0..5).map(|i| if bits >> i & 1 == 1 { '1' } else { '0' })))
            .collect();
        let ic = InfixClosure::of_words(words);
        let gt = GuideTable::build(&ic);
        let gm = GuideMasks::build(&ic);
        assert_eq!(gm.total_splits(), gt.total_pairs());
        // Whole length classes collapse into single entries (one per
        // (left word, suffix length) here), so the mask table needs
        // well under half as many entries as the table has pairs.
        assert!(
            gm.total_entries() * 2 < gt.total_pairs(),
            "entries {} vs pairs {}",
            gm.total_entries(),
            gt.total_pairs()
        );
    }

    #[test]
    fn empty_closure_masks() {
        let gm = GuideMasks::build(&InfixClosure::of_words(Vec::new()));
        assert!(gm.is_empty());
        assert_eq!(gm.total_entries(), 0);
        assert!(!gm.simd_has_segments());
        // One sentinel offset for the entry table, two for the funnel
        // staging (segments and leftovers).
        assert_eq!(gm.memory_bytes(), 3 * std::mem::size_of::<u32>());
    }

    /// Expands the funnel staging (segments plus leftovers) back into the
    /// `(l, r, w)` split set it encodes.
    fn expand_simd(gm: &GuideMasks) -> Vec<(u32, u32, u32)> {
        let mut splits = Vec::new();
        for l in 0..gm.num_left() {
            let simd = gm.simd_row(l);
            assert_eq!(gm.simd_row_has_segments(l), !simd.segs.is_empty());
            if simd.segs.is_empty() {
                assert!(
                    simd.leftovers.is_empty(),
                    "segment-free rows store no leftovers"
                );
            }
            for seg in simd.segs {
                assert!(seg.len as usize >= MIN_SEG_TARGETS, "segment too short");
                assert!(seg.s < 64);
                assert!(seg.s == 0 || seg.rb0 > 0, "unaligned front must be trimmed");
                // w − r for every split of this segment.
                let d = 64 * (seg.t0 as i64 - seg.rb0 as i64) + seg.s as i64;
                for i in 0..seg.len {
                    let at = (seg.at + i) as usize;
                    let low = simd.low_masks[at];
                    let high = simd.high_masks[at];
                    assert!(seg.s > 0 || high == 0, "aligned segments are low-only");
                    if i + 1 == seg.len {
                        assert_ne!(low, 0, "last target must read a real low block");
                    }
                    for (mask, rb) in [
                        (low, (seg.rb0 + i) as i64),
                        (high, (seg.rb0 + i) as i64 - 1),
                    ] {
                        let mut bits = mask;
                        while bits != 0 {
                            let r = rb * 64 + bits.trailing_zeros() as i64;
                            bits &= bits - 1;
                            splits.push((l as u32, r as u32, (r + d) as u32));
                        }
                    }
                }
            }
            // Segment rows keep their unabsorbed entries in the leftover
            // table; segment-free rows are served from the main table.
            let scalar_entries = if simd.segs.is_empty() {
                gm.row(l)
            } else {
                simd.leftovers
            };
            for entry in scalar_entries {
                let mut bits = entry.right_mask;
                while bits != 0 {
                    let bit = bits.trailing_zeros() as i32;
                    bits &= bits - 1;
                    let r = entry.right_block * 64 + bit as u32;
                    let w = entry.target_block * 64 + (bit + entry.shift as i32) as u32;
                    splits.push((l as u32, r, w));
                }
            }
        }
        splits.sort_unstable();
        splits
    }

    #[test]
    fn funnel_staging_covers_exactly_the_entry_splits() {
        let spec =
            Spec::from_strs(["1", "011", "1011", "11011"], ["", "10", "101", "0011"]).unwrap();
        let ic = InfixClosure::of_spec(&spec);
        let gm = GuideMasks::build(&ic);
        let blocks = ic.width().blocks();
        assert!(gm.simd_bounds_ok(blocks, blocks));
        assert!(!gm.simd_bounds_ok(0, blocks), "entries reference block 0");
        assert_eq!(expand_simd(&gm), expand_masks(&gm));
    }

    #[test]
    fn wide_closures_stage_long_funnel_segments() {
        // All binary words up to length 10: rows span 32 blocks and the
        // shortlex order makes `r → l·r` contiguous per length group, so
        // the splits of block-spanning length groups land in
        // vectorizable segments. The profitability gate keeps only rows
        // whose segments clearly beat the scalar entry walk — a handful
        // of short-left rows with long runs; everything else stays
        // scalar by design. Narrower closures (≤ 8 blocks) stage nothing
        // at all: their longest runs lose to segment setup.
        let wide = |max_len: u32| {
            let words: Vec<Word> = (0..=max_len)
                .flat_map(|len| {
                    (0..(1u32 << len)).map(move |bits| {
                        Word::new((0..len).map(|i| if bits >> i & 1 == 1 { '1' } else { '0' }))
                    })
                })
                .collect();
            GuideMasks::build(&InfixClosure::of_words(words))
        };
        let gm = wide(10);
        assert!(gm.simd_has_segments());
        assert_eq!(expand_simd(&gm), expand_masks(&gm));
        let longest = (0..gm.num_left())
            .flat_map(|l| gm.simd_row(l).segs)
            .map(|seg| seg.len)
            .max()
            .unwrap();
        // The ε row is one aligned copy of the whole closure — the gate
        // must keep a segment spanning (most of) its 32 blocks.
        assert!(
            longest >= 16,
            "longest staged segment only {longest} blocks"
        );
        assert!(
            !wide(7).simd_has_segments(),
            "narrow closures must stay scalar"
        );
    }

    proptest! {
        /// The mask table and the pair table encode the same split
        /// relation on random closures — and the funnel staging encodes
        /// the same splits as the entry rows it was derived from.
        #[test]
        fn masks_agree_with_table_on_random_closures(
            words in proptest::collection::vec("[01]{0,6}", 1..5)
        ) {
            let ic = InfixClosure::of_words(words.iter().map(|s| Word::from(s.as_str())));
            let gt = GuideTable::build(&ic);
            let gm = GuideMasks::build(&ic);
            prop_assert_eq!(expand_masks(&gm), expand_table(&gt));
            prop_assert_eq!(expand_simd(&gm), expand_masks(&gm));
        }
    }

    proptest! {
        /// Every split listed is valid and every valid split is listed.
        #[test]
        fn splits_sound_and_complete(words in proptest::collection::vec("[01]{0,5}", 1..4)) {
            let ic = InfixClosure::of_words(words.iter().map(|s| Word::from(s.as_str())));
            let gt = GuideTable::build(&ic);
            for (i, word) in ic.iter() {
                let splits = gt.splits(i);
                // Sound (checked via reconstruction) and complete (count).
                for &(l, r) in splits {
                    prop_assert_eq!(&ic.word(l as usize).concat(ic.word(r as usize)), word);
                }
                prop_assert_eq!(splits.len(), word.len() + 1);
            }
        }
    }
}
