//! Staged pre-computation of every split of every word: the pair-based
//! [`GuideTable`] and its transposed, bit-parallel companion
//! [`GuideMasks`].
//!
//! The [`GuideTable`] is the paper's staging structure: for each word `w`
//! of the infix closure, the list of index pairs `(l, r)` with
//! `word(l) · word(r) = w`. A concatenation kernel driven by it performs
//! one gather (two bit tests) per split per target word.
//!
//! The [`GuideMasks`] structure stores the *same* relation transposed and
//! compressed into block masks: for each **left** index `l`, a row of
//! entries, each covering every split `(l, r) → w` whose `r` bits live in
//! one 64-bit block of the operand, whose `w` bits live in one block of
//! the result, and whose bit offset `w − r` is constant. Because the
//! shortlex order makes the map `r ↦ w` (for fixed `l`) strictly
//! monotone, long runs of consecutive splits collapse into a single entry,
//! and a concatenation becomes: for every set bit `l` of the left operand,
//! a handful of *whole-block* mask-shift-or operations on the right
//! operand — no per-split bit tests at all. See
//! [`crate::csops::concat_into`].
//!
//! # Memory trade-off
//!
//! The pair table costs 8 bytes per split, always. A mask entry costs 32
//! bytes but covers between 1 and 64 splits: on dense closures (all words
//! of a short alphabet up to some length — the common shape of example
//! sets) entire length classes collapse into one entry and the mask table
//! is *smaller* than the pair table; on adversarially sparse closures
//! every entry covers a single split and the mask table costs up to 4× the
//! pair table. Both structures are staged once per synthesis run, and
//! [`GuideMasks::memory_bytes`] / [`GuideTable::memory_bytes`] expose the
//! actual footprint for memory accounting.

use crate::InfixClosure;

/// For each word `w` of the infix closure, the guide table stores every way
/// of writing `w = σ1 · σ2` with both `σ1` and `σ2` in the closure, as a
/// pair of bit positions `(index(σ1), index(σ2))`.
///
/// Because the closure is infix-closed, every prefix and suffix of `w` is a
/// member, so a word of length `ℓ` has exactly `ℓ + 1` splits. The table is
/// computed once per synthesis run (the paper's *staging*), after which the
/// convolution at the heart of concatenation and Kleene star becomes a pure
/// gather over bit positions with no string comparisons.
///
/// # Example
///
/// ```
/// use rei_lang::{GuideTable, InfixClosure, Word};
///
/// let ic = InfixClosure::of_words([Word::from("110")]);
/// let gt = GuideTable::build(&ic);
/// let w = ic.index_of(&Word::from("110")).unwrap();
/// // "110" splits as ε·110, 1·10, 11·0, 110·ε.
/// assert_eq!(gt.splits(w).len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuideTable {
    /// `offsets[w]..offsets[w + 1]` indexes the splits of word `w` in
    /// `pairs`.
    offsets: Vec<u32>,
    /// Flattened `(left, right)` index pairs.
    pairs: Vec<(u32, u32)>,
}

impl GuideTable {
    /// Builds the guide table for an infix closure.
    ///
    /// # Panics
    ///
    /// Panics if the closure has more than `u32::MAX` members (far beyond
    /// any feasible memory budget).
    pub fn build(ic: &InfixClosure) -> Self {
        assert!(ic.len() <= u32::MAX as usize, "infix closure too large");
        let mut offsets = Vec::with_capacity(ic.len() + 1);
        let mut pairs = Vec::new();
        offsets.push(0u32);
        for (_, word) in ic.iter() {
            let n = word.len();
            for cut in 0..=n {
                let left = word.infix(0, cut);
                let right = word.infix(cut, n);
                let li = ic
                    .index_of(&left)
                    .expect("prefix of a closure word must be in the closure");
                let ri = ic
                    .index_of(&right)
                    .expect("suffix of a closure word must be in the closure");
                pairs.push((li as u32, ri as u32));
            }
            offsets.push(pairs.len() as u32);
        }
        GuideTable { offsets, pairs }
    }

    /// Number of words covered by the table.
    pub fn num_words(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Returns `true` if the table covers no words.
    pub fn is_empty(&self) -> bool {
        self.num_words() == 0
    }

    /// The splits of the `w`-th word, as pairs of closure indices.
    ///
    /// # Panics
    ///
    /// Panics if `w >= self.num_words()`.
    pub fn splits(&self, w: usize) -> &[(u32, u32)] {
        let start = self.offsets[w] as usize;
        let end = self.offsets[w + 1] as usize;
        &self.pairs[start..end]
    }

    /// Total number of `(σ1, σ2)` pairs across all words; proportional to
    /// the memory the staged table occupies.
    pub fn total_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Approximate memory footprint of the table in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u32>()
            + self.pairs.len() * std::mem::size_of::<(u32, u32)>()
    }
}

/// One bit-parallel unit of work of a mask-based concatenation: a group of
/// splits `(l, r) → w` (for one fixed left index `l`) whose right indices
/// share a 64-bit block, whose target indices share a block, and whose
/// offset `w − r` is constant.
///
/// Applying an entry to a right operand `b` is three instructions:
/// `dst[target_block] |= (b[right_block] & right_mask) << shift` (a right
/// shift when `shift` is negative). Every bit of `right_mask` lands on the
/// corresponding bit of `target_mask` by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskEntry {
    /// Block index into the right operand.
    pub right_block: u32,
    /// Block index into the result row.
    pub target_block: u32,
    /// Bit distance `(w % 64) − (r % 64)`, in `-63..=63`.
    pub shift: i8,
    /// The right-operand bits `r` covered by this entry.
    pub right_mask: u64,
    /// The result bits `w` covered by this entry (`right_mask` shifted by
    /// `shift`).
    pub target_mask: u64,
}

impl MaskEntry {
    /// ORs into `dst` the target bits whose right operand bit is set in
    /// `b`.
    #[inline]
    pub fn apply(&self, b: &[u64], dst: &mut [u64]) {
        let picked = b[self.right_block as usize] & self.right_mask;
        if picked == 0 {
            return;
        }
        let moved = if self.shift >= 0 {
            picked << self.shift
        } else {
            picked >> -(self.shift as i32)
        };
        debug_assert_eq!(moved & !self.target_mask, 0, "stray bits after shift");
        dst[self.target_block as usize] |= moved;
    }
}

/// The transposed, mask-compressed form of the [`GuideTable`]: for each
/// left index `l`, the block-level [`MaskEntry`] row covering every split
/// `word(l) · word(r) = w` of the closure.
///
/// This is the structure behind the bit-parallel concatenation kernel
/// [`crate::csops::concat_into`], which walks only the set bits of its
/// left operand and applies each entry as a whole-block mask-shift-or.
/// See the `guide` module documentation (in the source) for the layout
/// and its memory trade-off against the pair table.
///
/// # Example
///
/// ```
/// use rei_lang::{GuideMasks, InfixClosure, Word};
///
/// let ic = InfixClosure::of_words([Word::from("110")]);
/// let gm = GuideMasks::build(&ic);
/// // Every split of every closure word is covered by some entry.
/// assert_eq!(gm.num_left(), ic.len());
/// assert!(gm.total_entries() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuideMasks {
    /// `offsets[l]..offsets[l + 1]` indexes the entries of left index `l`.
    offsets: Vec<u32>,
    /// Flattened mask entries, grouped by left index.
    entries: Vec<MaskEntry>,
}

impl GuideMasks {
    /// Builds the mask table for an infix closure.
    ///
    /// # Panics
    ///
    /// Panics if the closure has more than `u32::MAX` members.
    pub fn build(ic: &InfixClosure) -> Self {
        assert!(ic.len() <= u32::MAX as usize, "infix closure too large");
        // Bucket every split (l, r) → w of the closure by its left index.
        // Shortlex order makes r (and therefore w) ascending within each
        // bucket, so same-key splits are usually adjacent and the reverse
        // key scan below matches the row's newest entry first.
        let mut pairs_by_left: Vec<Vec<(u32, u32)>> = vec![Vec::new(); ic.len()];
        for (w, word) in ic.iter() {
            let n = word.len();
            for cut in 0..=n {
                let li = ic
                    .index_of(&word.infix(0, cut))
                    .expect("prefix of a closure word must be in the closure");
                let ri = ic
                    .index_of(&word.infix(cut, n))
                    .expect("suffix of a closure word must be in the closure");
                pairs_by_left[li].push((ri as u32, w as u32));
            }
        }

        let mut offsets = Vec::with_capacity(ic.len() + 1);
        let mut entries: Vec<MaskEntry> = Vec::new();
        offsets.push(0u32);
        for pairs in &mut pairs_by_left {
            pairs.sort_unstable();
            let row_start = entries.len();
            for &(r, w) in pairs.iter() {
                let right_block = r / 64;
                let target_block = w / 64;
                let shift = (w % 64) as i8 - (r % 64) as i8;
                let slot = entries[row_start..].iter_mut().rev().find(|e| {
                    e.right_block == right_block
                        && e.target_block == target_block
                        && e.shift == shift
                });
                match slot {
                    Some(entry) => {
                        entry.right_mask |= 1u64 << (r % 64);
                        entry.target_mask |= 1u64 << (w % 64);
                    }
                    None => entries.push(MaskEntry {
                        right_block,
                        target_block,
                        shift,
                        right_mask: 1u64 << (r % 64),
                        target_mask: 1u64 << (w % 64),
                    }),
                }
            }
            offsets.push(entries.len() as u32);
        }
        GuideMasks { offsets, entries }
    }

    /// Number of left indices covered (the size of the closure).
    pub fn num_left(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Returns `true` if the table covers no words.
    pub fn is_empty(&self) -> bool {
        self.num_left() == 0
    }

    /// The mask entries of left index `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l >= self.num_left()`.
    pub fn row(&self, l: usize) -> &[MaskEntry] {
        let start = self.offsets[l] as usize;
        let end = self.offsets[l + 1] as usize;
        &self.entries[start..end]
    }

    /// Total number of mask entries across all left indices.
    pub fn total_entries(&self) -> usize {
        self.entries.len()
    }

    /// Total number of splits covered (equals
    /// [`GuideTable::total_pairs`] on the same closure).
    pub fn total_splits(&self) -> usize {
        self.entries
            .iter()
            .map(|e| e.right_mask.count_ones() as usize)
            .sum()
    }

    /// Approximate memory footprint of the table in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u32>()
            + self.entries.len() * std::mem::size_of::<MaskEntry>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Spec, Word};
    use proptest::prelude::*;

    #[test]
    fn splits_count_is_length_plus_one() {
        let spec =
            Spec::from_strs(["1", "011", "1011", "11011"], ["", "10", "101", "0011"]).unwrap();
        let ic = InfixClosure::of_spec(&spec);
        let gt = GuideTable::build(&ic);
        assert_eq!(gt.num_words(), ic.len());
        for (i, word) in ic.iter() {
            assert_eq!(gt.splits(i).len(), word.len() + 1, "word {word}");
        }
    }

    #[test]
    fn splits_reconstruct_the_word() {
        let ic = InfixClosure::of_words([Word::from("11011")]);
        let gt = GuideTable::build(&ic);
        for (i, word) in ic.iter() {
            for &(l, r) in gt.splits(i) {
                let rebuilt = ic.word(l as usize).concat(ic.word(r as usize));
                assert_eq!(&rebuilt, word);
            }
        }
    }

    #[test]
    fn paper_guide_table_example() {
        // Section 3 of the paper: the guide-table row for "110" contains a
        // split into "11" and "0".
        let spec =
            Spec::from_strs(["1", "011", "1011", "11011"], ["", "10", "101", "0011"]).unwrap();
        let ic = InfixClosure::of_spec(&spec);
        let gt = GuideTable::build(&ic);
        let w = ic.index_of(&Word::from("110")).unwrap();
        let eleven = ic.index_of(&Word::from("11")).unwrap() as u32;
        let zero = ic.index_of(&Word::from("0")).unwrap() as u32;
        assert!(gt.splits(w).contains(&(eleven, zero)));
    }

    #[test]
    fn empty_closure() {
        let ic = InfixClosure::of_words(Vec::new());
        let gt = GuideTable::build(&ic);
        assert!(gt.is_empty());
        assert_eq!(gt.total_pairs(), 0);
    }

    #[test]
    fn memory_accounting_is_positive() {
        let ic = InfixClosure::of_words([Word::from("0101")]);
        let gt = GuideTable::build(&ic);
        assert!(gt.memory_bytes() > 0);
        assert_eq!(
            gt.total_pairs(),
            ic.iter().map(|(_, w)| w.len() + 1).sum::<usize>()
        );
    }

    /// Expands a mask table back into the set of `(l, r, w)` splits it
    /// encodes.
    fn expand_masks(gm: &GuideMasks) -> Vec<(u32, u32, u32)> {
        let mut splits = Vec::new();
        for l in 0..gm.num_left() {
            for entry in gm.row(l) {
                let mut bits = entry.right_mask;
                while bits != 0 {
                    let bit = bits.trailing_zeros() as i32;
                    bits &= bits - 1;
                    let r = entry.right_block * 64 + bit as u32;
                    let w = entry.target_block * 64 + (bit + entry.shift as i32) as u32;
                    assert_ne!(entry.target_mask & (1u64 << (bit + entry.shift as i32)), 0);
                    splits.push((l as u32, r, w));
                }
            }
        }
        splits.sort_unstable();
        splits
    }

    /// Expands the pair table into the same `(l, r, w)` representation.
    fn expand_table(gt: &GuideTable) -> Vec<(u32, u32, u32)> {
        let mut splits = Vec::new();
        for w in 0..gt.num_words() {
            for &(l, r) in gt.splits(w) {
                splits.push((l, r, w as u32));
            }
        }
        splits.sort_unstable();
        splits
    }

    #[test]
    fn masks_encode_exactly_the_table_splits() {
        let spec =
            Spec::from_strs(["1", "011", "1011", "11011"], ["", "10", "101", "0011"]).unwrap();
        let ic = InfixClosure::of_spec(&spec);
        let gt = GuideTable::build(&ic);
        let gm = GuideMasks::build(&ic);
        assert_eq!(gm.num_left(), ic.len());
        assert_eq!(gm.total_splits(), gt.total_pairs());
        assert_eq!(expand_masks(&gm), expand_table(&gt));
    }

    #[test]
    fn masks_compress_dense_closures() {
        // All binary words up to length 5: length classes collapse into
        // few block entries, so the mask table has far fewer entries than
        // the table has pairs.
        let words: Vec<Word> = (0..32u32)
            .map(|bits| Word::new((0..5).map(|i| if bits >> i & 1 == 1 { '1' } else { '0' })))
            .collect();
        let ic = InfixClosure::of_words(words);
        let gt = GuideTable::build(&ic);
        let gm = GuideMasks::build(&ic);
        assert_eq!(gm.total_splits(), gt.total_pairs());
        // Whole length classes collapse into single entries (one per
        // (left word, suffix length) here), so the mask table needs
        // well under half as many entries as the table has pairs.
        assert!(
            gm.total_entries() * 2 < gt.total_pairs(),
            "entries {} vs pairs {}",
            gm.total_entries(),
            gt.total_pairs()
        );
    }

    #[test]
    fn empty_closure_masks() {
        let gm = GuideMasks::build(&InfixClosure::of_words(Vec::new()));
        assert!(gm.is_empty());
        assert_eq!(gm.total_entries(), 0);
        assert_eq!(gm.memory_bytes(), std::mem::size_of::<u32>());
    }

    proptest! {
        /// The mask table and the pair table encode the same split
        /// relation on random closures.
        #[test]
        fn masks_agree_with_table_on_random_closures(
            words in proptest::collection::vec("[01]{0,6}", 1..5)
        ) {
            let ic = InfixClosure::of_words(words.iter().map(|s| Word::from(s.as_str())));
            let gt = GuideTable::build(&ic);
            let gm = GuideMasks::build(&ic);
            prop_assert_eq!(expand_masks(&gm), expand_table(&gt));
        }
    }

    proptest! {
        /// Every split listed is valid and every valid split is listed.
        #[test]
        fn splits_sound_and_complete(words in proptest::collection::vec("[01]{0,5}", 1..4)) {
            let ic = InfixClosure::of_words(words.iter().map(|s| Word::from(s.as_str())));
            let gt = GuideTable::build(&ic);
            for (i, word) in ic.iter() {
                let splits = gt.splits(i);
                // Sound (checked via reconstruction) and complete (count).
                for &(l, r) in splits {
                    prop_assert_eq!(&ic.word(l as usize).concat(ic.word(r as usize)), word);
                }
                prop_assert_eq!(splits.len(), word.len() + 1);
            }
        }
    }
}
