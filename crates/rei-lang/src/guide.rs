//! The guide table: staged pre-computation of every split of every word.

use crate::InfixClosure;

/// For each word `w` of the infix closure, the guide table stores every way
/// of writing `w = σ1 · σ2` with both `σ1` and `σ2` in the closure, as a
/// pair of bit positions `(index(σ1), index(σ2))`.
///
/// Because the closure is infix-closed, every prefix and suffix of `w` is a
/// member, so a word of length `ℓ` has exactly `ℓ + 1` splits. The table is
/// computed once per synthesis run (the paper's *staging*), after which the
/// convolution at the heart of concatenation and Kleene star becomes a pure
/// gather over bit positions with no string comparisons.
///
/// # Example
///
/// ```
/// use rei_lang::{GuideTable, InfixClosure, Word};
///
/// let ic = InfixClosure::of_words([Word::from("110")]);
/// let gt = GuideTable::build(&ic);
/// let w = ic.index_of(&Word::from("110")).unwrap();
/// // "110" splits as ε·110, 1·10, 11·0, 110·ε.
/// assert_eq!(gt.splits(w).len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuideTable {
    /// `offsets[w]..offsets[w + 1]` indexes the splits of word `w` in
    /// `pairs`.
    offsets: Vec<u32>,
    /// Flattened `(left, right)` index pairs.
    pairs: Vec<(u32, u32)>,
}

impl GuideTable {
    /// Builds the guide table for an infix closure.
    ///
    /// # Panics
    ///
    /// Panics if the closure has more than `u32::MAX` members (far beyond
    /// any feasible memory budget).
    pub fn build(ic: &InfixClosure) -> Self {
        assert!(ic.len() <= u32::MAX as usize, "infix closure too large");
        let mut offsets = Vec::with_capacity(ic.len() + 1);
        let mut pairs = Vec::new();
        offsets.push(0u32);
        for (_, word) in ic.iter() {
            let n = word.len();
            for cut in 0..=n {
                let left = word.infix(0, cut);
                let right = word.infix(cut, n);
                let li = ic
                    .index_of(&left)
                    .expect("prefix of a closure word must be in the closure");
                let ri = ic
                    .index_of(&right)
                    .expect("suffix of a closure word must be in the closure");
                pairs.push((li as u32, ri as u32));
            }
            offsets.push(pairs.len() as u32);
        }
        GuideTable { offsets, pairs }
    }

    /// Number of words covered by the table.
    pub fn num_words(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Returns `true` if the table covers no words.
    pub fn is_empty(&self) -> bool {
        self.num_words() == 0
    }

    /// The splits of the `w`-th word, as pairs of closure indices.
    ///
    /// # Panics
    ///
    /// Panics if `w >= self.num_words()`.
    pub fn splits(&self, w: usize) -> &[(u32, u32)] {
        let start = self.offsets[w] as usize;
        let end = self.offsets[w + 1] as usize;
        &self.pairs[start..end]
    }

    /// Total number of `(σ1, σ2)` pairs across all words; proportional to
    /// the memory the staged table occupies.
    pub fn total_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Approximate memory footprint of the table in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u32>()
            + self.pairs.len() * std::mem::size_of::<(u32, u32)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Spec, Word};
    use proptest::prelude::*;

    #[test]
    fn splits_count_is_length_plus_one() {
        let spec =
            Spec::from_strs(["1", "011", "1011", "11011"], ["", "10", "101", "0011"]).unwrap();
        let ic = InfixClosure::of_spec(&spec);
        let gt = GuideTable::build(&ic);
        assert_eq!(gt.num_words(), ic.len());
        for (i, word) in ic.iter() {
            assert_eq!(gt.splits(i).len(), word.len() + 1, "word {word}");
        }
    }

    #[test]
    fn splits_reconstruct_the_word() {
        let ic = InfixClosure::of_words([Word::from("11011")]);
        let gt = GuideTable::build(&ic);
        for (i, word) in ic.iter() {
            for &(l, r) in gt.splits(i) {
                let rebuilt = ic.word(l as usize).concat(ic.word(r as usize));
                assert_eq!(&rebuilt, word);
            }
        }
    }

    #[test]
    fn paper_guide_table_example() {
        // Section 3 of the paper: the guide-table row for "110" contains a
        // split into "11" and "0".
        let spec =
            Spec::from_strs(["1", "011", "1011", "11011"], ["", "10", "101", "0011"]).unwrap();
        let ic = InfixClosure::of_spec(&spec);
        let gt = GuideTable::build(&ic);
        let w = ic.index_of(&Word::from("110")).unwrap();
        let eleven = ic.index_of(&Word::from("11")).unwrap() as u32;
        let zero = ic.index_of(&Word::from("0")).unwrap() as u32;
        assert!(gt.splits(w).contains(&(eleven, zero)));
    }

    #[test]
    fn empty_closure() {
        let ic = InfixClosure::of_words(Vec::new());
        let gt = GuideTable::build(&ic);
        assert!(gt.is_empty());
        assert_eq!(gt.total_pairs(), 0);
    }

    #[test]
    fn memory_accounting_is_positive() {
        let ic = InfixClosure::of_words([Word::from("0101")]);
        let gt = GuideTable::build(&ic);
        assert!(gt.memory_bytes() > 0);
        assert_eq!(
            gt.total_pairs(),
            ic.iter().map(|(_, w)| w.len() + 1).sum::<usize>()
        );
    }

    proptest! {
        /// Every split listed is valid and every valid split is listed.
        #[test]
        fn splits_sound_and_complete(words in proptest::collection::vec("[01]{0,5}", 1..4)) {
            let ic = InfixClosure::of_words(words.iter().map(|s| Word::from(s.as_str())));
            let gt = GuideTable::build(&ic);
            for (i, word) in ic.iter() {
                let splits = gt.splits(i);
                // Sound (checked via reconstruction) and complete (count).
                for &(l, r) in splits {
                    prop_assert_eq!(&ic.word(l as usize).concat(ic.word(r as usize)), word);
                }
                prop_assert_eq!(splits.len(), word.len() + 1);
            }
        }
    }
}
