//! Specifications: positive and negative example sets.

use std::collections::BTreeSet;
use std::fmt;

use rei_syntax::Regex;

use crate::{SpecError, Word};

/// A specification `(P, N)` over an arbitrary alphabet (Definition 3.1 of
/// the paper): a finite set `P` of strings the inferred language must
/// accept, and a finite, disjoint set `N` of strings it must reject.
///
/// # Example
///
/// ```
/// use rei_lang::Spec;
/// use rei_syntax::parse;
///
/// let spec = Spec::from_strs(
///     ["10", "101", "100", "1010", "1011", "1000", "1001"],
///     ["", "0", "1", "00", "11", "010"],
/// )
/// .unwrap();
/// assert!(spec.is_satisfied_by(&parse("10(0+1)*").unwrap()));
/// assert!(!spec.is_satisfied_by(&parse("1(0+1)*").unwrap()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Spec {
    positive: BTreeSet<Word>,
    negative: BTreeSet<Word>,
}

impl Spec {
    /// Creates a specification from iterators of positive and negative
    /// words.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Contradictory`] if the two sets overlap.
    pub fn new<P, N>(positive: P, negative: N) -> Result<Self, SpecError>
    where
        P: IntoIterator<Item = Word>,
        N: IntoIterator<Item = Word>,
    {
        let positive: BTreeSet<Word> = positive.into_iter().collect();
        let negative: BTreeSet<Word> = negative.into_iter().collect();
        if let Some(word) = positive.intersection(&negative).next() {
            return Err(SpecError::Contradictory { word: word.clone() });
        }
        Ok(Spec { positive, negative })
    }

    /// Creates a specification from string slices; the empty string denotes
    /// `ε`.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Contradictory`] if the two sets overlap.
    pub fn from_strs<'a, P, N>(positive: P, negative: N) -> Result<Self, SpecError>
    where
        P: IntoIterator<Item = &'a str>,
        N: IntoIterator<Item = &'a str>,
    {
        Spec::new(
            positive.into_iter().map(Word::from),
            negative.into_iter().map(Word::from),
        )
    }

    /// The positive examples, in shortlex order.
    pub fn positive(&self) -> &BTreeSet<Word> {
        &self.positive
    }

    /// The negative examples, in shortlex order.
    pub fn negative(&self) -> &BTreeSet<Word> {
        &self.negative
    }

    /// Number of positive examples (`#P`).
    pub fn num_positive(&self) -> usize {
        self.positive.len()
    }

    /// Number of negative examples (`#N`).
    pub fn num_negative(&self) -> usize {
        self.negative.len()
    }

    /// Total number of examples (`#(P ∪ N)`).
    pub fn len(&self) -> usize {
        self.positive.len() + self.negative.len()
    }

    /// Returns `true` if the specification has no examples at all.
    pub fn is_empty(&self) -> bool {
        self.positive.is_empty() && self.negative.is_empty()
    }

    /// Iterates over all examples, positives before negatives.
    pub fn iter(&self) -> impl Iterator<Item = &Word> {
        self.positive.iter().chain(self.negative.iter())
    }

    /// Length of the longest example string (`le` in the benchmark
    /// parameters of Section 4.3), or 0 for an empty specification.
    pub fn max_example_len(&self) -> usize {
        self.iter().map(Word::len).max().unwrap_or(0)
    }

    /// Returns `true` if `regex` accepts every positive and rejects every
    /// negative example, i.e. `Lang(regex) ⊨ (P, N)`.
    ///
    /// This uses the derivative matcher as an oracle; the synthesiser
    /// itself checks satisfaction on characteristic sequences instead.
    pub fn is_satisfied_by(&self, regex: &Regex) -> bool {
        self.misclassified_by(regex) == 0
    }

    /// Number of examples misclassified by `regex`: positives rejected plus
    /// negatives accepted. Used by the REI-with-error extension
    /// (Section 5.2 of the paper).
    pub fn misclassified_by(&self, regex: &Regex) -> usize {
        let wrong_pos = self
            .positive
            .iter()
            .filter(|w| !regex.accepts(w.chars().iter().copied()))
            .count();
        let wrong_neg = self
            .negative
            .iter()
            .filter(|w| regex.accepts(w.chars().iter().copied()))
            .count();
        wrong_pos + wrong_neg
    }

    /// The maximally overfitted solution `w1 + ... + wk` for `P = {w1..wk}`
    /// (expression (2) in the paper's introduction). Its cost is an upper
    /// bound on the cost of the minimal solution, which bounds the search.
    pub fn overfit_regex(&self) -> Regex {
        Regex::union_of(
            self.positive
                .iter()
                .map(|w| Regex::word(w.chars().iter().copied())),
        )
    }
}

impl fmt::Display for Spec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P = {{")?;
        for (i, w) in self.positive.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{w}")?;
        }
        write!(f, "}}, N = {{")?;
        for (i, w) in self.negative.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{w}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rei_syntax::parse;

    #[test]
    fn overlapping_examples_are_rejected() {
        let err = Spec::from_strs(["0", "1"], ["1", "00"]).unwrap_err();
        assert_eq!(
            err,
            SpecError::Contradictory {
                word: Word::from("1")
            }
        );
    }

    #[test]
    fn duplicates_are_collapsed() {
        let spec = Spec::from_strs(["0", "0", "1"], ["00"]).unwrap();
        assert_eq!(spec.num_positive(), 2);
        assert_eq!(spec.num_negative(), 1);
        assert_eq!(spec.len(), 3);
    }

    #[test]
    fn satisfaction_oracle() {
        let spec = Spec::from_strs(["10", "100"], ["", "01"]).unwrap();
        assert!(spec.is_satisfied_by(&parse("10(0+1)*").unwrap()));
        assert!(!spec.is_satisfied_by(&parse("0(0+1)*").unwrap()));
        assert_eq!(spec.misclassified_by(&parse("∅").unwrap()), 2);
        assert_eq!(spec.misclassified_by(&parse("(0+1)*").unwrap()), 2);
    }

    #[test]
    fn overfit_regex_accepts_exactly_the_positives() {
        let spec = Spec::from_strs(["10", "101"], ["0", "11"]).unwrap();
        let overfit = spec.overfit_regex();
        assert!(spec.is_satisfied_by(&overfit));
        assert!(!overfit.accepts("1010".chars()));
    }

    #[test]
    fn empty_word_is_a_valid_example() {
        let spec = Spec::from_strs(["", "11"], ["1"]).unwrap();
        assert!(spec.positive().contains(&Word::epsilon()));
        assert!(spec.is_satisfied_by(&parse("(11)*").unwrap()));
    }

    #[test]
    fn max_example_len() {
        let spec = Spec::from_strs(["", "11"], ["10101"]).unwrap();
        assert_eq!(spec.max_example_len(), 5);
        assert_eq!(Spec::default().max_example_len(), 0);
    }

    #[test]
    fn display_lists_both_sets() {
        let spec = Spec::from_strs(["1"], [""]).unwrap();
        assert_eq!(spec.to_string(), "P = {1}, N = {ε}");
    }
}
