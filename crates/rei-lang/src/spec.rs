//! Specifications: positive and negative example sets.

use std::collections::BTreeSet;
use std::fmt;

use rei_syntax::Regex;

use crate::{SpecError, Word};

/// A specification `(P, N)` over an arbitrary alphabet (Definition 3.1 of
/// the paper): a finite set `P` of strings the inferred language must
/// accept, and a finite, disjoint set `N` of strings it must reject.
///
/// # Example
///
/// ```
/// use rei_lang::Spec;
/// use rei_syntax::parse;
///
/// let spec = Spec::from_strs(
///     ["10", "101", "100", "1010", "1011", "1000", "1001"],
///     ["", "0", "1", "00", "11", "010"],
/// )
/// .unwrap();
/// assert!(spec.is_satisfied_by(&parse("10(0+1)*").unwrap()));
/// assert!(!spec.is_satisfied_by(&parse("1(0+1)*").unwrap()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Spec {
    positive: BTreeSet<Word>,
    negative: BTreeSet<Word>,
}

impl Spec {
    /// Creates a specification from iterators of positive and negative
    /// words.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Contradictory`] if the two sets overlap.
    pub fn new<P, N>(positive: P, negative: N) -> Result<Self, SpecError>
    where
        P: IntoIterator<Item = Word>,
        N: IntoIterator<Item = Word>,
    {
        let positive: BTreeSet<Word> = positive.into_iter().collect();
        let negative: BTreeSet<Word> = negative.into_iter().collect();
        if let Some(word) = positive.intersection(&negative).next() {
            return Err(SpecError::Contradictory { word: word.clone() });
        }
        Ok(Spec { positive, negative })
    }

    /// Creates a specification from string slices; the empty string denotes
    /// `ε`.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Contradictory`] if the two sets overlap.
    pub fn from_strs<'a, P, N>(positive: P, negative: N) -> Result<Self, SpecError>
    where
        P: IntoIterator<Item = &'a str>,
        N: IntoIterator<Item = &'a str>,
    {
        Spec::new(
            positive.into_iter().map(Word::from),
            negative.into_iter().map(Word::from),
        )
    }

    /// The positive examples, in shortlex order.
    pub fn positive(&self) -> &BTreeSet<Word> {
        &self.positive
    }

    /// The negative examples, in shortlex order.
    pub fn negative(&self) -> &BTreeSet<Word> {
        &self.negative
    }

    /// Number of positive examples (`#P`).
    pub fn num_positive(&self) -> usize {
        self.positive.len()
    }

    /// Number of negative examples (`#N`).
    pub fn num_negative(&self) -> usize {
        self.negative.len()
    }

    /// Total number of examples (`#(P ∪ N)`).
    pub fn len(&self) -> usize {
        self.positive.len() + self.negative.len()
    }

    /// Returns `true` if the specification has no examples at all.
    pub fn is_empty(&self) -> bool {
        self.positive.is_empty() && self.negative.is_empty()
    }

    /// Iterates over all examples, positives before negatives.
    pub fn iter(&self) -> impl Iterator<Item = &Word> {
        self.positive.iter().chain(self.negative.iter())
    }

    /// Length of the longest example string (`le` in the benchmark
    /// parameters of Section 4.3), or 0 for an empty specification.
    pub fn max_example_len(&self) -> usize {
        self.iter().map(Word::len).max().unwrap_or(0)
    }

    /// Returns `true` if `regex` accepts every positive and rejects every
    /// negative example, i.e. `Lang(regex) ⊨ (P, N)`.
    ///
    /// This uses the derivative matcher as an oracle; the synthesiser
    /// itself checks satisfaction on characteristic sequences instead.
    pub fn is_satisfied_by(&self, regex: &Regex) -> bool {
        self.misclassified_by(regex) == 0
    }

    /// Number of examples misclassified by `regex`: positives rejected plus
    /// negatives accepted. Used by the REI-with-error extension
    /// (Section 5.2 of the paper).
    pub fn misclassified_by(&self, regex: &Regex) -> usize {
        let wrong_pos = self
            .positive
            .iter()
            .filter(|w| !regex.accepts(w.chars().iter().copied()))
            .count();
        let wrong_neg = self
            .negative
            .iter()
            .filter(|w| regex.accepts(w.chars().iter().copied()))
            .count();
        wrong_pos + wrong_neg
    }

    /// The canonical textual encoding of this specification.
    ///
    /// Specifications are canonical by construction — examples live in
    /// [`BTreeSet`]s, so duplicates collapse and insertion order is
    /// irrelevant — and this method exposes that canonical form as a
    /// string: each example set is emitted in shortlex order, every word
    /// length-prefixed (`<len>:<chars>`), so the encoding is injective
    /// (two specifications produce the same string iff they are equal).
    /// This is the stable identity used by result caches and request
    /// coalescing; hash it with [`Spec::fingerprint`].
    ///
    /// # Example
    ///
    /// ```
    /// use rei_lang::Spec;
    ///
    /// // Example order and duplicates do not matter.
    /// let a = Spec::from_strs(["10", "1", "10"], ["0"]).unwrap();
    /// let b = Spec::from_strs(["1", "10"], ["0"]).unwrap();
    /// assert_eq!(a.canonicalize(), b.canonicalize());
    /// assert_eq!(a.fingerprint(), b.fingerprint());
    /// ```
    pub fn canonicalize(&self) -> String {
        let mut out = String::new();
        for (marker, set) in [('P', &self.positive), ('N', &self.negative)] {
            out.push(marker);
            out.push_str(&set.len().to_string());
            for word in set {
                out.push(';');
                out.push_str(&word.len().to_string());
                out.push(':');
                out.extend(word.chars().iter());
            }
        }
        out
    }

    /// A stable 64-bit fingerprint of the specification: FNV-1a over the
    /// canonical encoding of [`Spec::canonicalize`].
    ///
    /// Unlike [`std::collections::hash_map::DefaultHasher`], the value is
    /// stable across processes, platforms and Rust versions, so it can be
    /// persisted, logged and compared between service instances. Two
    /// specifications differing only in example order or duplication hash
    /// identically; collisions between distinct specifications are
    /// possible (it is 64 bits), so exact caches must compare the
    /// canonical encoding as well.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(self.canonicalize().as_bytes())
    }

    /// The maximally overfitted solution `w1 + ... + wk` for `P = {w1..wk}`
    /// (expression (2) in the paper's introduction). Its cost is an upper
    /// bound on the cost of the minimal solution, which bounds the search.
    pub fn overfit_regex(&self) -> Regex {
        Regex::union_of(
            self.positive
                .iter()
                .map(|w| Regex::word(w.chars().iter().copied())),
        )
    }
}

/// The stable FNV-1a 64-bit hash behind [`Spec::fingerprint`].
///
/// Exposed so that consumers holding only a *stored* canonical encoding
/// (for example a persisted cache record) can recompute the fingerprint a
/// live [`Spec`] would produce, without reconstructing the specification.
/// It is also the hash used for shard-routing tenant keys, so any stable
/// byte string can be mapped onto the same 64-bit space as specifications.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

impl fmt::Display for Spec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P = {{")?;
        for (i, w) in self.positive.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{w}")?;
        }
        write!(f, "}}, N = {{")?;
        for (i, w) in self.negative.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{w}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rei_syntax::parse;

    #[test]
    fn overlapping_examples_are_rejected() {
        let err = Spec::from_strs(["0", "1"], ["1", "00"]).unwrap_err();
        assert_eq!(
            err,
            SpecError::Contradictory {
                word: Word::from("1")
            }
        );
    }

    #[test]
    fn duplicates_are_collapsed() {
        let spec = Spec::from_strs(["0", "0", "1"], ["00"]).unwrap();
        assert_eq!(spec.num_positive(), 2);
        assert_eq!(spec.num_negative(), 1);
        assert_eq!(spec.len(), 3);
    }

    #[test]
    fn satisfaction_oracle() {
        let spec = Spec::from_strs(["10", "100"], ["", "01"]).unwrap();
        assert!(spec.is_satisfied_by(&parse("10(0+1)*").unwrap()));
        assert!(!spec.is_satisfied_by(&parse("0(0+1)*").unwrap()));
        assert_eq!(spec.misclassified_by(&parse("∅").unwrap()), 2);
        assert_eq!(spec.misclassified_by(&parse("(0+1)*").unwrap()), 2);
    }

    #[test]
    fn overfit_regex_accepts_exactly_the_positives() {
        let spec = Spec::from_strs(["10", "101"], ["0", "11"]).unwrap();
        let overfit = spec.overfit_regex();
        assert!(spec.is_satisfied_by(&overfit));
        assert!(!overfit.accepts("1010".chars()));
    }

    #[test]
    fn empty_word_is_a_valid_example() {
        let spec = Spec::from_strs(["", "11"], ["1"]).unwrap();
        assert!(spec.positive().contains(&Word::epsilon()));
        assert!(spec.is_satisfied_by(&parse("(11)*").unwrap()));
    }

    #[test]
    fn max_example_len() {
        let spec = Spec::from_strs(["", "11"], ["10101"]).unwrap();
        assert_eq!(spec.max_example_len(), 5);
        assert_eq!(Spec::default().max_example_len(), 0);
    }

    #[test]
    fn display_lists_both_sets() {
        let spec = Spec::from_strs(["1"], [""]).unwrap();
        assert_eq!(spec.to_string(), "P = {1}, N = {ε}");
    }

    #[test]
    fn canonical_encoding_is_order_and_duplication_independent() {
        let a = Spec::from_strs(["10", "1", "10", "011"], ["0", "00"]).unwrap();
        let b = Spec::from_strs(["011", "10", "1"], ["00", "0", "0"]).unwrap();
        assert_eq!(a.canonicalize(), b.canonicalize());
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Shortlex order and length prefixes make the encoding explicit.
        assert_eq!(a.canonicalize(), "P3;1:1;2:10;3:011N2;1:0;2:00");
    }

    #[test]
    fn canonical_encoding_distinguishes_positives_from_negatives() {
        let a = Spec::from_strs(["1"], ["0"]).unwrap();
        let b = Spec::from_strs(["0"], ["1"]).unwrap();
        assert_ne!(a.canonicalize(), b.canonicalize());
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Moving a word across the set boundary also changes the encoding.
        let c = Spec::from_strs(["1", "0"], []).unwrap();
        assert_ne!(a.canonicalize(), c.canonicalize());
        assert_eq!(Spec::default().canonicalize(), "P0N0");
    }

    #[test]
    fn fingerprint_is_stable_across_processes() {
        // FNV-1a is specified byte-for-byte: pin one value so an
        // accidental algorithm change (which would invalidate persisted
        // cache keys) fails loudly.
        assert_eq!(
            Spec::default().fingerprint(),
            fnv1a(b"P0N0"),
            "fingerprint must be FNV-1a of the canonical encoding"
        );
        let spec = Spec::from_strs(["10"], ["0"]).unwrap();
        assert_eq!(spec.fingerprint(), fnv1a(b"P1;2:10N1;1:0"));
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for &byte in bytes {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}
