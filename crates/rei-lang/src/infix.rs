//! The infix closure `ic(P ∪ N)` and its shortlex indexing.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use rei_syntax::Regex;

use crate::{Cs, CsWidth, Spec, Word};

/// The infix closure of a finite set of words, totally ordered by shortlex.
///
/// `ic(S)` is the smallest superset of `S` that contains every infix
/// (substring) of every member (Definition 2.2). It is the index set of
/// every characteristic sequence: the `i`-th bit of a CS records whether
/// the `i`-th word of the closure belongs to the represented language.
///
/// The closure is immutable once built — `P` and `N` do not change during a
/// synthesis run — which is what allows the guide table to be staged and
/// every CS to have the same width.
///
/// # Example
///
/// ```
/// use rei_lang::{InfixClosure, Spec, Word};
///
/// // Example 3.6 of the paper.
/// let spec = Spec::from_strs(["1", "011", "1011", "11011"], ["", "10", "101", "0011"]).unwrap();
/// let ic = InfixClosure::of_spec(&spec);
/// assert_eq!(ic.len(), 15);
/// assert_eq!(ic.index_of(&Word::epsilon()), Some(0));
/// assert_eq!(ic.word(ic.len() - 1).to_string(), "11011");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InfixClosure {
    words: Vec<Word>,
    index: HashMap<Word, usize>,
}

impl InfixClosure {
    /// Builds the infix closure of all examples of `spec`.
    pub fn of_spec(spec: &Spec) -> Self {
        InfixClosure::of_words(spec.iter().cloned())
    }

    /// Builds the infix closure of an arbitrary finite set of words.
    pub fn of_words<I: IntoIterator<Item = Word>>(words: I) -> Self {
        let mut closure: BTreeSet<Word> = BTreeSet::new();
        for word in words {
            for infix in word.infixes() {
                closure.insert(infix);
            }
        }
        let words: Vec<Word> = closure.into_iter().collect();
        let index = words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), i))
            .collect();
        InfixClosure { words, index }
    }

    /// Number of words in the closure (`#ic(P ∪ N)`, the `k` of the
    /// paper's space analysis).
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Returns `true` if the closure is empty (only possible for an empty
    /// input set).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The bitvector geometry induced by this closure.
    pub fn width(&self) -> CsWidth {
        CsWidth::for_len(self.words.len())
    }

    /// The `i`-th word in shortlex order.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn word(&self, i: usize) -> &Word {
        &self.words[i]
    }

    /// All words of the closure in shortlex order.
    pub fn words(&self) -> &[Word] {
        &self.words
    }

    /// Index of `word` in the closure, if present.
    pub fn index_of(&self, word: &Word) -> Option<usize> {
        self.index.get(word).copied()
    }

    /// Index of the empty word, if the closure is non-empty. With shortlex
    /// ordering this is always index 0.
    pub fn eps_index(&self) -> Option<usize> {
        if self.words.is_empty() {
            None
        } else {
            debug_assert!(self.words[0].is_empty());
            Some(0)
        }
    }

    /// Iterates over `(index, word)` pairs in shortlex order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Word)> {
        self.words.iter().enumerate()
    }

    /// The characteristic sequence of a finite set of words: bit `i` is set
    /// iff the `i`-th word of the closure is in the set. Words outside the
    /// closure are ignored.
    pub fn cs_of_words<'a, I: IntoIterator<Item = &'a Word>>(&self, words: I) -> Cs {
        let mut cs = Cs::zero(self.width());
        for word in words {
            if let Some(i) = self.index_of(word) {
                cs.set(i);
            }
        }
        cs
    }

    /// The characteristic sequence of the single-character language `{a}`.
    pub fn cs_of_literal(&self, a: char) -> Cs {
        self.cs_of_words([Word::new([a])].iter())
    }

    /// The characteristic sequence of `{ε}`.
    pub fn cs_of_epsilon(&self) -> Cs {
        self.cs_of_words([Word::epsilon()].iter())
    }

    /// The characteristic sequence of `Lang(regex) ∩ ic(P ∪ N)`, computed
    /// with the derivative matcher. This is the reference implementation
    /// ("the math") that the synthesiser's bit-parallel operations are
    /// tested against.
    pub fn cs_of_regex(&self, regex: &Regex) -> Cs {
        let mut cs = Cs::zero(self.width());
        for (i, word) in self.iter() {
            if regex.accepts(word.chars().iter().copied()) {
                cs.set(i);
            }
        }
        cs
    }
}

impl fmt::Display for InfixClosure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, w) in self.words.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{w}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rei_syntax::parse;

    fn example_3_6() -> InfixClosure {
        let spec =
            Spec::from_strs(["1", "011", "1011", "11011"], ["", "10", "101", "0011"]).unwrap();
        InfixClosure::of_spec(&spec)
    }

    #[test]
    fn example_3_6_has_15_words() {
        let ic = example_3_6();
        assert_eq!(ic.len(), 15);
        let rendered: Vec<String> = ic.words().iter().map(|w| w.to_string()).collect();
        // Same set as the paper (the paper lists them in a different
        // order; we use shortlex ascending).
        let mut expected = vec![
            "11011", "1101", "110", "11", "1011", "101", "10", "1", "011", "01", "0011", "001",
            "00", "0", "ε",
        ];
        expected.sort_by_key(|s| {
            let w = if *s == "ε" {
                Word::epsilon()
            } else {
                Word::from(*s)
            };
            (w.len(), w.chars().to_vec())
        });
        assert_eq!(rendered, expected);
    }

    #[test]
    fn closure_is_infix_closed() {
        let ic = example_3_6();
        for (_, word) in ic.iter() {
            for infix in word.infixes() {
                assert!(
                    ic.index_of(&infix).is_some(),
                    "infix {infix} of {word} missing from closure"
                );
            }
        }
    }

    #[test]
    fn epsilon_is_first() {
        let ic = example_3_6();
        assert_eq!(ic.eps_index(), Some(0));
        assert!(ic.word(0).is_empty());
    }

    #[test]
    fn cs_of_regex_matches_example_3_6() {
        // (0?1)*1 intersected with ic is {11011, 1011, 011, 11, 1}.
        let ic = example_3_6();
        let cs = ic.cs_of_regex(&parse("(0?1)*1").unwrap());
        let members: Vec<String> = ic
            .iter()
            .filter(|(i, _)| cs.get(*i))
            .map(|(_, w)| w.to_string())
            .collect();
        let mut expected = vec!["1", "11", "011", "1011", "11011"];
        expected.sort_by_key(|s| (s.len(), s.to_string()));
        assert_eq!(members, expected);
    }

    #[test]
    fn heterogeneity_example_from_section_4_3() {
        // ic({aaa, aa}) = {aaa, aa, a, ε} has 4 elements while
        // ic({abc, de}) has 10.
        let homogeneous = InfixClosure::of_words([Word::from("aaa"), Word::from("aa")]);
        let heterogeneous = InfixClosure::of_words([Word::from("abc"), Word::from("de")]);
        assert_eq!(homogeneous.len(), 4);
        assert_eq!(heterogeneous.len(), 10);
    }

    #[test]
    fn empty_input_gives_empty_closure() {
        let ic = InfixClosure::of_words(Vec::new());
        assert!(ic.is_empty());
        assert_eq!(ic.eps_index(), None);
    }

    #[test]
    fn cs_of_literal_and_epsilon() {
        let ic = example_3_6();
        let eps = ic.cs_of_epsilon();
        assert!(eps.get(0));
        assert_eq!(eps.count_ones(), 1);
        let zero = ic.cs_of_literal('0');
        assert_eq!(zero.count_ones(), 1);
        assert_eq!(ic.word(zero.iter_ones().next().unwrap()).to_string(), "0");
        // A literal outside every example has an all-zero CS.
        assert_eq!(ic.cs_of_literal('x').count_ones(), 0);
    }

    proptest! {
        /// The closure contains exactly the infixes of its generators.
        #[test]
        fn closure_is_sound_and_complete(words in proptest::collection::vec("[01]{0,6}", 0..5)) {
            let generators: Vec<Word> = words.iter().map(|s| Word::from(s.as_str())).collect();
            let ic = InfixClosure::of_words(generators.clone());
            // Sound: every member is an infix of some generator.
            for (_, w) in ic.iter() {
                prop_assert!(generators.iter().any(|g| g.contains_infix(w)));
            }
            // Complete: every infix of every generator is a member.
            for g in &generators {
                for infix in g.infixes() {
                    prop_assert!(ic.index_of(&infix).is_some());
                }
            }
            // Sorted by shortlex.
            let mut sorted = ic.words().to_vec();
            sorted.sort();
            prop_assert_eq!(sorted.as_slice(), ic.words());
        }
    }
}
