//! Characteristic sequences: fixed-width bitvectors over the infix closure.

use std::fmt;

use crate::csops;

/// Geometry of the characteristic sequences induced by an infix closure of
/// a given size.
///
/// Following the paper's second space-time trade-off, bitvectors are padded
/// to the smallest power of two not below `len` (and at least one 64-bit
/// machine word), so that every CS occupies a whole number of `u64` blocks
/// and all bitwise kernels operate on uniformly sized rows.
///
/// # Example
///
/// ```
/// use rei_lang::CsWidth;
///
/// let w = CsWidth::for_len(15);
/// assert_eq!(w.len(), 15);
/// assert_eq!(w.padded_bits(), 64);
/// assert_eq!(w.blocks(), 1);
///
/// let wide = CsWidth::for_len(200);
/// assert_eq!(wide.padded_bits(), 256);
/// assert_eq!(wide.blocks(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CsWidth {
    len: usize,
    padded_bits: usize,
}

impl CsWidth {
    /// Geometry for an infix closure with `len` words.
    pub fn for_len(len: usize) -> Self {
        let padded_bits = len.next_power_of_two().max(64);
        CsWidth { len, padded_bits }
    }

    /// Number of meaningful bits (words in the infix closure).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the closure is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of bits after padding to a power of two.
    pub fn padded_bits(&self) -> usize {
        self.padded_bits
    }

    /// Number of `u64` blocks per characteristic sequence.
    pub fn blocks(&self) -> usize {
        self.padded_bits / 64
    }

    /// Number of bytes per characteristic sequence.
    pub fn bytes(&self) -> usize {
        self.blocks() * 8
    }
}

/// A characteristic sequence: the bitvector representation of a language
/// restricted to the infix closure `ic(P ∪ N)`.
///
/// Bit `i` is 1 exactly when the `i`-th word of the closure (in shortlex
/// order) belongs to the represented language. The semiring operations of
/// infix power series are provided here for owned values; the synthesiser's
/// language cache operates on raw `&[u64]` rows through [`crate::csops`] to
/// avoid allocation, and both paths share the same kernels.
///
/// # Example
///
/// ```
/// use rei_lang::{Cs, CsWidth};
///
/// let width = CsWidth::for_len(10);
/// let mut a = Cs::zero(width);
/// a.set(3);
/// let mut b = Cs::zero(width);
/// b.set(7);
/// let u = a.union(&b);
/// assert!(u.get(3) && u.get(7));
/// assert_eq!(u.count_ones(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cs {
    width: CsWidth,
    blocks: Vec<u64>,
}

impl Cs {
    /// The all-zero sequence (the empty language `∅`).
    pub fn zero(width: CsWidth) -> Self {
        Cs {
            width,
            blocks: vec![0; width.blocks()],
        }
    }

    /// Builds a sequence from raw blocks.
    ///
    /// # Panics
    ///
    /// Panics if `blocks.len()` does not match `width.blocks()`.
    pub fn from_blocks(width: CsWidth, blocks: Vec<u64>) -> Self {
        assert_eq!(blocks.len(), width.blocks(), "block count must match width");
        Cs { width, blocks }
    }

    /// The geometry of this sequence.
    pub fn width(&self) -> CsWidth {
        self.width
    }

    /// The raw 64-bit blocks.
    pub fn blocks(&self) -> &[u64] {
        &self.blocks
    }

    /// Mutable access to the raw blocks (used by the cache kernels).
    pub fn blocks_mut(&mut self) -> &mut [u64] {
        &mut self.blocks
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width().len()`.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.width.len(), "bit index {i} out of range");
        csops::set_bit(&mut self.blocks, i);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width().len()`.
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.width.len(), "bit index {i} out of range");
        self.blocks[i / 64] &= !(1u64 << (i % 64));
    }

    /// Reads bit `i`; bits beyond the meaningful length read as 0.
    pub fn get(&self, i: usize) -> bool {
        i < self.width.padded_bits() && csops::get_bit(&self.blocks, i)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Returns `true` if no bit is set (the empty language).
    pub fn is_zero(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Iterates over the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .flat_map(|(block_idx, &block)| {
                let mut bits = block;
                std::iter::from_fn(move || {
                    if bits == 0 {
                        None
                    } else {
                        let tz = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        Some(block_idx * 64 + tz)
                    }
                })
            })
    }

    /// Union of two languages (bitwise or). This is the `+` of the IPS
    /// semiring.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn union(&self, other: &Cs) -> Cs {
        assert_eq!(self.width, other.width, "width mismatch");
        let blocks = self
            .blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| a | b)
            .collect();
        Cs {
            width: self.width,
            blocks,
        }
    }

    /// Intersection of two languages (bitwise and).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn intersection(&self, other: &Cs) -> Cs {
        assert_eq!(self.width, other.width, "width mismatch");
        let blocks = self
            .blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| a & b)
            .collect();
        Cs {
            width: self.width,
            blocks,
        }
    }

    /// Returns `true` if every set bit of `self` is also set in `other`.
    pub fn is_subset_of(&self, other: &Cs) -> bool {
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// Returns `true` if the two languages share no word of the closure.
    pub fn is_disjoint_from(&self, other: &Cs) -> bool {
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & b == 0)
    }
}

impl fmt::Display for Cs {
    /// Renders the meaningful bits as a string of `0`/`1`, least index
    /// first, matching the row pictures in Section 3 of the paper.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.width.len() {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn width_padding_is_a_power_of_two_and_at_least_64() {
        assert_eq!(CsWidth::for_len(0).padded_bits(), 64);
        assert_eq!(CsWidth::for_len(1).padded_bits(), 64);
        assert_eq!(CsWidth::for_len(64).padded_bits(), 64);
        assert_eq!(CsWidth::for_len(65).padded_bits(), 128);
        assert_eq!(CsWidth::for_len(129).padded_bits(), 256);
        assert_eq!(CsWidth::for_len(100).bytes(), 16);
    }

    #[test]
    fn set_get_clear() {
        let mut cs = Cs::zero(CsWidth::for_len(70));
        cs.set(0);
        cs.set(69);
        assert!(cs.get(0));
        assert!(cs.get(69));
        assert!(!cs.get(1));
        assert_eq!(cs.count_ones(), 2);
        cs.clear(0);
        assert!(!cs.get(0));
        assert_eq!(cs.count_ones(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut cs = Cs::zero(CsWidth::for_len(10));
        cs.set(10);
    }

    #[test]
    fn iter_ones_ascending() {
        let mut cs = Cs::zero(CsWidth::for_len(130));
        for i in [5, 64, 127, 129] {
            cs.set(i);
        }
        assert_eq!(cs.iter_ones().collect::<Vec<_>>(), vec![5, 64, 127, 129]);
    }

    #[test]
    fn union_intersection_subset() {
        let width = CsWidth::for_len(16);
        let mut a = Cs::zero(width);
        let mut b = Cs::zero(width);
        a.set(1);
        a.set(2);
        b.set(2);
        b.set(3);
        assert_eq!(a.union(&b).iter_ones().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(a.intersection(&b).iter_ones().collect::<Vec<_>>(), vec![2]);
        assert!(a.intersection(&b).is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
        assert!(!a.is_disjoint_from(&b));
        b.clear(2);
        assert!(a.is_disjoint_from(&b));
    }

    #[test]
    fn display_renders_meaningful_bits_only() {
        let mut cs = Cs::zero(CsWidth::for_len(5));
        cs.set(0);
        cs.set(4);
        assert_eq!(cs.to_string(), "10001");
    }

    proptest! {
        /// Union is commutative, associative and idempotent — the Boolean
        /// semiring laws the search relies on.
        #[test]
        fn union_semiring_laws(xs in proptest::collection::vec(0usize..100, 0..20),
                               ys in proptest::collection::vec(0usize..100, 0..20),
                               zs in proptest::collection::vec(0usize..100, 0..20)) {
            let width = CsWidth::for_len(100);
            let mk = |ixs: &Vec<usize>| {
                let mut cs = Cs::zero(width);
                for &i in ixs { cs.set(i); }
                cs
            };
            let (a, b, c) = (mk(&xs), mk(&ys), mk(&zs));
            prop_assert_eq!(a.union(&b), b.union(&a));
            prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
            prop_assert_eq!(a.union(&a), a.clone());
            prop_assert_eq!(a.union(&Cs::zero(width)), a);
        }
    }
}
