//! Satisfaction masks: checking `L ⊨ (P, N)` with two bitwise operations.

use crate::{csops, Cs, CsWidth, InfixClosure, Spec};

/// The pair of bit masks used to decide whether a characteristic sequence
/// satisfies a specification.
///
/// `pos` has a 1 exactly at the closure index of every positive example,
/// `neg` at the index of every negative example. A language represented by
/// the row `cs` satisfies the specification iff `(cs & pos) == pos` and
/// `(cs & neg) == 0`. This check runs once per freshly constructed CS, so
/// it is on the hot path of the search.
///
/// # Example
///
/// ```
/// use rei_lang::{InfixClosure, SatisfyMasks, Spec};
/// use rei_syntax::parse;
///
/// let spec = Spec::from_strs(["10", "100"], ["", "01"]).unwrap();
/// let ic = InfixClosure::of_spec(&spec);
/// let masks = SatisfyMasks::new(&spec, &ic);
/// let cs = ic.cs_of_regex(&parse("10(0+1)*").unwrap());
/// assert!(masks.is_satisfied(cs.blocks()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SatisfyMasks {
    width: CsWidth,
    pos: Cs,
    neg: Cs,
}

impl SatisfyMasks {
    /// Builds the masks for `spec` relative to the infix closure `ic`.
    ///
    /// # Panics
    ///
    /// Panics if an example of `spec` is not a member of `ic` (the closure
    /// must have been computed from the same specification).
    pub fn new(spec: &Spec, ic: &InfixClosure) -> Self {
        for word in spec.iter() {
            assert!(
                ic.index_of(word).is_some(),
                "example '{word}' is not in the infix closure"
            );
        }
        SatisfyMasks {
            width: ic.width(),
            pos: ic.cs_of_words(spec.positive().iter()),
            neg: ic.cs_of_words(spec.negative().iter()),
        }
    }

    /// The bitvector geometry of the masks.
    pub fn width(&self) -> CsWidth {
        self.width
    }

    /// The positive-example mask.
    pub fn positive(&self) -> &Cs {
        &self.pos
    }

    /// The negative-example mask.
    pub fn negative(&self) -> &Cs {
        &self.neg
    }

    /// Total number of examples covered by the masks.
    pub fn num_examples(&self) -> usize {
        self.pos.count_ones() + self.neg.count_ones()
    }

    /// Returns `true` if the row accepts every positive and rejects every
    /// negative example.
    #[inline]
    pub fn is_satisfied(&self, row: &[u64]) -> bool {
        csops::satisfies(row, self.pos.blocks(), self.neg.blocks())
    }

    /// Number of examples the row misclassifies (positives missing plus
    /// negatives present). Used by REI with allowed error (paper §5.2).
    #[inline]
    pub fn misclassified(&self, row: &[u64]) -> usize {
        csops::misclassified(row, self.pos.blocks(), self.neg.blocks())
    }

    /// Returns `true` if the row misclassifies at most `allowed` examples.
    #[inline]
    pub fn is_satisfied_with_error(&self, row: &[u64], allowed: usize) -> bool {
        self.misclassified(row) <= allowed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rei_syntax::parse;

    fn setup() -> (Spec, InfixClosure, SatisfyMasks) {
        let spec = Spec::from_strs(
            ["10", "101", "100", "1010", "1011", "1000", "1001"],
            ["", "0", "1", "00", "11", "010"],
        )
        .unwrap();
        let ic = InfixClosure::of_spec(&spec);
        let masks = SatisfyMasks::new(&spec, &ic);
        (spec, ic, masks)
    }

    #[test]
    fn target_expression_satisfies() {
        let (_, ic, masks) = setup();
        let cs = ic.cs_of_regex(&parse("10(0+1)*").unwrap());
        assert!(masks.is_satisfied(cs.blocks()));
        assert_eq!(masks.misclassified(cs.blocks()), 0);
    }

    #[test]
    fn overfit_and_everything_expressions() {
        let (spec, ic, masks) = setup();
        let overfit = ic.cs_of_regex(&spec.overfit_regex());
        assert!(masks.is_satisfied(overfit.blocks()));
        let everything = ic.cs_of_regex(&parse("(0+1)*").unwrap());
        assert!(!masks.is_satisfied(everything.blocks()));
        assert_eq!(
            masks.misclassified(everything.blocks()),
            spec.num_negative()
        );
        let nothing = Cs::zero(ic.width());
        assert_eq!(masks.misclassified(nothing.blocks()), spec.num_positive());
    }

    #[test]
    fn error_tolerant_check() {
        let (_, ic, masks) = setup();
        let everything = ic.cs_of_regex(&parse("(0+1)*").unwrap());
        assert!(!masks.is_satisfied_with_error(everything.blocks(), 2));
        assert!(masks.is_satisfied_with_error(everything.blocks(), 6));
    }

    #[test]
    fn num_examples_matches_spec() {
        let (spec, _, masks) = setup();
        assert_eq!(masks.num_examples(), spec.len());
    }

    #[test]
    fn masks_agree_with_oracle_on_sampled_expressions() {
        let (spec, ic, masks) = setup();
        for expr in [
            "10",
            "1(0+1)*",
            "10(0+1)*",
            "(0+1)*0",
            "10?(0+1)*",
            "∅",
            "ε",
        ] {
            let r = parse(expr).unwrap();
            let cs = ic.cs_of_regex(&r);
            assert_eq!(
                masks.is_satisfied(cs.blocks()),
                spec.is_satisfied_by(&r),
                "disagreement on {expr}"
            );
            assert_eq!(
                masks.misclassified(cs.blocks()),
                spec.misclassified_by(&r),
                "error count disagreement on {expr}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "not in the infix closure")]
    fn mismatched_closure_is_rejected() {
        let spec_a = Spec::from_strs(["0"], ["1"]).unwrap();
        let spec_b = Spec::from_strs(["111"], ["0000"]).unwrap();
        let ic_a = InfixClosure::of_spec(&spec_a);
        let _ = SatisfyMasks::new(&spec_b, &ic_a);
    }
}
