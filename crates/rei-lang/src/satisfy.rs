//! Satisfaction masks: checking `L ⊨ (P, N)` with two bitwise operations.

use crate::{csops, Cs, CsWidth, InfixClosure, Spec};

/// The pair of bit masks used to decide whether a characteristic sequence
/// satisfies a specification.
///
/// `pos` has a 1 exactly at the closure index of every positive example,
/// `neg` at the index of every negative example. A language represented by
/// the row `cs` satisfies the specification iff `(cs & pos) == pos` and
/// `(cs & neg) == 0`. This check runs once per freshly constructed CS, so
/// it is on the hot path of the search.
///
/// # Example
///
/// ```
/// use rei_lang::{InfixClosure, SatisfyMasks, Spec};
/// use rei_syntax::parse;
///
/// let spec = Spec::from_strs(["10", "100"], ["", "01"]).unwrap();
/// let ic = InfixClosure::of_spec(&spec);
/// let masks = SatisfyMasks::new(&spec, &ic);
/// let cs = ic.cs_of_regex(&parse("10(0+1)*").unwrap());
/// assert!(masks.is_satisfied(cs.blocks()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SatisfyMasks {
    width: CsWidth,
    pos: Cs,
    neg: Cs,
}

impl SatisfyMasks {
    /// Builds the masks for `spec` relative to the infix closure `ic`.
    ///
    /// # Panics
    ///
    /// Panics if an example of `spec` is not a member of `ic` (the closure
    /// must have been computed from the same specification).
    pub fn new(spec: &Spec, ic: &InfixClosure) -> Self {
        for word in spec.iter() {
            assert!(
                ic.index_of(word).is_some(),
                "example '{word}' is not in the infix closure"
            );
        }
        SatisfyMasks {
            width: ic.width(),
            pos: ic.cs_of_words(spec.positive().iter()),
            neg: ic.cs_of_words(spec.negative().iter()),
        }
    }

    /// The bitvector geometry of the masks.
    pub fn width(&self) -> CsWidth {
        self.width
    }

    /// The positive-example mask.
    pub fn positive(&self) -> &Cs {
        &self.pos
    }

    /// The negative-example mask.
    pub fn negative(&self) -> &Cs {
        &self.neg
    }

    /// Total number of examples covered by the masks.
    pub fn num_examples(&self) -> usize {
        self.pos.count_ones() + self.neg.count_ones()
    }

    /// Returns `true` if the row accepts every positive and rejects every
    /// negative example.
    #[inline]
    pub fn is_satisfied(&self, row: &[u64]) -> bool {
        csops::satisfies(row, self.pos.blocks(), self.neg.blocks())
    }

    /// Number of examples the row misclassifies (positives missing plus
    /// negatives present). Used by REI with allowed error (paper §5.2).
    #[inline]
    pub fn misclassified(&self, row: &[u64]) -> usize {
        csops::misclassified(row, self.pos.blocks(), self.neg.blocks())
    }

    /// Returns `true` if the row misclassifies at most `allowed` examples.
    #[inline]
    pub fn is_satisfied_with_error(&self, row: &[u64], allowed: usize) -> bool {
        self.misclassified(row) <= allowed
    }

    /// Builds the single-block [`AdmissionPrefilter`] for these masks: the
    /// cheap first phase of the search's two-phase admission check.
    pub fn prefilter(&self) -> AdmissionPrefilter {
        AdmissionPrefilter::new(self)
    }
}

/// The cheap reject phase of two-phase admission: a single-block lower
/// bound on [`SatisfyMasks::misclassified`].
///
/// The full satisfaction check folds over every block of the row. Most
/// candidate rows of a cost level are *not* winners, and almost all of
/// them already miss a positive-example bit (or hit a negative-example
/// bit) inside one well-chosen block. The prefilter stores the example
/// bits of the densest block of `pos | neg` — the block whose must-have
/// and must-not-have bits reject the most rows — and counts the
/// misclassifications visible in that block alone:
///
/// ```text
/// lower_bound = popcount((pos_b & !row_b) | (neg_b & row_b))
/// ```
///
/// Since `misclassified(row) >= lower_bound`, `lower_bound > allowed`
/// proves the row cannot satisfy the specification, and the full
/// per-block fold is skipped. Rows that pass the prefilter still run the
/// exact check; the prefilter never changes which rows are admitted, only
/// how much work rejection costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionPrefilter {
    block: usize,
    pos: u64,
    neg: u64,
}

impl AdmissionPrefilter {
    /// Builds the prefilter from the satisfaction masks, picking the block
    /// with the most example bits.
    pub fn new(masks: &SatisfyMasks) -> Self {
        let pos = masks.pos.blocks();
        let neg = masks.neg.blocks();
        let block = (0..pos.len())
            .max_by_key(|&b| (pos[b] | neg[b]).count_ones())
            .unwrap_or(0);
        AdmissionPrefilter {
            block,
            pos: pos.get(block).copied().unwrap_or(0),
            neg: neg.get(block).copied().unwrap_or(0),
        }
    }

    /// The block index the prefilter inspects.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Number of example bits visible to the prefilter (its rejection
    /// power: a row can only be prefilter-rejected on these examples).
    pub fn example_bits(&self) -> u32 {
        (self.pos | self.neg).count_ones()
    }

    /// Returns `true` if the single inspected block already proves the row
    /// misclassifies more than `allowed` examples. A `true` verdict is
    /// final (the full check would fail too); `false` means "run the full
    /// check".
    #[inline]
    pub fn rejects(&self, row: &[u64], allowed: usize) -> bool {
        let b = row[self.block];
        ((self.pos & !b) | (self.neg & b)).count_ones() as usize > allowed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rei_syntax::parse;

    fn setup() -> (Spec, InfixClosure, SatisfyMasks) {
        let spec = Spec::from_strs(
            ["10", "101", "100", "1010", "1011", "1000", "1001"],
            ["", "0", "1", "00", "11", "010"],
        )
        .unwrap();
        let ic = InfixClosure::of_spec(&spec);
        let masks = SatisfyMasks::new(&spec, &ic);
        (spec, ic, masks)
    }

    #[test]
    fn target_expression_satisfies() {
        let (_, ic, masks) = setup();
        let cs = ic.cs_of_regex(&parse("10(0+1)*").unwrap());
        assert!(masks.is_satisfied(cs.blocks()));
        assert_eq!(masks.misclassified(cs.blocks()), 0);
    }

    #[test]
    fn overfit_and_everything_expressions() {
        let (spec, ic, masks) = setup();
        let overfit = ic.cs_of_regex(&spec.overfit_regex());
        assert!(masks.is_satisfied(overfit.blocks()));
        let everything = ic.cs_of_regex(&parse("(0+1)*").unwrap());
        assert!(!masks.is_satisfied(everything.blocks()));
        assert_eq!(
            masks.misclassified(everything.blocks()),
            spec.num_negative()
        );
        let nothing = Cs::zero(ic.width());
        assert_eq!(masks.misclassified(nothing.blocks()), spec.num_positive());
    }

    #[test]
    fn error_tolerant_check() {
        let (_, ic, masks) = setup();
        let everything = ic.cs_of_regex(&parse("(0+1)*").unwrap());
        assert!(!masks.is_satisfied_with_error(everything.blocks(), 2));
        assert!(masks.is_satisfied_with_error(everything.blocks(), 6));
    }

    #[test]
    fn num_examples_matches_spec() {
        let (spec, _, masks) = setup();
        assert_eq!(masks.num_examples(), spec.len());
    }

    #[test]
    fn masks_agree_with_oracle_on_sampled_expressions() {
        let (spec, ic, masks) = setup();
        for expr in [
            "10",
            "1(0+1)*",
            "10(0+1)*",
            "(0+1)*0",
            "10?(0+1)*",
            "∅",
            "ε",
        ] {
            let r = parse(expr).unwrap();
            let cs = ic.cs_of_regex(&r);
            assert_eq!(
                masks.is_satisfied(cs.blocks()),
                spec.is_satisfied_by(&r),
                "disagreement on {expr}"
            );
            assert_eq!(
                masks.misclassified(cs.blocks()),
                spec.misclassified_by(&r),
                "error count disagreement on {expr}"
            );
        }
    }

    #[test]
    fn prefilter_rejections_are_sound() {
        // On every sampled expression, a prefilter reject must imply the
        // full check fails, for every allowed-error budget.
        let (_, ic, masks) = setup();
        let prefilter = masks.prefilter();
        assert!(prefilter.example_bits() > 0);
        assert!(prefilter.block() < ic.width().blocks());
        for expr in ["10", "1(0+1)*", "10(0+1)*", "(0+1)*0", "∅", "ε", "0?"] {
            let cs = ic.cs_of_regex(&parse(expr).unwrap());
            let full = masks.misclassified(cs.blocks());
            for allowed in 0..=masks.num_examples() {
                if prefilter.rejects(cs.blocks(), allowed) {
                    assert!(full > allowed, "{expr} with allowed {allowed}");
                }
            }
        }
    }

    #[test]
    fn prefilter_rejects_the_everything_language_cheaply() {
        // `(0+1)*` contains every negative example, so the single
        // inspected block already rules it out at zero allowed error.
        let (_, ic, masks) = setup();
        let prefilter = masks.prefilter();
        let everything = ic.cs_of_regex(&parse("(0+1)*").unwrap());
        assert!(prefilter.rejects(everything.blocks(), 0));
        // And the satisfying row always passes.
        let target = ic.cs_of_regex(&parse("10(0+1)*").unwrap());
        assert!(!prefilter.rejects(target.blocks(), 0));
    }

    #[test]
    #[should_panic(expected = "not in the infix closure")]
    fn mismatched_closure_is_rejected() {
        let spec_a = Spec::from_strs(["0"], ["1"]).unwrap();
        let spec_b = Spec::from_strs(["111"], ["0000"]).unwrap();
        let ic_a = InfixClosure::of_spec(&spec_a);
        let _ = SatisfyMasks::new(&spec_b, &ic_a);
    }
}
