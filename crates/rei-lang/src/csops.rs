//! Block-level kernels on characteristic sequences.
//!
//! The language cache of the synthesiser stores characteristic sequences as
//! contiguous rows of `u64` blocks. Both the sequential (CPU) engine and
//! the data-parallel (GPU-simulated) engine express their work in terms of
//! the free functions in this module, which operate directly on block
//! slices and perform no allocation. The owned [`crate::Cs`] type is a thin
//! wrapper over the same kernels.
//!
//! The operations implement the infix-power-series semiring of
//! Definition 3.5 of the paper:
//!
//! * union is a bitwise or ([`or_into`]),
//! * the question mark adds the `ε` bit ([`question_into`]),
//! * concatenation folds over the pre-computed guide table
//!   ([`concat_into`]),
//! * the Kleene star iterates concatenation to a fixed point
//!   ([`star_into`]).

use crate::GuideTable;

/// Reads bit `i` of a block slice.
#[inline]
pub fn get_bit(blocks: &[u64], i: usize) -> bool {
    (blocks[i / 64] >> (i % 64)) & 1 == 1
}

/// Sets bit `i` of a block slice.
#[inline]
pub fn set_bit(blocks: &mut [u64], i: usize) {
    blocks[i / 64] |= 1u64 << (i % 64);
}

/// Fills a block slice with zeros.
#[inline]
pub fn clear(dst: &mut [u64]) {
    dst.fill(0);
}

/// Copies `src` into `dst`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn copy_into(dst: &mut [u64], src: &[u64]) {
    dst.copy_from_slice(src);
}

/// Returns `true` if the two rows are bitwise identical.
#[inline]
pub fn equal(a: &[u64], b: &[u64]) -> bool {
    a == b
}

/// `dst := a | b` — the union (semiring sum) of two languages.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn or_into(dst: &mut [u64], a: &[u64], b: &[u64]) {
    debug_assert_eq!(a.len(), b.len());
    for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
        *d = x | y;
    }
}

/// `dst := a` with the `ε` bit set — the question-mark operator.
#[inline]
pub fn question_into(dst: &mut [u64], a: &[u64], eps_index: usize) {
    copy_into(dst, a);
    set_bit(dst, eps_index);
}

/// Computes a single bit of a concatenation: whether word `w` of the infix
/// closure belongs to `L(a) · L(b)`.
///
/// This is the per-thread kernel body of the GPU implementation: one thread
/// is responsible for one (target CS, word) pair and folds over the guide
/// table row of that word. There is no early exit, matching the paper's
/// observation that data-dependent branching hurts GPU performance; the
/// sequential engine uses [`concat_into`], which does exit early.
#[inline]
pub fn concat_word_bit(a: &[u64], b: &[u64], guide: &GuideTable, w: usize) -> bool {
    let mut any = false;
    for &(l, r) in guide.splits(w) {
        any |= get_bit(a, l as usize) && get_bit(b, r as usize);
    }
    any
}

/// `dst := a · b` — the concatenation (semiring product) of two languages,
/// restricted to the infix closure, using the staged guide table.
///
/// # Panics
///
/// Panics if `dst` is too short for `guide.num_words()` bits.
pub fn concat_into(dst: &mut [u64], a: &[u64], b: &[u64], guide: &GuideTable) {
    clear(dst);
    for w in 0..guide.num_words() {
        // Early exit per word is fine on a CPU; the data-parallel engine
        // uses `concat_word_bit` instead.
        let hit = guide
            .splits(w)
            .iter()
            .any(|&(l, r)| get_bit(a, l as usize) && get_bit(b, r as usize));
        if hit {
            set_bit(dst, w);
        }
    }
}

/// `dst := a · b` computed **without** the staged guide table, by
/// enumerating the splits of every word on the fly.
///
/// This exists only as the baseline for the guide-table ablation benchmark
/// (`DESIGN.md` §5): it recomputes, for every target word, every split and
/// two hash look-ups into the closure, which is exactly the work the guide
/// table pre-computes once per synthesis run.
pub fn concat_into_unstaged(dst: &mut [u64], a: &[u64], b: &[u64], ic: &crate::InfixClosure) {
    clear(dst);
    for (w, word) in ic.iter() {
        let n = word.len();
        let hit = (0..=n).any(|cut| {
            let left = ic.index_of(&word.infix(0, cut));
            let right = ic.index_of(&word.infix(cut, n));
            match (left, right) {
                (Some(l), Some(r)) => get_bit(a, l) && get_bit(b, r),
                _ => false,
            }
        });
        if hit {
            set_bit(dst, w);
        }
    }
}

/// `dst := a*` — the Kleene star of a language, restricted to the infix
/// closure.
///
/// The star is computed as the limit of `t_0 = {ε}`, `t_{k+1} = t_k ∪ t_k·a`,
/// which is monotone and therefore reaches a fixed point after at most
/// `#ic` iterations (in practice after `max word length + 1` iterations).
/// `scratch` must have the same length as `dst` and is used as temporary
/// storage for the intermediate concatenations.
///
/// # Panics
///
/// Panics if `dst` and `scratch` have different lengths.
pub fn star_into(
    dst: &mut [u64],
    a: &[u64],
    guide: &GuideTable,
    eps_index: usize,
    scratch: &mut [u64],
) {
    assert_eq!(dst.len(), scratch.len(), "scratch must match dst length");
    clear(dst);
    set_bit(dst, eps_index);
    loop {
        concat_into(scratch, dst, a, guide);
        let mut changed = false;
        for (d, &s) in dst.iter_mut().zip(scratch.iter()) {
            let next = *d | s;
            if next != *d {
                changed = true;
                *d = next;
            }
        }
        if !changed {
            return;
        }
    }
}

/// Returns `true` if `row` satisfies the positive/negative masks:
/// `(row & pos) == pos` and `(row & neg) == 0`.
#[inline]
pub fn satisfies(row: &[u64], pos: &[u64], neg: &[u64]) -> bool {
    row.iter()
        .zip(pos)
        .zip(neg)
        .all(|((&r, &p), &n)| (r & p) == p && (r & n) == 0)
}

/// Number of example words misclassified by `row`: positive words missing
/// from the language plus negative words present in it.
#[inline]
pub fn misclassified(row: &[u64], pos: &[u64], neg: &[u64]) -> usize {
    row.iter()
        .zip(pos)
        .zip(neg)
        .map(|((&r, &p), &n)| ((p & !r).count_ones() + (r & n).count_ones()) as usize)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cs, InfixClosure, Spec};
    use proptest::prelude::*;
    use rei_syntax::{parse, Regex};

    fn setup(spec: &Spec) -> (InfixClosure, GuideTable) {
        let ic = InfixClosure::of_spec(spec);
        let gt = GuideTable::build(&ic);
        (ic, gt)
    }

    fn example_spec() -> Spec {
        Spec::from_strs(["1", "011", "1011", "11011"], ["", "10", "101", "0011"]).unwrap()
    }

    /// Computes the CS of a regex with the block kernels and compares it
    /// with the derivative-matcher reference.
    fn check_regex_via_kernels(spec: &Spec, expr: &str) {
        let (ic, gt) = setup(spec);
        let r = parse(expr).unwrap();
        let expected = ic.cs_of_regex(&r);
        let got = eval_kernels(&r, &ic, &gt);
        assert_eq!(got, expected, "CS mismatch for {expr}");
    }

    /// Recursively evaluates a regex to a CS using only the block kernels.
    fn eval_kernels(r: &Regex, ic: &InfixClosure, gt: &GuideTable) -> Cs {
        let width = ic.width();
        let eps = ic.eps_index().unwrap();
        match r {
            Regex::Empty => Cs::zero(width),
            Regex::Epsilon => ic.cs_of_epsilon(),
            Regex::Literal(a) => ic.cs_of_literal(*a),
            Regex::Union(l, rr) => {
                let (a, b) = (eval_kernels(l, ic, gt), eval_kernels(rr, ic, gt));
                let mut dst = Cs::zero(width);
                or_into(dst.blocks_mut(), a.blocks(), b.blocks());
                dst
            }
            Regex::Concat(l, rr) => {
                let (a, b) = (eval_kernels(l, ic, gt), eval_kernels(rr, ic, gt));
                let mut dst = Cs::zero(width);
                concat_into(dst.blocks_mut(), a.blocks(), b.blocks(), gt);
                dst
            }
            Regex::Star(inner) => {
                let a = eval_kernels(inner, ic, gt);
                let mut dst = Cs::zero(width);
                let mut scratch = vec![0u64; width.blocks()];
                star_into(dst.blocks_mut(), a.blocks(), gt, eps, &mut scratch);
                dst
            }
            Regex::Question(inner) => {
                let a = eval_kernels(inner, ic, gt);
                let mut dst = Cs::zero(width);
                question_into(dst.blocks_mut(), a.blocks(), eps);
                dst
            }
        }
    }

    #[test]
    fn union_is_bitwise_or() {
        check_regex_via_kernels(&example_spec(), "0+1");
        check_regex_via_kernels(&example_spec(), "10+011+ε");
    }

    #[test]
    fn concat_matches_reference_semantics() {
        check_regex_via_kernels(&example_spec(), "01");
        check_regex_via_kernels(&example_spec(), "1(0+1)");
        check_regex_via_kernels(&example_spec(), "(0+1)(0+1)(0+1)");
        check_regex_via_kernels(&example_spec(), "ε(0+1)");
        check_regex_via_kernels(&example_spec(), "∅(0+1)");
    }

    #[test]
    fn star_matches_reference_semantics() {
        check_regex_via_kernels(&example_spec(), "(0+1)*");
        check_regex_via_kernels(&example_spec(), "(0?1)*");
        check_regex_via_kernels(&example_spec(), "(0?1)*1");
        check_regex_via_kernels(&example_spec(), "∅*");
        check_regex_via_kernels(&example_spec(), "(11)*");
    }

    #[test]
    fn question_matches_reference_semantics() {
        check_regex_via_kernels(&example_spec(), "0?");
        check_regex_via_kernels(&example_spec(), "(10)?1?");
    }

    #[test]
    fn unstaged_concat_agrees_with_staged_concat() {
        let (ic, gt) = setup(&example_spec());
        for (ea, eb) in [
            ("0", "1"),
            ("1(0+1)?", "(0+1)1"),
            ("(0?1)*", "1"),
            ("∅", "01"),
        ] {
            let a = ic.cs_of_regex(&parse(ea).unwrap());
            let b = ic.cs_of_regex(&parse(eb).unwrap());
            let mut staged = Cs::zero(ic.width());
            let mut unstaged = Cs::zero(ic.width());
            concat_into(staged.blocks_mut(), a.blocks(), b.blocks(), &gt);
            concat_into_unstaged(unstaged.blocks_mut(), a.blocks(), b.blocks(), &ic);
            assert_eq!(staged, unstaged, "{ea} · {eb}");
        }
    }

    #[test]
    fn concat_word_bit_agrees_with_concat_into() {
        let (ic, gt) = setup(&example_spec());
        let a = ic.cs_of_regex(&parse("1(0+1)?").unwrap());
        let b = ic.cs_of_regex(&parse("(0+1)1").unwrap());
        let mut dst = Cs::zero(ic.width());
        concat_into(dst.blocks_mut(), a.blocks(), b.blocks(), &gt);
        for w in 0..ic.len() {
            assert_eq!(dst.get(w), concat_word_bit(a.blocks(), b.blocks(), &gt, w));
        }
    }

    #[test]
    fn satisfies_and_misclassified() {
        let spec = Spec::from_strs(["10", "100"], ["", "01"]).unwrap();
        let ic = InfixClosure::of_spec(&spec);
        let pos = ic.cs_of_words(spec.positive().iter());
        let neg = ic.cs_of_words(spec.negative().iter());
        let good = ic.cs_of_regex(&parse("10(0+1)*").unwrap());
        let bad = ic.cs_of_regex(&parse("(0+1)*").unwrap());
        assert!(satisfies(good.blocks(), pos.blocks(), neg.blocks()));
        assert!(!satisfies(bad.blocks(), pos.blocks(), neg.blocks()));
        assert_eq!(misclassified(good.blocks(), pos.blocks(), neg.blocks()), 0);
        assert_eq!(misclassified(bad.blocks(), pos.blocks(), neg.blocks()), 2);
        let empty = Cs::zero(ic.width());
        assert_eq!(misclassified(empty.blocks(), pos.blocks(), neg.blocks()), 2);
    }

    #[test]
    fn star_of_epsilon_and_empty() {
        let (ic, gt) = setup(&example_spec());
        let width = ic.width();
        let eps_idx = ic.eps_index().unwrap();
        let mut scratch = vec![0u64; width.blocks()];
        let mut dst = Cs::zero(width);
        // ∅* = {ε}
        star_into(
            dst.blocks_mut(),
            Cs::zero(width).blocks(),
            &gt,
            eps_idx,
            &mut scratch,
        );
        assert_eq!(dst, ic.cs_of_epsilon());
    }

    proptest! {
        /// The kernel evaluation of random small regexes agrees with the
        /// derivative matcher on every word of the infix closure.
        #[test]
        fn kernels_agree_with_matcher(expr in "[01+*?()]{1,10}") {
            if let Ok(r) = parse(&expr) {
                let spec = example_spec();
                let (ic, gt) = setup(&spec);
                let expected = ic.cs_of_regex(&r);
                let got = eval_kernels(&r, &ic, &gt);
                prop_assert_eq!(got, expected, "expr {}", r);
            }
        }

        /// Kleene-star laws on characteristic sequences: `a ⊆ a*`,
        /// `ε ∈ a*`, idempotence `(a*)* = a*`, and `a*·a* = a*`.
        #[test]
        fn star_laws(expr in "[01+?]{1,5}") {
            let r = match parse(&expr) { Ok(r) => r, Err(_) => return Ok(()) };
            let spec = example_spec();
            let (ic, gt) = setup(&spec);
            let width = ic.width();
            let eps = ic.eps_index().unwrap();
            let a = ic.cs_of_regex(&r);
            let mut scratch = vec![0u64; width.blocks()];
            let mut star = Cs::zero(width);
            star_into(star.blocks_mut(), a.blocks(), &gt, eps, &mut scratch);
            // a ⊆ a* and ε ∈ a*.
            prop_assert!(a.is_subset_of(&star));
            prop_assert!(star.get(eps));
            // (a*)* = a*.
            let mut star_star = Cs::zero(width);
            star_into(star_star.blocks_mut(), star.blocks(), &gt, eps, &mut scratch);
            prop_assert_eq!(&star_star, &star);
            // a*·a* = a*.
            let mut squared = Cs::zero(width);
            concat_into(squared.blocks_mut(), star.blocks(), star.blocks(), &gt);
            prop_assert_eq!(&squared, &star);
        }

        /// Concatenation is associative on characteristic sequences.
        #[test]
        fn concat_is_associative(e1 in "[01+?]{1,4}", e2 in "[01+?]{1,4}", e3 in "[01+?]{1,4}") {
            let (r1, r2, r3) = match (parse(&e1), parse(&e2), parse(&e3)) {
                (Ok(a), Ok(b), Ok(c)) => (a, b, c),
                _ => return Ok(()),
            };
            let spec = example_spec();
            let (ic, gt) = setup(&spec);
            let width = ic.width();
            let (a, b, c) = (ic.cs_of_regex(&r1), ic.cs_of_regex(&r2), ic.cs_of_regex(&r3));
            let mut ab = Cs::zero(width);
            let mut bc = Cs::zero(width);
            let mut ab_c = Cs::zero(width);
            let mut a_bc = Cs::zero(width);
            concat_into(ab.blocks_mut(), a.blocks(), b.blocks(), &gt);
            concat_into(bc.blocks_mut(), b.blocks(), c.blocks(), &gt);
            concat_into(ab_c.blocks_mut(), ab.blocks(), c.blocks(), &gt);
            concat_into(a_bc.blocks_mut(), a.blocks(), bc.blocks(), &gt);
            prop_assert_eq!(ab_c, a_bc);
        }

        /// Concatenation distributes over union (semiring law), observed on
        /// characteristic sequences.
        #[test]
        fn concat_distributes_over_union(e1 in "[01+?]{1,4}", e2 in "[01+?]{1,4}", e3 in "[01+?]{1,4}") {
            let (r1, r2, r3) = match (parse(&e1), parse(&e2), parse(&e3)) {
                (Ok(a), Ok(b), Ok(c)) => (a, b, c),
                _ => return Ok(()),
            };
            let spec = example_spec();
            let (ic, gt) = setup(&spec);
            let width = ic.width();
            let (a, b, c) = (ic.cs_of_regex(&r1), ic.cs_of_regex(&r2), ic.cs_of_regex(&r3));
            // a·(b+c)
            let mut bc = Cs::zero(width);
            or_into(bc.blocks_mut(), b.blocks(), c.blocks());
            let mut lhs = Cs::zero(width);
            concat_into(lhs.blocks_mut(), a.blocks(), bc.blocks(), &gt);
            // a·b + a·c
            let mut ab = Cs::zero(width);
            let mut ac = Cs::zero(width);
            concat_into(ab.blocks_mut(), a.blocks(), b.blocks(), &gt);
            concat_into(ac.blocks_mut(), a.blocks(), c.blocks(), &gt);
            let mut rhs = Cs::zero(width);
            or_into(rhs.blocks_mut(), ab.blocks(), ac.blocks());
            prop_assert_eq!(lhs, rhs);
        }
    }
}
