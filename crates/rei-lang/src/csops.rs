//! Block-level kernels on characteristic sequences.
//!
//! The language cache of the synthesiser stores characteristic sequences as
//! contiguous rows of `u64` blocks. Both the sequential (CPU) engine and
//! the data-parallel (GPU-simulated) engine express their work in terms of
//! the free functions in this module, which operate directly on block
//! slices and perform no allocation. The owned [`crate::Cs`] type is a thin
//! wrapper over the same kernels.
//!
//! The operations implement the infix-power-series semiring of
//! Definition 3.5 of the paper:
//!
//! * union is a bitwise or ([`or_into`]),
//! * the question mark adds the `ε` bit ([`question_into`]),
//! * concatenation walks the set bits of its left operand and ORs
//!   whole blocks of the right operand through the transposed
//!   [`GuideMasks`] table ([`concat_into`]); the original per-word gather
//!   over the [`GuideTable`] survives as [`concat_into_gather`] and as
//!   the branch-free GPU kernel body [`concat_word_bit`],
//! * the Kleene star reaches its fixed point by *squaring*
//!   (`t := t · t`, [`star_into`]), needing only O(log max word length)
//!   concatenations; the original linear iteration survives as
//!   [`star_into_linear`].
//!
//! # Mask-based concatenation
//!
//! [`concat_into`] is bit-parallel on both sides: it visits only the set
//! bits `l` of the left operand (via `trailing_zeros`), and for each `l`
//! applies the pre-staged [`MaskEntry`] row — each entry moves up to 64
//! right-operand bits into the result with one mask, one shift and one
//! or. The per-split work of the gather kernels (two bit tests per split
//! per target word, whether or not the operands are sparse) disappears
//! entirely; see the [`GuideMasks`] docs for the entry layout and the
//! memory trade-off against the pair table.
//!
//! [`GuideMasks`]: crate::GuideMasks
//!
//! [`MaskEntry`]: crate::MaskEntry

use crate::{GuideMasks, GuideTable};

/// Reads bit `i` of a block slice.
#[inline]
pub fn get_bit(blocks: &[u64], i: usize) -> bool {
    (blocks[i / 64] >> (i % 64)) & 1 == 1
}

/// Sets bit `i` of a block slice.
#[inline]
pub fn set_bit(blocks: &mut [u64], i: usize) {
    blocks[i / 64] |= 1u64 << (i % 64);
}

/// Fills a block slice with zeros.
#[inline]
pub fn clear(dst: &mut [u64]) {
    dst.fill(0);
}

/// Copies `src` into `dst`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn copy_into(dst: &mut [u64], src: &[u64]) {
    dst.copy_from_slice(src);
}

/// Returns `true` if the two rows are bitwise identical.
#[inline]
pub fn equal(a: &[u64], b: &[u64]) -> bool {
    a == b
}

/// `dst := a | b` — the union (semiring sum) of two languages.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn or_into(dst: &mut [u64], a: &[u64], b: &[u64]) {
    debug_assert_eq!(a.len(), b.len());
    for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
        *d = x | y;
    }
}

/// `dst := a` with the `ε` bit set — the question-mark operator.
#[inline]
pub fn question_into(dst: &mut [u64], a: &[u64], eps_index: usize) {
    copy_into(dst, a);
    set_bit(dst, eps_index);
}

/// Computes a single bit of a concatenation: whether word `w` of the infix
/// closure belongs to `L(a) · L(b)`.
///
/// This is the per-thread kernel body of the GPU implementation: one thread
/// is responsible for one (target CS, word) pair and folds over the guide
/// table row of that word. There is no early exit, matching the paper's
/// observation that data-dependent branching hurts GPU performance; the
/// sequential engine uses [`concat_into`], which does exit early.
#[inline]
pub fn concat_word_bit(a: &[u64], b: &[u64], guide: &GuideTable, w: usize) -> bool {
    let mut any = false;
    for &(l, r) in guide.splits(w) {
        any |= get_bit(a, l as usize) && get_bit(b, r as usize);
    }
    any
}

/// `dst := a · b` — the concatenation (semiring product) of two languages,
/// restricted to the infix closure, using the transposed mask table.
///
/// For every set bit `l` of `a` the pre-staged mask row is applied: each
/// entry selects the participating right-operand bits of one block with a
/// mask, shifts them onto their target positions and ORs them into the
/// result. Work is proportional to `popcount(a) ×` (entries per row)
/// instead of `num_words ×` (splits per word).
///
/// Dispatches to the SIMD kernel tier ([`crate::simd`]) when the runtime
/// probe found one and the mask rows are long enough to fill lanes;
/// [`concat_into_scalar`] is the portable path it is always bit-for-bit
/// equal to.
///
/// # Panics
///
/// Panics if `dst` or `b` is too short for the bit positions the mask
/// table references.
pub fn concat_into(dst: &mut [u64], a: &[u64], b: &[u64], masks: &GuideMasks) {
    concat_into_simd(dst, a, b, masks);
}

/// The explicitly accelerated concatenation entry point: the SIMD quad
/// kernel when the probe allows it, [`concat_into_scalar`] otherwise.
/// Public (next to the scalar variant) so benches and parity tests can
/// pin each tier; [`concat_into`] is this function.
pub fn concat_into_simd(dst: &mut [u64], a: &[u64], b: &[u64], masks: &GuideMasks) {
    if crate::simd::try_concat_into(dst, a, b, masks) {
        return;
    }
    concat_into_scalar(dst, a, b, masks);
}

/// The portable scalar concatenation kernel — the semantics every
/// accelerated path must match.
///
/// # Panics
///
/// Panics if `dst` or `b` is too short for the bit positions the mask
/// table references.
pub fn concat_into_scalar(dst: &mut [u64], a: &[u64], b: &[u64], masks: &GuideMasks) {
    clear(dst);
    let num_left = masks.num_left();
    for (block, &word) in a.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let l = block * 64 + bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if l >= num_left {
                // Padding bits above the closure are always zero in rows
                // produced by these kernels; stop defensively anyway.
                break;
            }
            for entry in masks.row(l) {
                entry.apply(b, dst);
            }
        }
    }
}

/// `dst := a · b` computed with the per-word split gather over the pair
/// table — the seed's sequential kernel, kept as the ablation baseline
/// for [`concat_into`] (see `crates/bench/benches/micro_ops.rs`).
///
/// # Panics
///
/// Panics if `dst` is too short for `guide.num_words()` bits.
pub fn concat_into_gather(dst: &mut [u64], a: &[u64], b: &[u64], guide: &GuideTable) {
    clear(dst);
    for w in 0..guide.num_words() {
        // Early exit per word is fine on a CPU; the data-parallel engine
        // uses `concat_word_bit` instead.
        let hit = guide
            .splits(w)
            .iter()
            .any(|&(l, r)| get_bit(a, l as usize) && get_bit(b, r as usize));
        if hit {
            set_bit(dst, w);
        }
    }
}

/// `dst := a · b` computed **without** the staged guide table, by
/// enumerating the splits of every word on the fly.
///
/// This exists only as the baseline for the guide-table ablation benchmark
/// (`crates/bench/benches/ablation.rs`): it recomputes, for every target
/// word, every split and
/// two hash look-ups into the closure, which is exactly the work the guide
/// table pre-computes once per synthesis run.
pub fn concat_into_unstaged(dst: &mut [u64], a: &[u64], b: &[u64], ic: &crate::InfixClosure) {
    clear(dst);
    for (w, word) in ic.iter() {
        let n = word.len();
        let hit = (0..=n).any(|cut| {
            let left = ic.index_of(&word.infix(0, cut));
            let right = ic.index_of(&word.infix(cut, n));
            match (left, right) {
                (Some(l), Some(r)) => get_bit(a, l) && get_bit(b, r),
                _ => false,
            }
        });
        if hit {
            set_bit(dst, w);
        }
    }
}

/// `dst := a*` — the Kleene star of a language, restricted to the infix
/// closure, computed by **squaring**.
///
/// Starting from `t_0 = a ∪ {ε}`, the iteration `t_{k+1} = t_k · t_k`
/// doubles the number of factors covered each round, so the fixed point
/// `a*` (restricted to the closure) is reached after
/// O(log max word length) mask-based concatenations instead of the
/// O(max word length) rounds of the linear iteration
/// ([`star_into_linear`]). The iteration is monotone (`ε ∈ t_k` implies
/// `t_k ⊆ t_k · t_k`), so plain equality detects the fixed point.
/// `scratch` must have the same length as `dst` and holds the
/// intermediate squares.
///
/// Dispatches like [`concat_into`]: the squaring rounds run on whichever
/// kernel tier the runtime probe selected ([`star_into_scalar`] /
/// [`star_into_simd`] pin a tier explicitly).
///
/// # Panics
///
/// Panics if `dst` and `scratch` have different lengths.
pub fn star_into(
    dst: &mut [u64],
    a: &[u64],
    masks: &GuideMasks,
    eps_index: usize,
    scratch: &mut [u64],
) {
    star_into_simd(dst, a, masks, eps_index, scratch);
}

/// [`star_into`] with every squaring round pinned to the accelerated
/// concatenation ([`concat_into_simd`], which itself falls back to
/// scalar when no tier is available).
///
/// # Panics
///
/// Panics if `dst` and `scratch` have different lengths.
pub fn star_into_simd(
    dst: &mut [u64],
    a: &[u64],
    masks: &GuideMasks,
    eps_index: usize,
    scratch: &mut [u64],
) {
    assert_eq!(dst.len(), scratch.len(), "scratch must match dst length");
    copy_into(dst, a);
    set_bit(dst, eps_index);
    loop {
        concat_into_simd(scratch, dst, dst, masks);
        if equal(scratch, dst) {
            return;
        }
        copy_into(dst, scratch);
    }
}

/// [`star_into`] with every squaring round pinned to the scalar
/// concatenation kernel — the reference the accelerated star must match.
///
/// # Panics
///
/// Panics if `dst` and `scratch` have different lengths.
pub fn star_into_scalar(
    dst: &mut [u64],
    a: &[u64],
    masks: &GuideMasks,
    eps_index: usize,
    scratch: &mut [u64],
) {
    assert_eq!(dst.len(), scratch.len(), "scratch must match dst length");
    copy_into(dst, a);
    set_bit(dst, eps_index);
    loop {
        concat_into_scalar(scratch, dst, dst, masks);
        if equal(scratch, dst) {
            return;
        }
        copy_into(dst, scratch);
    }
}

/// `dst := a*` computed by the seed's linear iteration
/// `t_0 = {ε}`, `t_{k+1} = t_k ∪ t_k · a` over the pair table.
///
/// Monotone, reaching the fixed point after at most
/// `max word length + 1` rounds. Kept as the reference and ablation
/// baseline for the squaring kernel ([`star_into`]); the property tests
/// assert both compute identical sequences.
///
/// # Panics
///
/// Panics if `dst` and `scratch` have different lengths.
pub fn star_into_linear(
    dst: &mut [u64],
    a: &[u64],
    guide: &GuideTable,
    eps_index: usize,
    scratch: &mut [u64],
) {
    assert_eq!(dst.len(), scratch.len(), "scratch must match dst length");
    clear(dst);
    set_bit(dst, eps_index);
    loop {
        concat_into_gather(scratch, dst, a, guide);
        let mut changed = false;
        for (d, &s) in dst.iter_mut().zip(scratch.iter()) {
            let next = *d | s;
            if next != *d {
                changed = true;
                *d = next;
            }
        }
        if !changed {
            return;
        }
    }
}

/// Returns `true` if `row` satisfies the positive/negative masks:
/// `(row & pos) == pos` and `(row & neg) == 0`.
///
/// Dispatches the fold to the SIMD tier on wide equal-length rows;
/// [`satisfies_scalar`] is the reference it always agrees with.
#[inline]
pub fn satisfies(row: &[u64], pos: &[u64], neg: &[u64]) -> bool {
    satisfies_simd(row, pos, neg)
}

/// The explicitly accelerated satisfaction fold (falls back to
/// [`satisfies_scalar`] when no lane path applies).
#[inline]
pub fn satisfies_simd(row: &[u64], pos: &[u64], neg: &[u64]) -> bool {
    match crate::simd::try_violations(row, pos, neg) {
        Some(any_violation) => !any_violation,
        None => satisfies_scalar(row, pos, neg),
    }
}

/// The portable scalar satisfaction fold.
#[inline]
pub fn satisfies_scalar(row: &[u64], pos: &[u64], neg: &[u64]) -> bool {
    row.iter()
        .zip(pos)
        .zip(neg)
        .all(|((&r, &p), &n)| (r & p) == p && (r & n) == 0)
}

/// Number of example words misclassified by `row`: positive words missing
/// from the language plus negative words present in it.
///
/// Dispatches the fold to the SIMD tier on wide equal-length rows;
/// [`misclassified_scalar`] is the reference it always agrees with.
#[inline]
pub fn misclassified(row: &[u64], pos: &[u64], neg: &[u64]) -> usize {
    misclassified_simd(row, pos, neg)
}

/// The explicitly accelerated misclassification count (falls back to
/// [`misclassified_scalar`] when no lane path applies).
#[inline]
pub fn misclassified_simd(row: &[u64], pos: &[u64], neg: &[u64]) -> usize {
    match crate::simd::try_misclassified(row, pos, neg) {
        Some(count) => count,
        None => misclassified_scalar(row, pos, neg),
    }
}

/// The portable scalar misclassification count.
#[inline]
pub fn misclassified_scalar(row: &[u64], pos: &[u64], neg: &[u64]) -> usize {
    row.iter()
        .zip(pos)
        .zip(neg)
        .map(|((&r, &p), &n)| ((p & !r).count_ones() + (r & n).count_ones()) as usize)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cs, InfixClosure, Spec, Word};
    use proptest::prelude::*;
    use rei_syntax::{parse, Regex};

    fn setup(spec: &Spec) -> (InfixClosure, GuideTable, GuideMasks) {
        let ic = InfixClosure::of_spec(spec);
        let gt = GuideTable::build(&ic);
        let gm = GuideMasks::build(&ic);
        (ic, gt, gm)
    }

    fn example_spec() -> Spec {
        Spec::from_strs(["1", "011", "1011", "11011"], ["", "10", "101", "0011"]).unwrap()
    }

    /// Computes the CS of a regex with the block kernels and compares it
    /// with the derivative-matcher reference.
    fn check_regex_via_kernels(spec: &Spec, expr: &str) {
        let (ic, _, gm) = setup(spec);
        let r = parse(expr).unwrap();
        let expected = ic.cs_of_regex(&r);
        let got = eval_kernels(&r, &ic, &gm);
        assert_eq!(got, expected, "CS mismatch for {expr}");
    }

    /// Recursively evaluates a regex to a CS using only the block kernels.
    fn eval_kernels(r: &Regex, ic: &InfixClosure, gm: &GuideMasks) -> Cs {
        let width = ic.width();
        let eps = ic.eps_index().unwrap();
        match r {
            Regex::Empty => Cs::zero(width),
            Regex::Epsilon => ic.cs_of_epsilon(),
            Regex::Literal(a) => ic.cs_of_literal(*a),
            Regex::Union(l, rr) => {
                let (a, b) = (eval_kernels(l, ic, gm), eval_kernels(rr, ic, gm));
                let mut dst = Cs::zero(width);
                or_into(dst.blocks_mut(), a.blocks(), b.blocks());
                dst
            }
            Regex::Concat(l, rr) => {
                let (a, b) = (eval_kernels(l, ic, gm), eval_kernels(rr, ic, gm));
                let mut dst = Cs::zero(width);
                concat_into(dst.blocks_mut(), a.blocks(), b.blocks(), gm);
                dst
            }
            Regex::Star(inner) => {
                let a = eval_kernels(inner, ic, gm);
                let mut dst = Cs::zero(width);
                let mut scratch = vec![0u64; width.blocks()];
                star_into(dst.blocks_mut(), a.blocks(), gm, eps, &mut scratch);
                dst
            }
            Regex::Question(inner) => {
                let a = eval_kernels(inner, ic, gm);
                let mut dst = Cs::zero(width);
                question_into(dst.blocks_mut(), a.blocks(), eps);
                dst
            }
        }
    }

    #[test]
    fn union_is_bitwise_or() {
        check_regex_via_kernels(&example_spec(), "0+1");
        check_regex_via_kernels(&example_spec(), "10+011+ε");
    }

    #[test]
    fn concat_matches_reference_semantics() {
        check_regex_via_kernels(&example_spec(), "01");
        check_regex_via_kernels(&example_spec(), "1(0+1)");
        check_regex_via_kernels(&example_spec(), "(0+1)(0+1)(0+1)");
        check_regex_via_kernels(&example_spec(), "ε(0+1)");
        check_regex_via_kernels(&example_spec(), "∅(0+1)");
    }

    #[test]
    fn star_matches_reference_semantics() {
        check_regex_via_kernels(&example_spec(), "(0+1)*");
        check_regex_via_kernels(&example_spec(), "(0?1)*");
        check_regex_via_kernels(&example_spec(), "(0?1)*1");
        check_regex_via_kernels(&example_spec(), "∅*");
        check_regex_via_kernels(&example_spec(), "(11)*");
    }

    #[test]
    fn question_matches_reference_semantics() {
        check_regex_via_kernels(&example_spec(), "0?");
        check_regex_via_kernels(&example_spec(), "(10)?1?");
    }

    #[test]
    fn all_concat_implementations_agree() {
        let (ic, gt, gm) = setup(&example_spec());
        for (ea, eb) in [
            ("0", "1"),
            ("1(0+1)?", "(0+1)1"),
            ("(0?1)*", "1"),
            ("∅", "01"),
        ] {
            let a = ic.cs_of_regex(&parse(ea).unwrap());
            let b = ic.cs_of_regex(&parse(eb).unwrap());
            let mut masked = Cs::zero(ic.width());
            let mut gathered = Cs::zero(ic.width());
            let mut unstaged = Cs::zero(ic.width());
            concat_into(masked.blocks_mut(), a.blocks(), b.blocks(), &gm);
            concat_into_gather(gathered.blocks_mut(), a.blocks(), b.blocks(), &gt);
            concat_into_unstaged(unstaged.blocks_mut(), a.blocks(), b.blocks(), &ic);
            assert_eq!(masked, gathered, "{ea} · {eb}");
            assert_eq!(masked, unstaged, "{ea} · {eb}");
        }
    }

    #[test]
    fn concat_word_bit_agrees_with_concat_into() {
        let (ic, gt, gm) = setup(&example_spec());
        let a = ic.cs_of_regex(&parse("1(0+1)?").unwrap());
        let b = ic.cs_of_regex(&parse("(0+1)1").unwrap());
        let mut dst = Cs::zero(ic.width());
        concat_into(dst.blocks_mut(), a.blocks(), b.blocks(), &gm);
        for w in 0..ic.len() {
            assert_eq!(dst.get(w), concat_word_bit(a.blocks(), b.blocks(), &gt, w));
        }
    }

    #[test]
    fn satisfies_and_misclassified() {
        let spec = Spec::from_strs(["10", "100"], ["", "01"]).unwrap();
        let ic = InfixClosure::of_spec(&spec);
        let pos = ic.cs_of_words(spec.positive().iter());
        let neg = ic.cs_of_words(spec.negative().iter());
        let good = ic.cs_of_regex(&parse("10(0+1)*").unwrap());
        let bad = ic.cs_of_regex(&parse("(0+1)*").unwrap());
        assert!(satisfies(good.blocks(), pos.blocks(), neg.blocks()));
        assert!(!satisfies(bad.blocks(), pos.blocks(), neg.blocks()));
        assert_eq!(misclassified(good.blocks(), pos.blocks(), neg.blocks()), 0);
        assert_eq!(misclassified(bad.blocks(), pos.blocks(), neg.blocks()), 2);
        let empty = Cs::zero(ic.width());
        assert_eq!(misclassified(empty.blocks(), pos.blocks(), neg.blocks()), 2);
    }

    #[test]
    fn star_of_epsilon_and_empty() {
        let (ic, gt, gm) = setup(&example_spec());
        let width = ic.width();
        let eps_idx = ic.eps_index().unwrap();
        let mut scratch = vec![0u64; width.blocks()];
        let mut dst = Cs::zero(width);
        // ∅* = {ε}
        star_into(
            dst.blocks_mut(),
            Cs::zero(width).blocks(),
            &gm,
            eps_idx,
            &mut scratch,
        );
        assert_eq!(dst, ic.cs_of_epsilon());
        let mut linear = Cs::zero(width);
        star_into_linear(
            linear.blocks_mut(),
            Cs::zero(width).blocks(),
            &gt,
            eps_idx,
            &mut scratch,
        );
        assert_eq!(linear, dst);
    }

    /// All binary words of length ≤ `max_len` — an infix-closed set whose
    /// rows span `2^(max_len+1)/64` blocks, wide enough to engage every
    /// lane kernel (8 blocks at `max_len = 8`).
    fn wide_closure(max_len: u32) -> InfixClosure {
        let words = (0..=max_len).flat_map(|len| {
            (0..(1u32 << len)).map(move |bits| {
                Word::new((0..len).map(|i| if bits >> i & 1 == 1 { '1' } else { '0' }))
            })
        });
        InfixClosure::of_words(words)
    }

    /// Asserts every kernel's accelerated entry point agrees with its
    /// scalar reference on the given operands.
    fn assert_simd_parity(ic: &InfixClosure, gm: &GuideMasks, a: &Cs, b: &Cs) {
        let width = ic.width();
        let eps = ic.eps_index().unwrap();
        let mut scalar = Cs::zero(width);
        let mut simd = Cs::zero(width);
        concat_into_scalar(scalar.blocks_mut(), a.blocks(), b.blocks(), gm);
        concat_into_simd(simd.blocks_mut(), a.blocks(), b.blocks(), gm);
        assert_eq!(scalar, simd, "concat tier mismatch");
        let mut scratch = vec![0u64; width.blocks()];
        star_into_scalar(scalar.blocks_mut(), a.blocks(), gm, eps, &mut scratch);
        star_into_simd(simd.blocks_mut(), a.blocks(), gm, eps, &mut scratch);
        assert_eq!(scalar, simd, "star tier mismatch");
        for (row, pos, neg) in [(a, b, &scalar), (b, a, &simd), (&scalar, a, b)] {
            assert_eq!(
                satisfies_scalar(row.blocks(), pos.blocks(), neg.blocks()),
                satisfies_simd(row.blocks(), pos.blocks(), neg.blocks()),
                "satisfy fold tier mismatch"
            );
            assert_eq!(
                misclassified_scalar(row.blocks(), pos.blocks(), neg.blocks()),
                misclassified_simd(row.blocks(), pos.blocks(), neg.blocks()),
                "misclassified fold tier mismatch"
            );
        }
    }

    #[test]
    fn simd_tier_matches_scalar_on_wide_closures() {
        // 8 blocks per row: the AVX2 fold quads and the concat quad rows
        // genuinely engage here (on hosts whose probe finds a tier; on
        // scalar hosts the accelerated entry points fall back and the
        // assertions hold trivially — the force-scalar env knob produces
        // exactly that configuration).
        let ic = wide_closure(8);
        assert!(ic.width().blocks() >= 8);
        let gm = GuideMasks::build(&ic);
        for (ea, eb) in [
            ("(0+1)*", "(0?1)*"),
            ("0(0+1)*", "1"),
            ("(01)*", "(10)*0?"),
            ("∅", "(0+1)*"),
            ("ε", "11(0+1)*"),
        ] {
            let a = ic.cs_of_regex(&parse(ea).unwrap());
            let b = ic.cs_of_regex(&parse(eb).unwrap());
            assert_simd_parity(&ic, &gm, &a, &b);
        }
    }

    proptest! {
        /// SIMD ≡ scalar for concat, star and the satisfy folds on random
        /// closures and operands — covering narrow rows (scalar fallback
        /// inside the accelerated entry points) and multi-block rows
        /// (lanes engaged) alike.
        #[test]
        fn simd_tier_matches_scalar_on_random_closures(
            words in proptest::collection::vec("[01]{0,8}", 1..24),
            ea in "[01+*?]{1,6}",
            eb in "[01+*?]{1,6}",
        ) {
            let (ra, rb) = match (parse(&ea), parse(&eb)) {
                (Ok(a), Ok(b)) => (a, b),
                _ => return Ok(()),
            };
            let ic = InfixClosure::of_words(words.iter().map(|s| Word::from(s.as_str())));
            if ic.is_empty() { return Ok(()); }
            let gm = GuideMasks::build(&ic);
            let a = ic.cs_of_regex(&ra);
            let b = ic.cs_of_regex(&rb);
            assert_simd_parity(&ic, &gm, &a, &b);
        }
    }

    proptest! {
        /// The kernel evaluation of random small regexes agrees with the
        /// derivative matcher on every word of the infix closure.
        #[test]
        fn kernels_agree_with_matcher(expr in "[01+*?()]{1,10}") {
            if let Ok(r) = parse(&expr) {
                let spec = example_spec();
                let (ic, _, gm) = setup(&spec);
                let expected = ic.cs_of_regex(&r);
                let got = eval_kernels(&r, &ic, &gm);
                prop_assert_eq!(got, expected, "expr {}", r);
            }
        }

        /// Kleene-star laws on characteristic sequences: `a ⊆ a*`,
        /// `ε ∈ a*`, idempotence `(a*)* = a*`, and `a*·a* = a*`.
        #[test]
        fn star_laws(expr in "[01+?]{1,5}") {
            let r = match parse(&expr) { Ok(r) => r, Err(_) => return Ok(()) };
            let spec = example_spec();
            let (ic, _, gm) = setup(&spec);
            let width = ic.width();
            let eps = ic.eps_index().unwrap();
            let a = ic.cs_of_regex(&r);
            let mut scratch = vec![0u64; width.blocks()];
            let mut star = Cs::zero(width);
            star_into(star.blocks_mut(), a.blocks(), &gm, eps, &mut scratch);
            // a ⊆ a* and ε ∈ a*.
            prop_assert!(a.is_subset_of(&star));
            prop_assert!(star.get(eps));
            // (a*)* = a*.
            let mut star_star = Cs::zero(width);
            star_into(star_star.blocks_mut(), star.blocks(), &gm, eps, &mut scratch);
            prop_assert_eq!(&star_star, &star);
            // a*·a* = a*.
            let mut squared = Cs::zero(width);
            concat_into(squared.blocks_mut(), star.blocks(), star.blocks(), &gm);
            prop_assert_eq!(&squared, &star);
        }

        /// The three concatenation implementations — mask-based
        /// (`concat_into`), split-gather (`concat_into_gather`) and
        /// unstaged (`concat_into_unstaged`) — agree on random closures
        /// and random operand rows.
        #[test]
        fn concat_implementations_agree_on_random_closures(
            words in proptest::collection::vec("[01]{0,6}", 1..5),
            ea in "[01+*?]{1,6}",
            eb in "[01+*?]{1,6}",
        ) {
            let (ra, rb) = match (parse(&ea), parse(&eb)) {
                (Ok(a), Ok(b)) => (a, b),
                _ => return Ok(()),
            };
            let ic = InfixClosure::of_words(words.iter().map(|s| Word::from(s.as_str())));
            let gt = GuideTable::build(&ic);
            let gm = GuideMasks::build(&ic);
            let a = ic.cs_of_regex(&ra);
            let b = ic.cs_of_regex(&rb);
            let mut masked = Cs::zero(ic.width());
            let mut gathered = Cs::zero(ic.width());
            let mut unstaged = Cs::zero(ic.width());
            concat_into(masked.blocks_mut(), a.blocks(), b.blocks(), &gm);
            concat_into_gather(gathered.blocks_mut(), a.blocks(), b.blocks(), &gt);
            concat_into_unstaged(unstaged.blocks_mut(), a.blocks(), b.blocks(), &ic);
            prop_assert_eq!(&masked, &gathered, "{} · {}", ra, rb);
            prop_assert_eq!(&masked, &unstaged, "{} · {}", ra, rb);
        }

        /// Star by squaring equals the linear fixed-point iteration on
        /// random closures and random operands.
        #[test]
        fn star_squaring_agrees_with_linear_iteration(
            words in proptest::collection::vec("[01]{0,6}", 1..5),
            expr in "[01+*?]{1,6}",
        ) {
            let r = match parse(&expr) { Ok(r) => r, Err(_) => return Ok(()) };
            let ic = InfixClosure::of_words(words.iter().map(|s| Word::from(s.as_str())));
            if ic.is_empty() { return Ok(()); }
            let gt = GuideTable::build(&ic);
            let gm = GuideMasks::build(&ic);
            let eps = ic.eps_index().unwrap();
            let a = ic.cs_of_regex(&r);
            let mut scratch = vec![0u64; ic.width().blocks()];
            let mut squared = Cs::zero(ic.width());
            let mut linear = Cs::zero(ic.width());
            star_into(squared.blocks_mut(), a.blocks(), &gm, eps, &mut scratch);
            star_into_linear(linear.blocks_mut(), a.blocks(), &gt, eps, &mut scratch);
            prop_assert_eq!(&squared, &linear, "({})*", r);
        }

        /// Concatenation is associative on characteristic sequences.
        #[test]
        fn concat_is_associative(e1 in "[01+?]{1,4}", e2 in "[01+?]{1,4}", e3 in "[01+?]{1,4}") {
            let (r1, r2, r3) = match (parse(&e1), parse(&e2), parse(&e3)) {
                (Ok(a), Ok(b), Ok(c)) => (a, b, c),
                _ => return Ok(()),
            };
            let spec = example_spec();
            let (ic, _, gm) = setup(&spec);
            let width = ic.width();
            let (a, b, c) = (ic.cs_of_regex(&r1), ic.cs_of_regex(&r2), ic.cs_of_regex(&r3));
            let mut ab = Cs::zero(width);
            let mut bc = Cs::zero(width);
            let mut ab_c = Cs::zero(width);
            let mut a_bc = Cs::zero(width);
            concat_into(ab.blocks_mut(), a.blocks(), b.blocks(), &gm);
            concat_into(bc.blocks_mut(), b.blocks(), c.blocks(), &gm);
            concat_into(ab_c.blocks_mut(), ab.blocks(), c.blocks(), &gm);
            concat_into(a_bc.blocks_mut(), a.blocks(), bc.blocks(), &gm);
            prop_assert_eq!(ab_c, a_bc);
        }

        /// Concatenation distributes over union (semiring law), observed on
        /// characteristic sequences.
        #[test]
        fn concat_distributes_over_union(e1 in "[01+?]{1,4}", e2 in "[01+?]{1,4}", e3 in "[01+?]{1,4}") {
            let (r1, r2, r3) = match (parse(&e1), parse(&e2), parse(&e3)) {
                (Ok(a), Ok(b), Ok(c)) => (a, b, c),
                _ => return Ok(()),
            };
            let spec = example_spec();
            let (ic, _, gm) = setup(&spec);
            let width = ic.width();
            let (a, b, c) = (ic.cs_of_regex(&r1), ic.cs_of_regex(&r2), ic.cs_of_regex(&r3));
            // a·(b+c)
            let mut bc = Cs::zero(width);
            or_into(bc.blocks_mut(), b.blocks(), c.blocks());
            let mut lhs = Cs::zero(width);
            concat_into(lhs.blocks_mut(), a.blocks(), bc.blocks(), &gm);
            // a·b + a·c
            let mut ab = Cs::zero(width);
            let mut ac = Cs::zero(width);
            concat_into(ab.blocks_mut(), a.blocks(), b.blocks(), &gm);
            concat_into(ac.blocks_mut(), a.blocks(), c.blocks(), &gm);
            let mut rhs = Cs::zero(width);
            or_into(rhs.blocks_mut(), ab.blocks(), ac.blocks());
            prop_assert_eq!(lhs, rhs);
        }
    }
}
