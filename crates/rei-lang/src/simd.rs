//! The SIMD kernel tier: a runtime-probed accelerated path for the block
//! kernels of [`crate::csops`].
//!
//! The characteristic-sequence kernels are `u64`-block loops. On wide
//! closures (hundreds of words — several blocks per row) the same loops
//! widen naturally to 4×u64 lanes: AVX2 on `x86_64`, and a 2×u64 NEON
//! fold on `aarch64`. This module owns
//!
//! * the **feature probe** — [`tier`] decides once per process, via
//!   `is_x86_feature_detected!("avx2")` (compile-time `neon` on
//!   `aarch64`), which tier the dispatching kernels use. The
//!   [`FORCE_SCALAR_ENV`] environment variable (`REI_KERNEL_TIER=scalar`)
//!   pins the probe to [`KernelTier::Scalar`] for A/B runs and tests;
//! * the **lane kernels** — the AVX2 bodies of the funnel-segment
//!   concatenation loop (see the `guide` module for the staging) and the
//!   satisfaction fold, crate-private and reachable only through the
//!   safe dispatchers in [`crate::csops`].
//!
//! # Contract
//!
//! The scalar kernels remain the semantics: every accelerated path is
//! bit-for-bit equal to its scalar counterpart on every input (property
//! tested in `csops`), and every dispatcher falls back to scalar when the
//! probe fails, when the row geometry is too narrow to fill a lane, or on
//! architectures without an accelerated path. Nothing above this module
//! can observe which tier ran except through timing.
//!
//! This is the only module of the crate allowed to contain `unsafe`
//! (`std::arch` intrinsics); the crate root otherwise denies it.

use crate::GuideMasks;
use std::sync::OnceLock;

/// Environment variable read once by [`tier`]: set it to `scalar` to pin
/// the kernels to the scalar tier regardless of what the host supports.
pub const FORCE_SCALAR_ENV: &str = "REI_KERNEL_TIER";

/// Fold kernels (satisfaction / misclassification) only widen on rows of
/// at least this many blocks; below it the setup outweighs the lanes.
pub(crate) const MIN_FOLD_BLOCKS: usize = 8;

/// The kernel tier selected by the runtime feature probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelTier {
    /// Portable `u64`-block loops — the always-correct reference path.
    Scalar,
    /// 4×u64 AVX2 lanes (`x86_64` with AVX2 detected at runtime).
    Avx2,
    /// 2×u64 NEON lanes for the fold kernels (`aarch64`).
    Neon,
}

impl KernelTier {
    /// `true` when the tier uses widened lanes for any kernel.
    pub fn is_accelerated(self) -> bool {
        self != KernelTier::Scalar
    }

    /// Stable lower-case label (`"scalar"`, `"avx2"`, `"neon"`), used by
    /// the bench report and the metrics.
    pub fn label(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Avx2 => "avx2",
            KernelTier::Neon => "neon",
        }
    }
}

impl std::fmt::Display for KernelTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The pure probe decision, split out of [`tier`] so the env-knob logic
/// is testable without mutating the process environment: `env` is the
/// value of [`FORCE_SCALAR_ENV`] (if set) and `accelerated` is what the
/// hardware probe reported.
pub fn tier_from(env: Option<&str>, accelerated: Option<KernelTier>) -> KernelTier {
    match env.map(str::trim) {
        // Only the explicit opt-out is honoured; unknown values (typos)
        // keep the probe's verdict so a bad deploy never silently loses
        // correctness — only an A/B run changes the tier.
        Some(v) if v.eq_ignore_ascii_case("scalar") => KernelTier::Scalar,
        _ => accelerated.unwrap_or(KernelTier::Scalar),
    }
}

/// What the hardware supports, ignoring the environment override.
fn probe_hardware() -> Option<KernelTier> {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Some(KernelTier::Avx2);
        }
        None
    }
    #[cfg(target_arch = "aarch64")]
    {
        Some(KernelTier::Neon)
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        None
    }
}

/// The process-wide kernel tier: probed once, cached for the process
/// lifetime (the dispatchers sit on the synthesis hot path).
pub fn tier() -> KernelTier {
    static TIER: OnceLock<KernelTier> = OnceLock::new();
    *TIER.get_or_init(|| {
        let env = std::env::var(FORCE_SCALAR_ENV).ok();
        tier_from(env.as_deref(), probe_hardware())
    })
}

// ---------------------------------------------------------------------------
// Safe dispatch fronts, called by the `csops` kernels.
// ---------------------------------------------------------------------------

/// Runs the accelerated concatenation when the probe, the architecture
/// and the staged table's bounds allow it; returns `false` (having
/// written nothing) when the caller must run the scalar kernel instead.
pub(crate) fn try_concat_into(dst: &mut [u64], a: &[u64], b: &[u64], masks: &GuideMasks) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if tier() == KernelTier::Avx2
            && masks.simd_has_segments()
            && masks.simd_bounds_ok(dst.len(), b.len())
        {
            concat_into_avx2(dst, a, b, masks);
            return true;
        }
    }
    let _ = (dst, a, b, masks);
    false
}

/// The AVX2 concatenation driver: the scalar kernel's set-bit walk with
/// each operand word partitioned by the segment-row bitmap. Rows without
/// segments stream the original entry table right here, in plain code —
/// byte-for-byte the scalar kernel's loop and codegen; only the few rows
/// with vectorizable structure cross into the `target_feature` kernel.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
fn concat_into_avx2(dst: &mut [u64], a: &[u64], b: &[u64], masks: &GuideMasks) {
    dst.fill(0);
    // Block-occupancy bitmap of the right operand: the vector loop's
    // analogue of the scalar kernel's per-entry early-out. A whole
    // segment is skipped when none of its source blocks is occupied —
    // the common case when `b` is a sparse literal row. All-ones doubles
    // as the "don't test" sentinel for operands wider than 64 blocks (a
    // genuinely all-occupied bitmap passes every range test anyway).
    // Computed on the first segment row, so calls that touch none never
    // pay for it.
    let mut occ = 0u64;
    let mut occ_ready = false;
    let num_left = masks.num_left();
    for (block, &word) in a.iter().enumerate() {
        if word == 0 {
            continue;
        }
        // Partition this word's rows once: segment rows go through the
        // funnel kernel, the rest run the scalar path with zero extra
        // per-row work.
        let seg_mask = masks.simd_seg_rows_word(block);
        let mut bits = word & !seg_mask;
        while bits != 0 {
            let l = block * 64 + bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if l >= num_left {
                // Padding bits above the closure are always zero in rows
                // produced by these kernels; stop defensively anyway.
                break;
            }
            for entry in masks.row(l) {
                entry.apply(b, dst);
            }
        }
        let bits = word & seg_mask;
        if bits != 0 {
            if !occ_ready {
                occ_ready = true;
                occ = if b.len() <= 64 {
                    b.iter()
                        .enumerate()
                        .fold(0u64, |acc, (i, &w)| acc | u64::from(w != 0) << i)
                } else {
                    !0
                };
            }
            // SAFETY: the probe confirmed AVX2, and `simd_bounds_ok`
            // pre-checked every block index the segments can touch. One
            // call covers every segment row of this word, so the AVX
            // state transition is paid per operand word, not per row.
            unsafe { x86::concat_rows_avx2(dst, b, masks, block, bits, occ) };
        }
    }
}

/// Accelerated satisfaction fold: `Some(any_violation)` when a lane path
/// ran, `None` when the caller must fold scalar (narrow row, unequal
/// lengths, or no accelerated tier).
pub(crate) fn try_violations(row: &[u64], pos: &[u64], neg: &[u64]) -> Option<bool> {
    if row.len() < MIN_FOLD_BLOCKS || pos.len() != row.len() || neg.len() != row.len() {
        return None;
    }
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)]
    if tier() == KernelTier::Avx2 {
        // SAFETY: AVX2 probed; lengths checked equal above.
        return Some(unsafe { x86::violations_avx2(row, pos, neg) });
    }
    #[cfg(target_arch = "aarch64")]
    #[allow(unsafe_code)]
    if tier() == KernelTier::Neon {
        // SAFETY: NEON is baseline on aarch64; lengths checked equal.
        return Some(unsafe { arm::violations_neon(row, pos, neg) });
    }
    None
}

/// Accelerated misclassification count; same contract as
/// [`try_violations`].
pub(crate) fn try_misclassified(row: &[u64], pos: &[u64], neg: &[u64]) -> Option<usize> {
    if row.len() < MIN_FOLD_BLOCKS || pos.len() != row.len() || neg.len() != row.len() {
        return None;
    }
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)]
    if tier() == KernelTier::Avx2 {
        // SAFETY: AVX2 probed; lengths checked equal above.
        return Some(unsafe { x86::misclassified_avx2(row, pos, neg) });
    }
    #[cfg(target_arch = "aarch64")]
    #[allow(unsafe_code)]
    if tier() == KernelTier::Neon {
        // SAFETY: NEON is baseline on aarch64; lengths checked equal.
        return Some(unsafe { arm::misclassified_neon(row, pos, neg) });
    }
    None
}

// ---------------------------------------------------------------------------
// AVX2 lane kernels (x86_64)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
pub(crate) mod x86 {
    use crate::guide::{GuideMasks, SimdRow};
    use std::arch::x86_64::*;

    /// Applies every segment row named by `bits` (the segment-row bits of
    /// operand block `block`) through the funnel kernel. Batching the
    /// rows into one `target_feature` call amortizes the AVX upper-state
    /// transition over the whole word — on dense left operands dozens of
    /// rows share it — and lets [`concat_row_avx2`] inline into the loop.
    ///
    /// # Safety
    ///
    /// Requires AVX2, plus the bounds contract of [`concat_row_avx2`]
    /// for every row named by `bits`.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn concat_rows_avx2(
        dst: &mut [u64],
        b: &[u64],
        masks: &GuideMasks,
        block: usize,
        mut bits: u64,
        occ: u64,
    ) {
        while bits != 0 {
            let l = block * 64 + bits.trailing_zeros() as usize;
            bits &= bits - 1;
            concat_row_avx2(dst, b, masks.simd_row(l), occ);
        }
    }

    /// Applies one funnel-staged concatenation row to the right operand
    /// `b`. Aligned segments (`s = 0`, the common case on wide closures)
    /// are masked OR-copies: four target blocks per AVX2 step with one
    /// contiguous load, mask AND and OR-store each. Unaligned segments
    /// funnel two contiguous loads (the low and high source windows)
    /// through a broadcast shift pair. Both shapes finish with an SSE
    /// pair step and a scalar tail; then the row's leftover entries run
    /// the scalar per-entry kernel.
    ///
    /// # Safety
    ///
    /// Requires AVX2. Every block index a segment can read from `b` or
    /// write in `dst` must be in bounds — guaranteed by the staging
    /// invariants of [`crate::GuideMasks`] (front-trimmed `rb0` for
    /// unaligned segments, back-trimmed low reads) plus the caller's
    /// bounds check against the table's maxima.
    #[target_feature(enable = "avx2")]
    unsafe fn concat_row_avx2(dst: &mut [u64], b: &[u64], row: SimdRow<'_>, occ: u64) {
        for seg in row.segs {
            let t0 = seg.t0 as usize;
            let rb0 = seg.rb0 as usize;
            let len = seg.len as usize;
            if occ != !0 {
                // Skip the segment when every source block it can read
                // is zero. `first + span ≤ 64` because the reads were
                // bounds-checked against `b.len() ≤ 64`, so the u128
                // range mask truncates exactly.
                let first = if seg.s == 0 { rb0 } else { rb0 - 1 };
                let span = rb0 + len - first;
                let range = (((1u128 << span) - 1) << first) as u64;
                if occ & range == 0 {
                    continue;
                }
            }
            let low_masks = row.low_masks.as_ptr().add(seg.at as usize);
            let high_masks = row.high_masks.as_ptr().add(seg.at as usize);
            let mut i = 0;
            if seg.s == 0 {
                // Aligned copy: `dst[t0+i] |= b[rb0+i] & low_masks[i]`;
                // the high lane is untouched (all its masks are zero).
                while i + 4 <= len {
                    let moved = _mm256_and_si256(
                        _mm256_loadu_si256(b.as_ptr().add(rb0 + i) as *const __m256i),
                        _mm256_loadu_si256(low_masks.add(i) as *const __m256i),
                    );
                    // The scalar kernel's per-entry early-out, per step.
                    if _mm256_testz_si256(moved, moved) == 0 {
                        let out = dst.as_mut_ptr().add(t0 + i) as *mut __m256i;
                        _mm256_storeu_si256(
                            out,
                            _mm256_or_si256(_mm256_loadu_si256(out as *const __m256i), moved),
                        );
                    }
                    i += 4;
                }
                if i + 2 <= len {
                    let moved = _mm_and_si128(
                        _mm_loadu_si128(b.as_ptr().add(rb0 + i) as *const __m128i),
                        _mm_loadu_si128(low_masks.add(i) as *const __m128i),
                    );
                    if _mm_testz_si128(moved, moved) == 0 {
                        let out = dst.as_mut_ptr().add(t0 + i) as *mut __m128i;
                        _mm_storeu_si128(
                            out,
                            _mm_or_si128(_mm_loadu_si128(out as *const __m128i), moved),
                        );
                    }
                    i += 2;
                }
            } else {
                // Broadcast shift counts: every lane funnels by the same
                // distance, and staging guarantees `rb0 ≥ 1` here.
                let shl = _mm_cvtsi32_si128(seg.s as i32);
                let shr = _mm_cvtsi32_si128(64 - seg.s as i32);
                while i + 4 <= len {
                    let low = _mm256_and_si256(
                        _mm256_loadu_si256(b.as_ptr().add(rb0 + i) as *const __m256i),
                        _mm256_loadu_si256(low_masks.add(i) as *const __m256i),
                    );
                    let high = _mm256_and_si256(
                        _mm256_loadu_si256(b.as_ptr().add(rb0 + i - 1) as *const __m256i),
                        _mm256_loadu_si256(high_masks.add(i) as *const __m256i),
                    );
                    let moved =
                        _mm256_or_si256(_mm256_sll_epi64(low, shl), _mm256_srl_epi64(high, shr));
                    if _mm256_testz_si256(moved, moved) == 0 {
                        let out = dst.as_mut_ptr().add(t0 + i) as *mut __m256i;
                        _mm256_storeu_si256(
                            out,
                            _mm256_or_si256(_mm256_loadu_si256(out as *const __m256i), moved),
                        );
                    }
                    i += 4;
                }
                if i + 2 <= len {
                    let low = _mm_and_si128(
                        _mm_loadu_si128(b.as_ptr().add(rb0 + i) as *const __m128i),
                        _mm_loadu_si128(low_masks.add(i) as *const __m128i),
                    );
                    let high = _mm_and_si128(
                        _mm_loadu_si128(b.as_ptr().add(rb0 + i - 1) as *const __m128i),
                        _mm_loadu_si128(high_masks.add(i) as *const __m128i),
                    );
                    let moved = _mm_or_si128(_mm_sll_epi64(low, shl), _mm_srl_epi64(high, shr));
                    if _mm_testz_si128(moved, moved) == 0 {
                        let out = dst.as_mut_ptr().add(t0 + i) as *mut __m128i;
                        _mm_storeu_si128(
                            out,
                            _mm_or_si128(_mm_loadu_si128(out as *const __m128i), moved),
                        );
                    }
                    i += 2;
                }
            }
            while i < len {
                let mut moved = (*b.get_unchecked(rb0 + i) & *low_masks.add(i)) << seg.s;
                let high_mask = *high_masks.add(i);
                if high_mask != 0 {
                    // `high_mask` is only ever non-zero when `s > 0`, so
                    // the shift count stays below 64 and `rb0 ≥ 1`.
                    moved |= (*b.get_unchecked(rb0 + i - 1) & high_mask) >> (64 - seg.s);
                }
                *dst.get_unchecked_mut(t0 + i) |= moved;
                i += 1;
            }
        }
        for entry in row.leftovers {
            entry.apply(b, dst);
        }
    }

    /// The satisfaction fold, four blocks per step: computes the
    /// violation word `(pos & !row) | (neg & row)` per lane and reports
    /// whether any violation bit is set, short-circuiting per quad like
    /// the scalar fold short-circuits per block.
    ///
    /// # Safety
    ///
    /// Requires AVX2; the three slices must have equal length.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn violations_avx2(row: &[u64], pos: &[u64], neg: &[u64]) -> bool {
        let quads = row.len() / 4;
        for quad in 0..quads {
            let at = quad * 4;
            let r = _mm256_loadu_si256(row.as_ptr().add(at) as *const __m256i);
            let p = _mm256_loadu_si256(pos.as_ptr().add(at) as *const __m256i);
            let n = _mm256_loadu_si256(neg.as_ptr().add(at) as *const __m256i);
            // `_mm256_andnot_si256(a, b)` computes `!a & b`.
            let viol = _mm256_or_si256(_mm256_andnot_si256(r, p), _mm256_and_si256(n, r));
            if _mm256_testz_si256(viol, viol) == 0 {
                return true;
            }
        }
        for at in quads * 4..row.len() {
            if (pos[at] & !row[at]) | (neg[at] & row[at]) != 0 {
                return true;
            }
        }
        false
    }

    /// The misclassification count, four blocks per step: the violation
    /// lanes are computed vectorized, their popcounts summed scalar (AVX2
    /// has no 64-bit lane popcount).
    ///
    /// # Safety
    ///
    /// Requires AVX2; the three slices must have equal length.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn misclassified_avx2(row: &[u64], pos: &[u64], neg: &[u64]) -> usize {
        let mut total = 0usize;
        let quads = row.len() / 4;
        let mut lanes = [0u64; 4];
        for quad in 0..quads {
            let at = quad * 4;
            let r = _mm256_loadu_si256(row.as_ptr().add(at) as *const __m256i);
            let p = _mm256_loadu_si256(pos.as_ptr().add(at) as *const __m256i);
            let n = _mm256_loadu_si256(neg.as_ptr().add(at) as *const __m256i);
            let viol = _mm256_or_si256(_mm256_andnot_si256(r, p), _mm256_and_si256(n, r));
            _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, viol);
            total += lanes.iter().map(|l| l.count_ones() as usize).sum::<usize>();
        }
        for at in quads * 4..row.len() {
            total += (((pos[at] & !row[at]) | (neg[at] & row[at])).count_ones()) as usize;
        }
        total
    }
}

// ---------------------------------------------------------------------------
// NEON lane kernels (aarch64) — fold kernels only; the concatenation quad
// loop needs a gather, which NEON lacks, so concat stays scalar there.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)]
pub(crate) mod arm {
    use std::arch::aarch64::*;

    /// NEON satisfaction fold, two blocks per step. See
    /// [`super::x86::violations_avx2`] for the formula.
    ///
    /// # Safety
    ///
    /// Requires NEON (baseline on `aarch64`); equal-length slices.
    #[target_feature(enable = "neon")]
    pub(crate) unsafe fn violations_neon(row: &[u64], pos: &[u64], neg: &[u64]) -> bool {
        let pairs = row.len() / 2;
        for pair in 0..pairs {
            let at = pair * 2;
            let r = vld1q_u64(row.as_ptr().add(at));
            let p = vld1q_u64(pos.as_ptr().add(at));
            let n = vld1q_u64(neg.as_ptr().add(at));
            // `vbicq_u64(a, b)` computes `a & !b`.
            let viol = vorrq_u64(vbicq_u64(p, r), vandq_u64(n, r));
            if (vgetq_lane_u64::<0>(viol) | vgetq_lane_u64::<1>(viol)) != 0 {
                return true;
            }
        }
        for at in pairs * 2..row.len() {
            if (pos[at] & !row[at]) | (neg[at] & row[at]) != 0 {
                return true;
            }
        }
        false
    }

    /// NEON misclassification count, two blocks per step.
    ///
    /// # Safety
    ///
    /// Requires NEON (baseline on `aarch64`); equal-length slices.
    #[target_feature(enable = "neon")]
    pub(crate) unsafe fn misclassified_neon(row: &[u64], pos: &[u64], neg: &[u64]) -> usize {
        let mut total = 0u64;
        let pairs = row.len() / 2;
        for pair in 0..pairs {
            let at = pair * 2;
            let r = vld1q_u64(row.as_ptr().add(at));
            let p = vld1q_u64(pos.as_ptr().add(at));
            let n = vld1q_u64(neg.as_ptr().add(at));
            let viol = vorrq_u64(vbicq_u64(p, r), vandq_u64(n, r));
            total += vgetq_lane_u64::<0>(viol).count_ones() as u64
                + vgetq_lane_u64::<1>(viol).count_ones() as u64;
        }
        for at in pairs * 2..row.len() {
            total += ((pos[at] & !row[at]) | (neg[at] & row[at])).count_ones() as u64;
        }
        total as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_knob_pins_scalar_and_ignores_typos() {
        let probed = Some(KernelTier::Avx2);
        assert_eq!(tier_from(None, probed), KernelTier::Avx2);
        assert_eq!(tier_from(Some("scalar"), probed), KernelTier::Scalar);
        assert_eq!(tier_from(Some(" SCALAR "), probed), KernelTier::Scalar);
        // Unknown values keep the probe's verdict.
        assert_eq!(tier_from(Some("fast"), probed), KernelTier::Avx2);
        assert_eq!(tier_from(Some("avx2"), None), KernelTier::Scalar);
        assert_eq!(tier_from(None, None), KernelTier::Scalar);
        assert_eq!(
            tier_from(Some("scalar"), Some(KernelTier::Neon)),
            KernelTier::Scalar
        );
    }

    #[test]
    fn tier_is_cached_and_labelled() {
        let first = tier();
        assert_eq!(tier(), first, "probe result is process-stable");
        assert!(["scalar", "avx2", "neon"].contains(&first.label()));
        assert_eq!(first.to_string(), first.label());
        assert_eq!(
            first.is_accelerated(),
            first != KernelTier::Scalar,
            "only the scalar tier is unaccelerated"
        );
    }
}
