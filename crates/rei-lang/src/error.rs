//! Error types for specifications.

use std::error::Error;
use std::fmt;

use crate::Word;

/// An error produced while constructing a [`crate::Spec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The same word appears among both positive and negative examples, so
    /// no language can satisfy the specification.
    Contradictory {
        /// A witness word contained in both `P` and `N`.
        word: Word,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Contradictory { word } => write!(
                f,
                "contradictory specification: '{word}' is both a positive and a negative example"
            ),
        }
    }
}

impl Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_witness() {
        let e = SpecError::Contradictory {
            word: Word::from("01"),
        };
        assert!(e.to_string().contains("'01'"));
    }
}
