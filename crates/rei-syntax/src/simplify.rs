//! Algebraic simplification of regular expressions.
//!
//! The synthesiser reconstructs expressions from provenance information in
//! the language cache and therefore never produces redundant syntax, but the
//! AlphaRegex baseline and user-written expressions benefit from a light
//! rewriting pass. Only language-preserving rules are applied:
//!
//! * `∅ + r = r`, `r + ∅ = r`, `r + r = r`
//! * `∅ · r = ∅`, `r · ∅ = ∅`, `ε · r = r`, `r · ε = r`
//! * `∅* = ε`, `ε* = ε`, `(r*)* = r*`, `(r?)* = r*`, `(r*)? = r*`
//! * `∅? = ε`, `ε? = ε`
//!
//! The rewriting is bottom-up and runs to a fixed point in a single pass
//! because every rule strictly decreases the size of the term.

use crate::Regex;

/// Simplifies `regex` using language-preserving rewrite rules.
///
/// # Example
///
/// ```
/// use rei_syntax::{parse, simplify::simplify};
///
/// let r = parse("(a+∅)(ε+∅*)").unwrap();
/// assert_eq!(simplify(&r).to_string(), "a");
/// ```
pub fn simplify(regex: &Regex) -> Regex {
    match regex {
        Regex::Empty | Regex::Epsilon | Regex::Literal(_) => regex.clone(),
        Regex::Concat(l, r) => {
            let (l, r) = (simplify(l), simplify(r));
            match (&l, &r) {
                (Regex::Empty, _) | (_, Regex::Empty) => Regex::Empty,
                (Regex::Epsilon, _) => r,
                (_, Regex::Epsilon) => l,
                _ => Regex::concat(l, r),
            }
        }
        Regex::Union(l, r) => {
            let (l, r) = (simplify(l), simplify(r));
            match (&l, &r) {
                (Regex::Empty, _) => r,
                (_, Regex::Empty) => l,
                _ if l == r => l,
                _ => Regex::union(l, r),
            }
        }
        Regex::Star(inner) => {
            let inner = simplify(inner);
            match inner {
                Regex::Empty | Regex::Epsilon => Regex::Epsilon,
                Regex::Star(_) => inner,
                Regex::Question(q) => Regex::Star(q),
                _ => inner.star(),
            }
        }
        Regex::Question(inner) => {
            let inner = simplify(inner);
            match &inner {
                Regex::Empty | Regex::Epsilon => Regex::Epsilon,
                Regex::Star(_) | Regex::Question(_) => inner,
                _ if inner.is_nullable() => inner,
                _ => inner.question(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{matcher, parse, CostFn};
    use proptest::prelude::*;

    #[test]
    fn unit_and_absorbing_elements() {
        assert_eq!(simplify(&parse("a+∅").unwrap()), parse("a").unwrap());
        assert_eq!(simplify(&parse("∅a").unwrap()), Regex::Empty);
        assert_eq!(simplify(&parse("εa").unwrap()), parse("a").unwrap());
        assert_eq!(simplify(&parse("aε").unwrap()), parse("a").unwrap());
    }

    #[test]
    fn star_collapsing() {
        assert_eq!(simplify(&parse("∅*").unwrap()), Regex::Epsilon);
        assert_eq!(simplify(&parse("ε*").unwrap()), Regex::Epsilon);
        assert_eq!(simplify(&parse("a**").unwrap()), parse("a*").unwrap());
        assert_eq!(simplify(&parse("a?*").unwrap()), parse("a*").unwrap());
        assert_eq!(simplify(&parse("a*?").unwrap()), parse("a*").unwrap());
    }

    #[test]
    fn question_of_nullable_is_dropped() {
        assert_eq!(
            simplify(&parse("(ab?)?").unwrap()),
            parse("(ab?)?").unwrap()
        );
        assert_eq!(simplify(&parse("(a?b?)?").unwrap()), parse("a?b?").unwrap());
    }

    #[test]
    fn idempotent_union() {
        assert_eq!(simplify(&parse("ab+ab").unwrap()), parse("ab").unwrap());
    }

    #[test]
    fn never_increases_cost() {
        let inputs = ["(a+∅)(ε+∅*)", "((0+1)+(0+1))*", "0?*?", "(∅+∅)?"];
        for s in inputs {
            let r = parse(s).unwrap();
            let simplified = simplify(&r);
            assert!(simplified.cost(&CostFn::UNIFORM) <= r.cost(&CostFn::UNIFORM));
        }
    }

    proptest! {
        /// Simplification preserves the language on sampled words.
        #[test]
        fn preserves_language(expr in "[01+*?()#_]{0,14}", word in "[01]{0,7}") {
            if let Ok(r) = parse(&expr) {
                let s = simplify(&r);
                prop_assert_eq!(
                    matcher::accepts(&r, word.chars()),
                    matcher::accepts(&s, word.chars()),
                    "expr {} simplified {} word {}", r, s, word
                );
            }
        }

        /// Simplification is idempotent.
        #[test]
        fn idempotent(expr in "[01+*?()#_]{0,14}") {
            if let Ok(r) = parse(&expr) {
                let once = simplify(&r);
                let twice = simplify(&once);
                prop_assert_eq!(once, twice);
            }
        }
    }
}
