//! Exhaustive enumeration of regular expressions by increasing cost.
//!
//! This is the brute-force reference against which the search-based
//! synthesiser is validated: for small cost bounds it enumerates *every*
//! expression over an alphabet (up to the same constructor grammar Paresy
//! searches: literals, `?`, `*`, `·`, `+`), so a test can assert that no
//! expression cheaper than the synthesiser's answer satisfies a
//! specification. It is exponential and intended for oracle use only.

use std::collections::BTreeMap;

use crate::{CostFn, Regex};

/// Enumerates every regular expression of cost at most `max_cost` over
/// `alphabet`, grouped by exact cost in ascending order.
///
/// The grammar is the synthesiser's: single-character literals, `?`, `*`,
/// concatenation and union (the constants `∅`/`ε` are only interesting as
/// whole answers and are omitted, exactly as in Algorithm 1 of the paper).
/// Union operands are generated in both orders; no language-level
/// deduplication is attempted — this is the raw syntactic space.
///
/// # Example
///
/// ```
/// use rei_syntax::{enumerate::expressions_up_to, CostFn};
///
/// let all = expressions_up_to(&['0', '1'], &CostFn::UNIFORM, 3);
/// // Cost 1: 0, 1. Cost 2: 0?, 0*, 1?, 1*. Cost 3 adds binary combinations.
/// assert!(all.iter().any(|(cost, r)| *cost == 3 && r.to_string() == "0+1"));
/// ```
pub fn expressions_up_to(alphabet: &[char], costs: &CostFn, max_cost: u64) -> Vec<(u64, Regex)> {
    let mut by_cost: BTreeMap<u64, Vec<Regex>> = BTreeMap::new();
    if costs.literal <= max_cost {
        by_cost.insert(
            costs.literal,
            alphabet.iter().map(|&a| Regex::literal(a)).collect(),
        );
    }
    let mut cost = costs.literal;
    while cost < max_cost {
        cost += 1;
        let mut level: Vec<Regex> = Vec::new();
        // Unary constructors.
        if let Some(operand_cost) = cost.checked_sub(costs.question) {
            for r in by_cost.get(&operand_cost).into_iter().flatten() {
                level.push(r.clone().question());
            }
        }
        if let Some(operand_cost) = cost.checked_sub(costs.star) {
            for r in by_cost.get(&operand_cost).into_iter().flatten() {
                level.push(r.clone().star());
            }
        }
        // Binary constructors.
        for (constructor_cost, is_union) in [(costs.concat, false), (costs.union, true)] {
            let Some(remaining) = cost.checked_sub(constructor_cost) else {
                continue;
            };
            if remaining < 2 * costs.literal {
                continue;
            }
            for left_cost in costs.literal..=(remaining - costs.literal) {
                let right_cost = remaining - left_cost;
                let (Some(lefts), Some(rights)) =
                    (by_cost.get(&left_cost), by_cost.get(&right_cost))
                else {
                    continue;
                };
                for l in lefts {
                    for r in rights {
                        level.push(if is_union {
                            Regex::union(l.clone(), r.clone())
                        } else {
                            Regex::concat(l.clone(), r.clone())
                        });
                    }
                }
            }
        }
        if !level.is_empty() {
            by_cost.insert(cost, level);
        }
    }
    by_cost
        .into_iter()
        .flat_map(|(cost, exprs)| exprs.into_iter().map(move |r| (cost, r)))
        .collect()
}

/// Counts the expressions of cost at most `max_cost` without materialising
/// them all (used by tests and by capacity estimates).
pub fn count_up_to(alphabet: &[char], costs: &CostFn, max_cost: u64) -> u64 {
    let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
    if costs.literal <= max_cost {
        counts.insert(costs.literal, alphabet.len() as u64);
    }
    let mut cost = costs.literal;
    while cost < max_cost {
        cost += 1;
        let mut level = 0u64;
        if let Some(c) = cost.checked_sub(costs.question) {
            level += counts.get(&c).copied().unwrap_or(0);
        }
        if let Some(c) = cost.checked_sub(costs.star) {
            level += counts.get(&c).copied().unwrap_or(0);
        }
        for constructor_cost in [costs.concat, costs.union] {
            let Some(remaining) = cost.checked_sub(constructor_cost) else {
                continue;
            };
            if remaining < 2 * costs.literal {
                continue;
            }
            for left_cost in costs.literal..=(remaining - costs.literal) {
                let right_cost = remaining - left_cost;
                level += counts.get(&left_cost).copied().unwrap_or(0)
                    * counts.get(&right_cost).copied().unwrap_or(0);
            }
        }
        if level > 0 {
            counts.insert(cost, level);
        }
    }
    counts.values().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smallest_levels_are_exactly_right() {
        let all = expressions_up_to(&['0', '1'], &CostFn::UNIFORM, 2);
        let rendered: Vec<(u64, String)> = all.iter().map(|(c, r)| (*c, r.to_string())).collect();
        assert_eq!(
            rendered,
            vec![
                (1, "0".to_string()),
                (1, "1".to_string()),
                (2, "0?".to_string()),
                (2, "1?".to_string()),
                (2, "0*".to_string()),
                (2, "1*".to_string()),
            ]
        );
    }

    #[test]
    fn enumeration_and_count_agree() {
        for max_cost in 1..=6 {
            let listed = expressions_up_to(&['0', '1'], &CostFn::UNIFORM, max_cost).len() as u64;
            let counted = count_up_to(&['0', '1'], &CostFn::UNIFORM, max_cost);
            assert_eq!(listed, counted, "max_cost {max_cost}");
        }
    }

    #[test]
    fn every_enumerated_expression_has_the_reported_cost() {
        for (cost, regex) in expressions_up_to(&['a', 'b'], &CostFn::new(2, 1, 3, 1, 2), 8) {
            assert_eq!(regex.cost(&CostFn::new(2, 1, 3, 1, 2)), cost, "{regex}");
        }
    }

    #[test]
    fn growth_is_exponential_in_cost() {
        let c5 = count_up_to(&['0', '1'], &CostFn::UNIFORM, 5);
        let c7 = count_up_to(&['0', '1'], &CostFn::UNIFORM, 7);
        let c9 = count_up_to(&['0', '1'], &CostFn::UNIFORM, 9);
        assert!(c7 > 4 * c5);
        assert!(c9 > 4 * c7);
    }

    #[test]
    fn unary_alphabet_enumeration() {
        let all = expressions_up_to(&['a'], &CostFn::UNIFORM, 3);
        assert!(all.iter().all(|(_, r)| r.literals() == vec!['a']));
        assert!(all.iter().any(|(_, r)| r.to_string() == "aa"));
    }
}
