//! Thompson-construction NFAs.
//!
//! The NFA matcher serves two purposes in the reproduction:
//!
//! 1. It is an independent oracle for the derivative matcher — the two are
//!    cross-checked by property tests, which gives us high confidence in the
//!    contains-check used to validate synthesised expressions.
//! 2. It provides language-level utilities used by the test suite, such as
//!    enumerating all accepted words up to a bounded length
//!    ([`Nfa::enumerate_up_to`]), which is how integration tests verify that
//!    a synthesised expression is *precise* with respect to a specification
//!    beyond the literal examples.

use std::collections::BTreeSet;

use crate::Regex;

/// Identifier of an NFA state.
pub(crate) type StateId = usize;

/// A transition on a concrete character or on ε.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Transition {
    /// Consume the given character.
    Char(char, StateId),
    /// Move without consuming input.
    Eps(StateId),
}

/// A non-deterministic finite automaton produced by Thompson's construction.
///
/// # Example
///
/// ```
/// use rei_syntax::{nfa::Nfa, parse};
///
/// let nfa = Nfa::compile(&parse("(0+1)*00").unwrap());
/// assert!(nfa.accepts("1100".chars()));
/// assert!(!nfa.accepts("1101".chars()));
/// ```
#[derive(Debug, Clone)]
pub struct Nfa {
    transitions: Vec<Vec<Transition>>,
    start: StateId,
    accept: StateId,
}

impl Nfa {
    /// Compiles a regular expression into an NFA using Thompson's
    /// construction. The automaton has `O(|r|)` states.
    pub fn compile(regex: &Regex) -> Self {
        let mut builder = Builder {
            transitions: Vec::new(),
        };
        let (start, accept) = builder.build(regex);
        Nfa {
            transitions: builder.transitions,
            start,
            accept,
        }
    }

    /// Number of states of the automaton.
    pub fn state_count(&self) -> usize {
        self.transitions.len()
    }

    /// Returns `true` if the automaton accepts `word`.
    pub fn accepts<I: IntoIterator<Item = char>>(&self, word: I) -> bool {
        let mut current = self.eps_closure([self.start].into_iter().collect());
        for c in word {
            let mut next = BTreeSet::new();
            for &state in &current {
                for t in &self.transitions[state] {
                    if let Transition::Char(tc, dst) = t {
                        if *tc == c {
                            next.insert(*dst);
                        }
                    }
                }
            }
            if next.is_empty() {
                return false;
            }
            current = self.eps_closure(next);
        }
        current.contains(&self.accept)
    }

    /// Enumerates every word over `alphabet` of length at most `max_len`
    /// that the automaton accepts, in shortlex order.
    ///
    /// This is exponential in `max_len` and intended for test oracles on
    /// small alphabets only.
    pub fn enumerate_up_to(&self, alphabet: &[char], max_len: usize) -> Vec<String> {
        let mut out = Vec::new();
        let mut frontier = vec![(
            String::new(),
            self.eps_closure([self.start].into_iter().collect()),
        )];
        if frontier[0].1.contains(&self.accept) {
            out.push(String::new());
        }
        for _ in 0..max_len {
            let mut next_frontier = Vec::new();
            for (prefix, states) in &frontier {
                for &c in alphabet {
                    let mut next = BTreeSet::new();
                    for &state in states {
                        for t in &self.transitions[state] {
                            if let Transition::Char(tc, dst) = t {
                                if *tc == c {
                                    next.insert(*dst);
                                }
                            }
                        }
                    }
                    if next.is_empty() {
                        continue;
                    }
                    let closure = self.eps_closure(next);
                    let mut word = prefix.clone();
                    word.push(c);
                    if closure.contains(&self.accept) {
                        out.push(word.clone());
                    }
                    next_frontier.push((word, closure));
                }
            }
            frontier = next_frontier;
        }
        out
    }

    /// The initial ε-closed state set (used by the subset construction in
    /// [`crate::dfa`]).
    pub(crate) fn start_set(&self) -> BTreeSet<StateId> {
        self.eps_closure([self.start].into_iter().collect())
    }

    /// Whether a subset-construction state (a set of NFA states) is
    /// accepting.
    pub(crate) fn set_accepts(&self, states: &BTreeSet<StateId>) -> bool {
        states.contains(&self.accept)
    }

    /// One ε-closed transition step of a state set on character `c`.
    pub(crate) fn step(&self, states: &BTreeSet<StateId>, c: char) -> BTreeSet<StateId> {
        let mut next = BTreeSet::new();
        for &state in states {
            for t in &self.transitions[state] {
                if let Transition::Char(tc, dst) = t {
                    if *tc == c {
                        next.insert(*dst);
                    }
                }
            }
        }
        self.eps_closure(next)
    }

    fn eps_closure(&self, mut states: BTreeSet<StateId>) -> BTreeSet<StateId> {
        let mut stack: Vec<StateId> = states.iter().copied().collect();
        while let Some(state) = stack.pop() {
            for t in &self.transitions[state] {
                if let Transition::Eps(dst) = t {
                    if states.insert(*dst) {
                        stack.push(*dst);
                    }
                }
            }
        }
        states
    }
}

struct Builder {
    transitions: Vec<Vec<Transition>>,
}

impl Builder {
    fn fresh(&mut self) -> StateId {
        self.transitions.push(Vec::new());
        self.transitions.len() - 1
    }

    fn add(&mut self, from: StateId, t: Transition) {
        self.transitions[from].push(t);
    }

    /// Returns `(start, accept)` of the fragment for `regex`.
    fn build(&mut self, regex: &Regex) -> (StateId, StateId) {
        match regex {
            Regex::Empty => {
                let start = self.fresh();
                let accept = self.fresh();
                (start, accept)
            }
            Regex::Epsilon => {
                let start = self.fresh();
                let accept = self.fresh();
                self.add(start, Transition::Eps(accept));
                (start, accept)
            }
            Regex::Literal(a) => {
                let start = self.fresh();
                let accept = self.fresh();
                self.add(start, Transition::Char(*a, accept));
                (start, accept)
            }
            Regex::Concat(l, r) => {
                let (ls, la) = self.build(l);
                let (rs, ra) = self.build(r);
                self.add(la, Transition::Eps(rs));
                (ls, ra)
            }
            Regex::Union(l, r) => {
                let start = self.fresh();
                let accept = self.fresh();
                let (ls, la) = self.build(l);
                let (rs, ra) = self.build(r);
                self.add(start, Transition::Eps(ls));
                self.add(start, Transition::Eps(rs));
                self.add(la, Transition::Eps(accept));
                self.add(ra, Transition::Eps(accept));
                (start, accept)
            }
            Regex::Star(inner) => {
                let start = self.fresh();
                let accept = self.fresh();
                let (is, ia) = self.build(inner);
                self.add(start, Transition::Eps(is));
                self.add(start, Transition::Eps(accept));
                self.add(ia, Transition::Eps(is));
                self.add(ia, Transition::Eps(accept));
                (start, accept)
            }
            Regex::Question(inner) => {
                let start = self.fresh();
                let accept = self.fresh();
                let (is, ia) = self.build(inner);
                self.add(start, Transition::Eps(is));
                self.add(start, Transition::Eps(accept));
                self.add(ia, Transition::Eps(accept));
                (start, accept)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn empty_language_accepts_nothing() {
        let nfa = Nfa::compile(&Regex::Empty);
        assert!(!nfa.accepts("".chars()));
        assert!(!nfa.accepts("a".chars()));
    }

    #[test]
    fn epsilon_accepts_only_empty_word() {
        let nfa = Nfa::compile(&Regex::Epsilon);
        assert!(nfa.accepts("".chars()));
        assert!(!nfa.accepts("a".chars()));
    }

    #[test]
    fn concatenation_and_union() {
        let nfa = Nfa::compile(&parse("ab+cd").unwrap());
        assert!(nfa.accepts("ab".chars()));
        assert!(nfa.accepts("cd".chars()));
        assert!(!nfa.accepts("ad".chars()));
    }

    #[test]
    fn star_and_question() {
        let nfa = Nfa::compile(&parse("(a?b)*").unwrap());
        assert!(nfa.accepts("".chars()));
        assert!(nfa.accepts("bab".chars()));
        assert!(nfa.accepts("abab".chars()));
        assert!(!nfa.accepts("aa".chars()));
    }

    #[test]
    fn enumerate_small_language() {
        let nfa = Nfa::compile(&parse("10(0+1)*").unwrap());
        let words = nfa.enumerate_up_to(&['0', '1'], 4);
        assert_eq!(
            words,
            vec!["10", "100", "101", "1000", "1001", "1010", "1011"]
        );
    }

    #[test]
    fn enumerate_includes_empty_word_when_nullable() {
        let nfa = Nfa::compile(&parse("(01)*").unwrap());
        let words = nfa.enumerate_up_to(&['0', '1'], 2);
        assert_eq!(words, vec!["", "01"]);
    }

    #[test]
    fn state_count_is_linear_in_size() {
        let r = parse("(0+1)*0101(0+1)*").unwrap();
        let nfa = Nfa::compile(&r);
        assert!(nfa.state_count() <= 40, "got {}", nfa.state_count());
    }
}
