//! Regular-expression syntax for Paresy-rs.
//!
//! This crate provides the syntactic substrate shared by the Paresy
//! synthesiser ([`rei-core`](https://docs.rs/rei-core)), the AlphaRegex
//! baseline and the benchmark harness:
//!
//! * [`Regex`] — the abstract syntax tree of regular expressions over a
//!   `char` alphabet (`∅`, `ε`, literals, concatenation, union, Kleene star
//!   and the derived `?` operator, which the paper treats as a first-class
//!   constructor with its own cost).
//! * [`CostFn`] — cost homomorphisms in the sense of Definition 3.2 of the
//!   paper: a 5-tuple `(cost(a), cost(?), cost(*), cost(·), cost(+))`.
//! * [`parse`](crate::parse::parse) — a small parser for the concrete syntax
//!   used in examples and tests (`#` is `∅`, `_` is `ε`, `+` is union,
//!   juxtaposition is concatenation, postfix `*` and `?`).
//! * [`matcher`] — a Brzozowski-derivative matcher, and [`nfa`] — a
//!   Thompson-construction NFA matcher used as an independent oracle in
//!   tests.
//!
//! # Example
//!
//! ```
//! use rei_syntax::{parse, CostFn, Regex};
//!
//! let r = parse("10(0+1)*").unwrap();
//! assert!(r.accepts("1001".chars()));
//! assert!(!r.accepts("01".chars()));
//! assert_eq!(r.cost(&CostFn::UNIFORM), 8);
//! assert_eq!(r.to_string(), "10(0+1)*");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
pub mod dfa;
mod display;
pub mod enumerate;
mod error;
pub mod matcher;
pub mod metrics;
pub mod nfa;
mod parse;
mod regex;
pub mod simplify;

pub use cost::CostFn;
pub use error::ParseError;
pub use parse::parse;
pub use regex::Regex;
