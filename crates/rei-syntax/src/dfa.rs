//! Deterministic finite automata: determinisation, minimisation, Boolean
//! products and language equivalence.
//!
//! The synthesiser never needs automata — that is the point of the paper's
//! characteristic-sequence representation — but the reproduction uses them
//! as *oracles*: a DFA built from a synthesised expression can be checked
//! for language equivalence against a reference solution, minimised to an
//! independent canonical form, or used to produce counterexample words,
//! giving the test suite much stronger guarantees than example-level
//! checks.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::nfa::Nfa;
use crate::Regex;

/// A complete deterministic finite automaton over an explicit alphabet.
///
/// Every state has exactly one successor per alphabet character (a dead
/// state is materialised during construction), which keeps products and
/// complements simple.
///
/// # Example
///
/// ```
/// use rei_syntax::{dfa::Dfa, parse};
///
/// let dfa = Dfa::from_regex(&parse("(0+1)*00").unwrap(), &['0', '1']);
/// assert!(dfa.accepts("1100".chars()));
/// assert!(!dfa.accepts("0".chars()));
/// assert!(dfa.minimize().state_count() <= dfa.state_count());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dfa {
    alphabet: Vec<char>,
    /// `transitions[state][symbol_index]` is the successor state.
    transitions: Vec<Vec<usize>>,
    accepting: Vec<bool>,
    start: usize,
}

impl Dfa {
    /// Builds a DFA for `regex` over `alphabet` using Thompson's
    /// construction followed by the subset construction.
    ///
    /// # Panics
    ///
    /// Panics if `regex` mentions a character outside `alphabet`.
    pub fn from_regex(regex: &Regex, alphabet: &[char]) -> Self {
        for literal in regex.literals() {
            assert!(
                alphabet.contains(&literal),
                "literal '{literal}' is not in the supplied alphabet"
            );
        }
        Dfa::from_nfa(&Nfa::compile(regex), alphabet)
    }

    /// Determinises an NFA over the given alphabet.
    pub fn from_nfa(nfa: &Nfa, alphabet: &[char]) -> Self {
        let alphabet: Vec<char> = {
            let mut a = alphabet.to_vec();
            a.sort_unstable();
            a.dedup();
            a
        };
        let mut subset_index: BTreeMap<BTreeSet<usize>, usize> = BTreeMap::new();
        let mut transitions: Vec<Vec<usize>> = Vec::new();
        let mut accepting: Vec<bool> = Vec::new();
        let mut worklist: VecDeque<BTreeSet<usize>> = VecDeque::new();

        let start_set = nfa.start_set();
        subset_index.insert(start_set.clone(), 0);
        transitions.push(vec![usize::MAX; alphabet.len()]);
        accepting.push(nfa.set_accepts(&start_set));
        worklist.push_back(start_set);

        while let Some(current) = worklist.pop_front() {
            let current_id = subset_index[&current];
            for (symbol_index, &c) in alphabet.iter().enumerate() {
                let next = nfa.step(&current, c);
                let next_id = match subset_index.get(&next) {
                    Some(&id) => id,
                    None => {
                        let id = transitions.len();
                        subset_index.insert(next.clone(), id);
                        transitions.push(vec![usize::MAX; alphabet.len()]);
                        accepting.push(nfa.set_accepts(&next));
                        worklist.push_back(next);
                        id
                    }
                };
                transitions[current_id][symbol_index] = next_id;
            }
        }
        Dfa {
            alphabet,
            transitions,
            accepting,
            start: 0,
        }
    }

    /// The alphabet the automaton is complete over.
    pub fn alphabet(&self) -> &[char] {
        &self.alphabet
    }

    /// Number of states (including any dead state).
    pub fn state_count(&self) -> usize {
        self.transitions.len()
    }

    /// Returns `true` if the automaton accepts `word`.
    ///
    /// Characters outside the alphabet immediately reject.
    pub fn accepts<I: IntoIterator<Item = char>>(&self, word: I) -> bool {
        let mut state = self.start;
        for c in word {
            match self.alphabet.binary_search(&c) {
                Ok(symbol_index) => state = self.transitions[state][symbol_index],
                Err(_) => return false,
            }
        }
        self.accepting[state]
    }

    /// The complement automaton (accepts exactly the words over the
    /// alphabet that `self` rejects).
    pub fn complement(&self) -> Dfa {
        let mut out = self.clone();
        for accept in &mut out.accepting {
            *accept = !*accept;
        }
        out
    }

    /// The product automaton whose acceptance combines the two automata's
    /// acceptance with `combine` (e.g. `|a, b| a && b` for intersection).
    ///
    /// # Panics
    ///
    /// Panics if the two automata have different alphabets.
    pub fn product<F: Fn(bool, bool) -> bool>(&self, other: &Dfa, combine: F) -> Dfa {
        assert_eq!(
            self.alphabet, other.alphabet,
            "product requires a common alphabet"
        );
        let columns = other.state_count();
        let mut transitions = Vec::with_capacity(self.state_count() * columns);
        let mut accepting = Vec::with_capacity(self.state_count() * columns);
        for a in 0..self.state_count() {
            for b in 0..columns {
                let row = (0..self.alphabet.len())
                    .map(|s| self.transitions[a][s] * columns + other.transitions[b][s])
                    .collect();
                transitions.push(row);
                accepting.push(combine(self.accepting[a], other.accepting[b]));
            }
        }
        Dfa {
            alphabet: self.alphabet.clone(),
            transitions,
            accepting,
            start: self.start * columns + other.start,
        }
    }

    /// The intersection of two automata.
    pub fn intersection(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a && b)
    }

    /// The symmetric difference of two automata: accepts words on which
    /// the two disagree.
    pub fn symmetric_difference(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a != b)
    }

    /// Returns `true` if the automaton accepts no word at all.
    pub fn is_empty(&self) -> bool {
        self.shortest_accepted().is_none()
    }

    /// The shortest accepted word (ties broken towards smaller characters),
    /// or `None` for the empty language. Found by breadth-first search from
    /// the start state.
    pub fn shortest_accepted(&self) -> Option<String> {
        let mut visited = vec![false; self.state_count()];
        let mut queue: VecDeque<(usize, String)> = VecDeque::new();
        visited[self.start] = true;
        queue.push_back((self.start, String::new()));
        while let Some((state, word)) = queue.pop_front() {
            if self.accepting[state] {
                return Some(word);
            }
            for (symbol_index, &c) in self.alphabet.iter().enumerate() {
                let next = self.transitions[state][symbol_index];
                if !visited[next] {
                    visited[next] = true;
                    let mut extended = word.clone();
                    extended.push(c);
                    queue.push_back((next, extended));
                }
            }
        }
        None
    }

    /// Returns `true` if the two automata accept exactly the same language.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ.
    pub fn is_equivalent(&self, other: &Dfa) -> bool {
        self.counterexample(other).is_none()
    }

    /// A shortest word on which the two automata disagree, or `None` if the
    /// languages are equal.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ.
    pub fn counterexample(&self, other: &Dfa) -> Option<String> {
        self.symmetric_difference(other).shortest_accepted()
    }

    /// A minimal DFA for the same language (Moore's partition-refinement
    /// algorithm over reachable states, followed by re-numbering).
    pub fn minimize(&self) -> Dfa {
        // Restrict to reachable states first.
        let mut reachable = vec![false; self.state_count()];
        let mut queue = VecDeque::from([self.start]);
        reachable[self.start] = true;
        while let Some(state) = queue.pop_front() {
            for &next in &self.transitions[state] {
                if !reachable[next] {
                    reachable[next] = true;
                    queue.push_back(next);
                }
            }
        }
        // Initial partition: accepting vs rejecting (reachable only).
        let mut class: Vec<usize> = self
            .accepting
            .iter()
            .map(|&a| if a { 1 } else { 0 })
            .collect();
        loop {
            // Signature of a state: its class plus the classes of all
            // successors.
            let mut signatures: BTreeMap<Vec<usize>, usize> = BTreeMap::new();
            let mut next_class = vec![0usize; self.state_count()];
            for state in 0..self.state_count() {
                if !reachable[state] {
                    continue;
                }
                let mut signature = Vec::with_capacity(self.alphabet.len() + 1);
                signature.push(class[state]);
                for &succ in &self.transitions[state] {
                    signature.push(class[succ]);
                }
                let fresh = signatures.len();
                let id = *signatures.entry(signature).or_insert(fresh);
                next_class[state] = id;
            }
            if next_class
                .iter()
                .zip(&class)
                .enumerate()
                .filter(|(s, _)| reachable[*s])
                .all(|(_, (a, b))| a == b)
                && signatures.len() == class_count(&class, &reachable)
            {
                break;
            }
            class = next_class;
        }
        // Build the quotient automaton.
        let representative_count = class_count(&class, &reachable);
        let mut transitions = vec![vec![0usize; self.alphabet.len()]; representative_count];
        let mut accepting = vec![false; representative_count];
        for state in 0..self.state_count() {
            if !reachable[state] {
                continue;
            }
            let c = class[state];
            accepting[c] = self.accepting[state];
            for (symbol_index, &succ) in self.transitions[state].iter().enumerate() {
                transitions[c][symbol_index] = class[succ];
            }
        }
        Dfa {
            alphabet: self.alphabet.clone(),
            transitions,
            accepting,
            start: class[self.start],
        }
    }
}

fn class_count(class: &[usize], reachable: &[bool]) -> usize {
    class
        .iter()
        .zip(reachable)
        .filter(|(_, &r)| r)
        .map(|(&c, _)| c)
        .collect::<BTreeSet<_>>()
        .len()
}

/// Checks whether two regular expressions denote the same language over the
/// union of their alphabets (plus any extra characters supplied).
///
/// # Example
///
/// ```
/// use rei_syntax::{dfa::equivalent, parse};
///
/// let a = parse("(0+1)*").unwrap();
/// let b = parse("(0*1*)*").unwrap();
/// assert!(equivalent(&a, &b, &[]));
/// assert!(!equivalent(&a, &parse("0*").unwrap(), &[]));
/// ```
pub fn equivalent(a: &Regex, b: &Regex, extra_alphabet: &[char]) -> bool {
    counterexample(a, b, extra_alphabet).is_none()
}

/// A shortest word distinguishing the two expressions, or `None` if they
/// are equivalent over the union of their alphabets and `extra_alphabet`.
pub fn counterexample(a: &Regex, b: &Regex, extra_alphabet: &[char]) -> Option<String> {
    let mut alphabet: Vec<char> = a.literals();
    alphabet.extend(b.literals());
    alphabet.extend_from_slice(extra_alphabet);
    alphabet.sort_unstable();
    alphabet.dedup();
    let da = Dfa::from_regex(a, &alphabet);
    let db = Dfa::from_regex(b, &alphabet);
    da.counterexample(&db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use proptest::prelude::*;

    fn binary() -> [char; 2] {
        ['0', '1']
    }

    #[test]
    fn determinisation_preserves_acceptance() {
        let r = parse("10(0+1)*").unwrap();
        let dfa = Dfa::from_regex(&r, &binary());
        for (word, expected) in [("10", true), ("1001", true), ("01", false), ("", false)] {
            assert_eq!(dfa.accepts(word.chars()), expected, "{word}");
        }
    }

    #[test]
    fn characters_outside_the_alphabet_reject() {
        let dfa = Dfa::from_regex(&parse("a*").unwrap(), &['a', 'b']);
        assert!(dfa.accepts("aa".chars()));
        assert!(!dfa.accepts("ac".chars()));
    }

    #[test]
    #[should_panic(expected = "not in the supplied alphabet")]
    fn missing_alphabet_character_panics() {
        let _ = Dfa::from_regex(&parse("abc").unwrap(), &['a', 'b']);
    }

    #[test]
    fn minimisation_reaches_the_known_minimal_size() {
        // "Strings over {0,1} ending in 00" has a 3-state minimal DFA.
        let dfa = Dfa::from_regex(&parse("(0+1)*00").unwrap(), &binary());
        let minimal = dfa.minimize();
        assert_eq!(minimal.state_count(), 3);
        assert!(minimal.is_equivalent(&dfa));
        // Minimisation is idempotent.
        assert_eq!(minimal.minimize().state_count(), 3);
    }

    #[test]
    fn complement_and_intersection() {
        let ends_zero = Dfa::from_regex(&parse("(0+1)*0").unwrap(), &binary());
        let starts_one = Dfa::from_regex(&parse("1(0+1)*").unwrap(), &binary());
        let both = ends_zero.intersection(&starts_one);
        assert!(both.accepts("10".chars()));
        assert!(!both.accepts("01".chars()));
        let neither = ends_zero
            .complement()
            .intersection(&starts_one.complement());
        assert!(neither.accepts("01".chars()));
        assert!(!neither.accepts("10".chars()));
    }

    #[test]
    fn equivalence_and_counterexamples() {
        assert!(equivalent(
            &parse("(0+1)*").unwrap(),
            &parse("(1+0)*").unwrap(),
            &[]
        ));
        assert!(equivalent(&parse("∅?").unwrap(), &Regex::Epsilon, &[]));
        let cex = counterexample(&parse("0*").unwrap(), &parse("0*1?").unwrap(), &[]).unwrap();
        assert_eq!(cex, "1");
        // The paper's footnote 1: the synthesised no25 expression accepts
        // 1111, unlike the English description "at most one pair of
        // consecutive 1s" — DFA equivalence makes such gaps visible.
        let synthesised = parse("0+((1+00)(0+1))*").unwrap();
        let dfa = Dfa::from_regex(&synthesised, &binary());
        assert!(dfa.accepts("1111".chars()));
    }

    #[test]
    fn empty_language_and_shortest_word() {
        let empty = Dfa::from_regex(&Regex::Empty, &binary());
        assert!(empty.is_empty());
        assert_eq!(empty.shortest_accepted(), None);
        let ends_00 = Dfa::from_regex(&parse("(0+1)*00").unwrap(), &binary());
        assert_eq!(ends_00.shortest_accepted(), Some("00".to_string()));
    }

    proptest! {
        /// The DFA agrees with the derivative matcher on random expressions
        /// and words — a third independent semantics implementation.
        #[test]
        fn dfa_agrees_with_derivatives(expr in "[01+*?()]{1,12}", word in "[01]{0,8}") {
            if let Ok(r) = parse(&expr) {
                let dfa = Dfa::from_regex(&r, &['0', '1']);
                prop_assert_eq!(dfa.accepts(word.chars()), r.accepts(word.chars()), "{}", r);
            }
        }

        /// Minimisation preserves the language.
        #[test]
        fn minimisation_preserves_language(expr in "[01+*?()]{1,10}", word in "[01]{0,6}") {
            if let Ok(r) = parse(&expr) {
                let dfa = Dfa::from_regex(&r, &['0', '1']);
                let minimal = dfa.minimize();
                prop_assert_eq!(dfa.accepts(word.chars()), minimal.accepts(word.chars()));
                prop_assert!(minimal.state_count() <= dfa.state_count());
            }
        }

        /// The simplifier is language-preserving according to the DFA
        /// equivalence oracle (not just on sampled words).
        #[test]
        fn simplify_is_equivalent_by_dfa(expr in "[01+*?()#_]{1,10}") {
            if let Ok(r) = parse(&expr) {
                let simplified = crate::simplify::simplify(&r);
                prop_assert!(equivalent(&r, &simplified, &['0', '1']),
                    "{} vs {}", r, simplified);
            }
        }
    }
}
