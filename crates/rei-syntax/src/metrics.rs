//! Structural metrics of regular expressions.
//!
//! These are used by the benchmark harness for reporting (e.g. Table 2 of
//! the paper reports `Cost(RE)`), by the AlphaRegex baseline for its search
//! ordering and by tests as sanity bounds.

use crate::Regex;

/// Number of AST nodes of the expression.
///
/// ```
/// use rei_syntax::{metrics::size, parse};
/// assert_eq!(size(&parse("10(0+1)*").unwrap()), 8);
/// ```
pub fn size(regex: &Regex) -> usize {
    match regex {
        Regex::Empty | Regex::Epsilon | Regex::Literal(_) => 1,
        Regex::Star(r) | Regex::Question(r) => 1 + size(r),
        Regex::Concat(l, r) | Regex::Union(l, r) => 1 + size(l) + size(r),
    }
}

/// Height of the AST (a single leaf has height 1).
pub fn height(regex: &Regex) -> usize {
    match regex {
        Regex::Empty | Regex::Epsilon | Regex::Literal(_) => 1,
        Regex::Star(r) | Regex::Question(r) => 1 + height(r),
        Regex::Concat(l, r) | Regex::Union(l, r) => 1 + height(l).max(height(r)),
    }
}

/// The star height: maximal nesting depth of Kleene stars.
///
/// ```
/// use rei_syntax::{metrics::star_height, parse};
/// assert_eq!(star_height(&parse("(0*1)*").unwrap()), 2);
/// assert_eq!(star_height(&parse("0*1*").unwrap()), 1);
/// ```
pub fn star_height(regex: &Regex) -> usize {
    match regex {
        Regex::Empty | Regex::Epsilon | Regex::Literal(_) => 0,
        Regex::Star(r) => 1 + star_height(r),
        Regex::Question(r) => star_height(r),
        Regex::Concat(l, r) | Regex::Union(l, r) => star_height(l).max(star_height(r)),
    }
}

/// Number of literal (character) leaves, counting repetitions.
pub fn literal_count(regex: &Regex) -> usize {
    match regex {
        Regex::Empty | Regex::Epsilon => 0,
        Regex::Literal(_) => 1,
        Regex::Star(r) | Regex::Question(r) => literal_count(r),
        Regex::Concat(l, r) | Regex::Union(l, r) => literal_count(l) + literal_count(r),
    }
}

/// Returns `true` if the expression is *star free* (contains no Kleene
/// star). Section 5.1 of the paper discusses searching the star-free
/// fragment by making the star expensive; the harness uses this predicate
/// to validate that setting `cost(*)` high enough indeed yields star-free
/// results.
pub fn is_star_free(regex: &Regex) -> bool {
    star_height(regex) == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn size_counts_all_nodes() {
        assert_eq!(size(&Regex::Empty), 1);
        assert_eq!(size(&parse("a+b").unwrap()), 3);
        assert_eq!(size(&parse("(a+b)*").unwrap()), 4);
    }

    #[test]
    fn height_of_leaf_and_nested() {
        assert_eq!(height(&Regex::Epsilon), 1);
        assert_eq!(height(&parse("(a+b)*").unwrap()), 3);
    }

    #[test]
    fn star_height_ignores_question() {
        assert_eq!(star_height(&parse("a?b?").unwrap()), 0);
        assert_eq!(star_height(&parse("(a?b)*").unwrap()), 1);
    }

    #[test]
    fn literal_count_counts_duplicates() {
        assert_eq!(literal_count(&parse("aa+a").unwrap()), 3);
        assert_eq!(literal_count(&parse("ε+∅").unwrap()), 0);
    }

    #[test]
    fn star_free_predicate() {
        assert!(is_star_free(&parse("a?b+c").unwrap()));
        assert!(!is_star_free(&parse("ab*").unwrap()));
    }

    #[test]
    fn size_is_consistent_with_uniform_cost() {
        // Under the uniform cost function, cost == size for ?/star-free
        // expressions built only from literals, concat and union.
        let r = parse("10+101+100").unwrap();
        assert_eq!(size(&r) as u64, r.cost(&crate::CostFn::UNIFORM));
    }
}
