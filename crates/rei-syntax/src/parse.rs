//! A small recursive-descent parser for the concrete regular-expression
//! syntax used in examples, tests and the benchmark suite.
//!
//! Grammar (whitespace is ignored everywhere):
//!
//! ```text
//! union   := concat ('+' concat)*
//! concat  := postfix postfix*
//! postfix := atom ('*' | '?')*
//! atom    := '(' union ')' | '∅' | '#' | 'ε' | '_' | literal
//! ```
//!
//! `#` is an ASCII alias for `∅` and `_` for `ε`. A literal is any other
//! non-metacharacter; this allows arbitrary alphabets such as `{a, b, …}`,
//! `{0, 1}` or unicode symbols.

use crate::{ParseError, Regex};

/// Parses a regular expression from its concrete syntax.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the offset and cause when the input
/// is not a well-formed expression (unbalanced parentheses, dangling
/// operators, empty input, …).
///
/// # Example
///
/// ```
/// use rei_syntax::parse;
///
/// let r = parse("(0+11)*1").unwrap();
/// assert!(r.accepts("111".chars()));
/// assert!(parse("0++1").is_err());
/// ```
pub fn parse(input: &str) -> Result<Regex, ParseError> {
    let mut parser = Parser::new(input);
    let regex = parser.union()?;
    parser.skip_ws();
    match parser.peek() {
        None => Ok(regex),
        Some((off, c)) => Err(ParseError::new(off, format!("unexpected character '{c}'"))),
    }
}

/// Characters that cannot appear as literals because they are part of the
/// concrete syntax.
const METACHARACTERS: &[char] = &['(', ')', '+', '*', '?', '#', '_', '∅', 'ε'];

struct Parser<'a> {
    input: &'a str,
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input,
            chars: input.char_indices().peekable(),
        }
    }

    fn peek(&mut self) -> Option<(usize, char)> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<(usize, char)> {
        self.chars.next()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some((_, c)) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn eof_offset(&self) -> usize {
        self.input.len()
    }

    fn union(&mut self) -> Result<Regex, ParseError> {
        let mut acc = self.concat()?;
        loop {
            self.skip_ws();
            if matches!(self.peek(), Some((_, '+'))) {
                self.bump();
                let rhs = self.concat()?;
                acc = Regex::union(acc, rhs);
            } else {
                return Ok(acc);
            }
        }
    }

    fn concat(&mut self) -> Result<Regex, ParseError> {
        let mut acc = self.postfix()?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some((_, c)) if c != ')' && c != '+' => {
                    let rhs = self.postfix()?;
                    acc = Regex::concat(acc, rhs);
                }
                _ => return Ok(acc),
            }
        }
    }

    fn postfix(&mut self) -> Result<Regex, ParseError> {
        let mut acc = self.atom()?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some((_, '*')) => {
                    self.bump();
                    acc = acc.star();
                }
                Some((_, '?')) => {
                    self.bump();
                    acc = acc.question();
                }
                _ => return Ok(acc),
            }
        }
    }

    fn atom(&mut self) -> Result<Regex, ParseError> {
        self.skip_ws();
        match self.bump() {
            None => Err(ParseError::new(
                self.eof_offset(),
                "unexpected end of input",
            )),
            Some((off, '(')) => {
                let inner = self.union()?;
                self.skip_ws();
                match self.bump() {
                    Some((_, ')')) => Ok(inner),
                    Some((off, c)) => {
                        Err(ParseError::new(off, format!("expected ')', found '{c}'")))
                    }
                    None => Err(ParseError::new(off, "unclosed '('")),
                }
            }
            Some((_, '∅')) | Some((_, '#')) => Ok(Regex::Empty),
            Some((_, 'ε')) | Some((_, '_')) => Ok(Regex::Epsilon),
            Some((off, c)) if METACHARACTERS.contains(&c) => {
                Err(ParseError::new(off, format!("unexpected character '{c}'")))
            }
            Some((_, c)) => Ok(Regex::Literal(c)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Regex;
    use proptest::prelude::*;

    #[test]
    fn parses_atoms_and_aliases() {
        assert_eq!(parse("#").unwrap(), Regex::Empty);
        assert_eq!(parse("∅").unwrap(), Regex::Empty);
        assert_eq!(parse("_").unwrap(), Regex::Epsilon);
        assert_eq!(parse("ε").unwrap(), Regex::Epsilon);
        assert_eq!(parse("a").unwrap(), Regex::literal('a'));
    }

    #[test]
    fn precedence_star_concat_union() {
        let r = parse("ab+c*").unwrap();
        assert_eq!(
            r,
            Regex::union(
                Regex::concat(Regex::literal('a'), Regex::literal('b')),
                Regex::literal('c').star()
            )
        );
    }

    #[test]
    fn parentheses_override_precedence() {
        let r = parse("(a+b)c").unwrap();
        assert_eq!(
            r,
            Regex::concat(
                Regex::union(Regex::literal('a'), Regex::literal('b')),
                Regex::literal('c')
            )
        );
    }

    #[test]
    fn whitespace_is_ignored() {
        assert_eq!(parse(" a +  b ").unwrap(), parse("a+b").unwrap());
    }

    #[test]
    fn paper_examples_parse() {
        for s in [
            "10(0+1)*",
            "10(0*+1*)*+1000",
            "(0?1)*1",
            "0+(00+10*10?(0+1))1?",
            "(0+11)*(1+00)",
        ] {
            let r = parse(s).expect(s);
            // Round-trip through Display must preserve the AST.
            assert_eq!(parse(&r.to_string()).unwrap(), r, "round trip of {s}");
        }
    }

    #[test]
    fn errors_report_offsets() {
        assert!(parse("").is_err());
        assert!(parse("a+").is_err());
        assert!(parse("(a").is_err());
        assert!(parse("a)").is_err());
        assert!(parse("*a").is_err());
        let err = parse("a)").unwrap_err();
        assert_eq!(err.offset, 1);
    }

    fn arb_regex() -> impl Strategy<Value = Regex> {
        let leaf = prop_oneof![
            Just(Regex::Empty),
            Just(Regex::Epsilon),
            prop_oneof![Just('0'), Just('1'), Just('a'), Just('b')].prop_map(Regex::Literal),
        ];
        leaf.prop_recursive(6, 48, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(l, r)| Regex::concat(l, r)),
                (inner.clone(), inner.clone()).prop_map(|(l, r)| Regex::union(l, r)),
                inner.clone().prop_map(Regex::star),
                inner.prop_map(Regex::question),
            ]
        })
    }

    proptest! {
        /// Pretty-printing is a fixpoint of `parse ∘ to_string`: the printer
        /// flattens associativity, so we compare printed forms rather than
        /// ASTs, and additionally check language agreement via the NFA
        /// oracle on a sampled word.
        #[test]
        fn display_parse_round_trip(r in arb_regex(), word in "[01ab]{0,6}") {
            let printed = r.to_string();
            let reparsed = parse(&printed).unwrap();
            prop_assert_eq!(reparsed.to_string(), printed.clone());
            let original_nfa = crate::nfa::Nfa::compile(&r);
            let reparsed_nfa = crate::nfa::Nfa::compile(&reparsed);
            prop_assert_eq!(
                original_nfa.accepts(word.chars()),
                reparsed_nfa.accepts(word.chars()),
                "printed {}", printed
            );
        }
    }
}
