//! The regular-expression abstract syntax tree.

use std::sync::Arc;

use crate::matcher;
use crate::CostFn;

/// A regular expression over a `char` alphabet.
///
/// The grammar follows Definition 2.7 of the paper, extended with the
/// derived `?` (question-mark) constructor that Paresy synthesises as a
/// first-class operator with its own cost:
///
/// ```text
/// r ::= ∅ | ε | a | r·r | r + r | r* | r?
/// ```
///
/// Sub-expressions are reference counted ([`Arc`]) so that the bottom-up
/// reconstruction performed by the synthesiser can share sub-terms freely
/// without quadratic copying, and atomically so that finished expressions
/// can cross threads (the synthesis service hands results from worker
/// threads to waiting clients and shares them through its result cache).
///
/// # Example
///
/// ```
/// use rei_syntax::Regex;
///
/// // 10(0+1)*  — all binary strings starting with "10".
/// let r = Regex::concat(
///     Regex::word("10".chars()),
///     Regex::union(Regex::literal('0'), Regex::literal('1')).star(),
/// );
/// assert!(r.accepts("10110".chars()));
/// assert!(!r.accepts("0".chars()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Regex {
    /// The empty language `∅`.
    Empty,
    /// The language `{ε}` containing only the empty string.
    Epsilon,
    /// A single-character literal `a`.
    Literal(char),
    /// Concatenation `r·s`.
    Concat(Arc<Regex>, Arc<Regex>),
    /// Union (alternation) `r + s`.
    Union(Arc<Regex>, Arc<Regex>),
    /// Kleene star `r*`.
    Star(Arc<Regex>),
    /// Optional `r?`, i.e. the language of `ε + r`.
    Question(Arc<Regex>),
}

impl Regex {
    /// Returns the empty-language expression `∅`.
    pub fn empty() -> Self {
        Regex::Empty
    }

    /// Returns the empty-string expression `ε`.
    pub fn epsilon() -> Self {
        Regex::Epsilon
    }

    /// Returns the literal expression for character `a`.
    pub fn literal(a: char) -> Self {
        Regex::Literal(a)
    }

    /// Builds the concatenation `self · rhs` of two expressions.
    pub fn concat(lhs: Regex, rhs: Regex) -> Self {
        Regex::Concat(Arc::new(lhs), Arc::new(rhs))
    }

    /// Builds the union `lhs + rhs` of two expressions.
    pub fn union(lhs: Regex, rhs: Regex) -> Self {
        Regex::Union(Arc::new(lhs), Arc::new(rhs))
    }

    /// Wraps the expression in a Kleene star, producing `self*`.
    pub fn star(self) -> Self {
        Regex::Star(Arc::new(self))
    }

    /// Wraps the expression in a question mark, producing `self?`.
    pub fn question(self) -> Self {
        Regex::Question(Arc::new(self))
    }

    /// Builds the concatenation of the literals of `word`, or `ε` for the
    /// empty word.
    ///
    /// ```
    /// use rei_syntax::Regex;
    /// assert_eq!(Regex::word("ab".chars()).to_string(), "ab");
    /// assert_eq!(Regex::word("".chars()), Regex::Epsilon);
    /// ```
    pub fn word<I: IntoIterator<Item = char>>(word: I) -> Self {
        let mut iter = word.into_iter();
        let first = match iter.next() {
            None => return Regex::Epsilon,
            Some(c) => Regex::literal(c),
        };
        iter.fold(first, |acc, c| Regex::concat(acc, Regex::literal(c)))
    }

    /// Builds the union of all expressions in `items`, or `∅` when `items`
    /// is empty.
    ///
    /// ```
    /// use rei_syntax::Regex;
    /// let r = Regex::union_of(vec![Regex::literal('a'), Regex::literal('b')]);
    /// assert_eq!(r.to_string(), "a+b");
    /// assert_eq!(Regex::union_of(Vec::new()), Regex::Empty);
    /// ```
    pub fn union_of<I: IntoIterator<Item = Regex>>(items: I) -> Self {
        let mut iter = items.into_iter();
        let first = match iter.next() {
            None => return Regex::Empty,
            Some(r) => r,
        };
        iter.fold(first, Regex::union)
    }

    /// Builds `(a1 + a2 + ... + ak)` for the characters of `alphabet`, the
    /// expression the paper abbreviates as `Σ`. Returns `∅` for an empty
    /// alphabet.
    pub fn any_of<I: IntoIterator<Item = char>>(alphabet: I) -> Self {
        Regex::union_of(alphabet.into_iter().map(Regex::literal))
    }

    /// The cost of the expression under the cost homomorphism `costs`
    /// (Definition 3.2 of the paper).
    ///
    /// ```
    /// use rei_syntax::{parse, CostFn};
    /// let r = parse("10(0+1)*").unwrap();
    /// // 4 literals + 2 explicit concatenations are free under (1,1,1,0,0)… use uniform:
    /// assert_eq!(r.cost(&CostFn::UNIFORM), 8);
    /// ```
    pub fn cost(&self, costs: &CostFn) -> u64 {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Literal(_) => costs.literal,
            Regex::Question(r) => costs.question + r.cost(costs),
            Regex::Star(r) => costs.star + r.cost(costs),
            Regex::Concat(l, r) => costs.concat + l.cost(costs) + r.cost(costs),
            Regex::Union(l, r) => costs.union + l.cost(costs) + r.cost(costs),
        }
    }

    /// Returns `true` if the expression accepts `word`, using the
    /// Brzozowski-derivative matcher.
    ///
    /// This is the *contains-check* of the paper (Section 5.1); it is used
    /// by the AlphaRegex baseline and by tests as an oracle, while the
    /// Paresy synthesiser itself never needs it (it works on characteristic
    /// sequences instead).
    pub fn accepts<I: IntoIterator<Item = char>>(&self, word: I) -> bool {
        matcher::accepts(self, word)
    }

    /// Returns `true` if the language of the expression contains the empty
    /// string.
    ///
    /// ```
    /// use rei_syntax::parse;
    /// assert!(parse("(ab)*").unwrap().is_nullable());
    /// assert!(!parse("a(ab)*").unwrap().is_nullable());
    /// ```
    pub fn is_nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Literal(_) => false,
            Regex::Epsilon | Regex::Star(_) | Regex::Question(_) => true,
            Regex::Concat(l, r) => l.is_nullable() && r.is_nullable(),
            Regex::Union(l, r) => l.is_nullable() || r.is_nullable(),
        }
    }

    /// Returns `true` if the language of the expression is empty.
    ///
    /// Note that this is a syntactic under-approximation-free check: it is
    /// exact because `∅` can only arise from the `Empty` constructor and
    /// concatenation/star/union of empty languages.
    pub fn is_empty_language(&self) -> bool {
        match self {
            Regex::Empty => true,
            Regex::Epsilon | Regex::Literal(_) | Regex::Star(_) | Regex::Question(_) => false,
            Regex::Concat(l, r) => l.is_empty_language() || r.is_empty_language(),
            Regex::Union(l, r) => l.is_empty_language() && r.is_empty_language(),
        }
    }

    /// Iterates over all distinct literal characters occurring in the
    /// expression, in ascending order.
    ///
    /// ```
    /// use rei_syntax::parse;
    /// let r = parse("b(a+c)*").unwrap();
    /// assert_eq!(r.literals(), vec!['a', 'b', 'c']);
    /// ```
    pub fn literals(&self) -> Vec<char> {
        let mut out = Vec::new();
        self.collect_literals(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_literals(&self, out: &mut Vec<char>) {
        match self {
            Regex::Empty | Regex::Epsilon => {}
            Regex::Literal(a) => out.push(*a),
            Regex::Star(r) | Regex::Question(r) => r.collect_literals(out),
            Regex::Concat(l, r) | Regex::Union(l, r) => {
                l.collect_literals(out);
                r.collect_literals(out);
            }
        }
    }
}

impl Default for Regex {
    /// The default expression is `∅`, the unit of union.
    fn default() -> Self {
        Regex::Empty
    }
}

impl From<char> for Regex {
    fn from(a: char) -> Self {
        Regex::Literal(a)
    }
}

impl From<&str> for Regex {
    /// Converts a plain string into the concatenation of its characters.
    /// This does **not** parse operators; use [`crate::parse`] for that.
    fn from(word: &str) -> Self {
        Regex::word(word.chars())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_of_empty_string_is_epsilon() {
        assert_eq!(Regex::word("".chars()), Regex::Epsilon);
    }

    #[test]
    fn word_builds_left_nested_concat() {
        let r = Regex::word("abc".chars());
        assert_eq!(r.to_string(), "abc");
        assert!(r.accepts("abc".chars()));
        assert!(!r.accepts("ab".chars()));
    }

    #[test]
    fn union_of_empty_iterator_is_empty_language() {
        assert_eq!(Regex::union_of(Vec::new()), Regex::Empty);
    }

    #[test]
    fn any_of_binary_alphabet() {
        let r = Regex::any_of(['0', '1']);
        assert!(r.accepts("0".chars()));
        assert!(r.accepts("1".chars()));
        assert!(!r.accepts("01".chars()));
        assert!(!r.accepts("".chars()));
    }

    #[test]
    fn nullability() {
        assert!(Regex::Epsilon.is_nullable());
        assert!(!Regex::Empty.is_nullable());
        assert!(!Regex::literal('a').is_nullable());
        assert!(Regex::literal('a').star().is_nullable());
        assert!(Regex::literal('a').question().is_nullable());
        assert!(Regex::union(Regex::Epsilon, Regex::literal('a')).is_nullable());
        assert!(!Regex::concat(Regex::literal('a'), Regex::Epsilon.star()).is_nullable());
    }

    #[test]
    fn empty_language_detection() {
        assert!(Regex::Empty.is_empty_language());
        assert!(Regex::concat(Regex::Empty, Regex::literal('a')).is_empty_language());
        assert!(!Regex::union(Regex::Empty, Regex::literal('a')).is_empty_language());
        assert!(!Regex::Empty.star().is_empty_language());
    }

    #[test]
    fn cost_of_nested_expression() {
        let costs = CostFn::new(1, 2, 7, 2, 19);
        // (a+b)* : two literals (1+1), one union (+19), one star (+7) = 28.
        let r = Regex::union(Regex::literal('a'), Regex::literal('b')).star();
        assert_eq!(r.cost(&costs), 28);
    }

    #[test]
    fn from_str_is_literal_word() {
        let r = Regex::from("01");
        assert!(r.accepts("01".chars()));
        assert!(!r.accepts("0+1".chars()));
    }

    #[test]
    fn literals_are_sorted_and_deduplicated() {
        let r = Regex::from("banana");
        assert_eq!(r.literals(), vec!['a', 'b', 'n']);
    }

    #[test]
    fn default_is_empty() {
        assert_eq!(Regex::default(), Regex::Empty);
    }
}
