//! A Brzozowski-derivative matcher (the *contains-check* of the paper).
//!
//! The Paresy synthesiser never needs a contains-check — it decides
//! membership via characteristic sequences — but the AlphaRegex baseline,
//! the benchmark harness and the test oracles do. Derivatives keep the
//! implementation purely syntactic and alphabet-agnostic.
//!
//! To avoid the classical blow-up of naive derivatives, the derivative is
//! computed with *smart constructors* that apply the similarity rules of
//! Brzozowski (identities of `∅`, `ε`, idempotent/commutative-free union
//! collapsing of syntactically equal operands, and star/question
//! flattening).

use std::sync::Arc;

use crate::Regex;

/// Returns `true` if `regex` accepts the word given by `word`.
///
/// # Example
///
/// ```
/// use rei_syntax::{matcher, parse};
///
/// let r = parse("(0+11)*1").unwrap();
/// assert!(matcher::accepts(&r, "111".chars()));
/// assert!(!matcher::accepts(&r, "110".chars()));
/// ```
pub fn accepts<I: IntoIterator<Item = char>>(regex: &Regex, word: I) -> bool {
    let mut current = regex.clone();
    for c in word {
        current = derivative(&current, c);
        if current.is_empty_language() {
            return false;
        }
    }
    current.is_nullable()
}

/// The Brzozowski derivative of `regex` with respect to character `a`:
/// the expression whose language is `{ w | a·w ∈ L(regex) }`.
///
/// # Example
///
/// ```
/// use rei_syntax::{matcher::derivative, parse};
///
/// let r = parse("ab+ac").unwrap();
/// let d = derivative(&r, 'a');
/// assert!(d.accepts("b".chars()));
/// assert!(d.accepts("c".chars()));
/// assert!(!d.accepts("a".chars()));
/// ```
pub fn derivative(regex: &Regex, a: char) -> Regex {
    match regex {
        Regex::Empty | Regex::Epsilon => Regex::Empty,
        Regex::Literal(b) => {
            if *b == a {
                Regex::Epsilon
            } else {
                Regex::Empty
            }
        }
        Regex::Concat(l, r) => {
            let dl_r = smart_concat(derivative(l, a), (**r).clone());
            if l.is_nullable() {
                smart_union(dl_r, derivative(r, a))
            } else {
                dl_r
            }
        }
        Regex::Union(l, r) => smart_union(derivative(l, a), derivative(r, a)),
        Regex::Star(inner) => smart_concat(derivative(inner, a), Regex::Star(Arc::clone(inner))),
        Regex::Question(inner) => derivative(inner, a),
    }
}

/// Concatenation with the similarity rules `∅·r = r·∅ = ∅` and
/// `ε·r = r·ε = r` applied.
pub(crate) fn smart_concat(l: Regex, r: Regex) -> Regex {
    match (&l, &r) {
        (Regex::Empty, _) | (_, Regex::Empty) => Regex::Empty,
        (Regex::Epsilon, _) => r,
        (_, Regex::Epsilon) => l,
        _ => Regex::concat(l, r),
    }
}

/// Union with the similarity rules `∅ + r = r + ∅ = r` and `r + r = r`
/// (for syntactically identical operands) applied.
pub(crate) fn smart_union(l: Regex, r: Regex) -> Regex {
    match (&l, &r) {
        (Regex::Empty, _) => r,
        (_, Regex::Empty) => l,
        _ if l == r => l,
        _ => Regex::union(l, r),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use proptest::prelude::*;

    #[test]
    fn accepts_basic_words() {
        let r = parse("10(0+1)*").unwrap();
        for pos in ["10", "101", "100", "1010", "1011", "1000", "1001"] {
            assert!(accepts(&r, pos.chars()), "{pos} should be accepted");
        }
        for neg in ["", "0", "1", "00", "11", "010"] {
            assert!(!accepts(&r, neg.chars()), "{neg} should be rejected");
        }
    }

    #[test]
    fn empty_and_epsilon() {
        assert!(!accepts(&Regex::Empty, "".chars()));
        assert!(accepts(&Regex::Epsilon, "".chars()));
        assert!(!accepts(&Regex::Epsilon, "a".chars()));
    }

    #[test]
    fn star_accepts_zero_and_many() {
        let r = parse("(ab)*").unwrap();
        assert!(accepts(&r, "".chars()));
        assert!(accepts(&r, "abab".chars()));
        assert!(!accepts(&r, "aba".chars()));
    }

    #[test]
    fn question_accepts_zero_or_one() {
        let r = parse("a?b").unwrap();
        assert!(accepts(&r, "ab".chars()));
        assert!(accepts(&r, "b".chars()));
        assert!(!accepts(&r, "aab".chars()));
    }

    #[test]
    fn derivative_of_star_unrolls_once() {
        let r = parse("(01)*").unwrap();
        let d = derivative(&r, '0');
        assert!(d.accepts("1".chars()));
        assert!(d.accepts("101".chars()));
        assert!(!d.accepts("".chars()));
    }

    #[test]
    fn smart_constructors_collapse_units() {
        assert_eq!(
            smart_concat(Regex::Empty, Regex::literal('a')),
            Regex::Empty
        );
        assert_eq!(
            smart_concat(Regex::Epsilon, Regex::literal('a')),
            Regex::literal('a')
        );
        assert_eq!(
            smart_union(Regex::Empty, Regex::literal('a')),
            Regex::literal('a')
        );
        assert_eq!(
            smart_union(Regex::literal('a'), Regex::literal('a')),
            Regex::literal('a')
        );
    }

    #[test]
    fn non_binary_alphabet() {
        let r = parse("x(y+z)*w").unwrap();
        assert!(accepts(&r, "xw".chars()));
        assert!(accepts(&r, "xyzyw".chars()));
        assert!(!accepts(&r, "xy".chars()));
    }

    proptest! {
        /// For random words, the derivative matcher agrees with the NFA
        /// matcher (an independent implementation).
        #[test]
        fn agrees_with_nfa(expr in "[01+*?()]{0,12}", word in "[01]{0,8}") {
            if let Ok(r) = parse(&expr) {
                let nfa = crate::nfa::Nfa::compile(&r);
                prop_assert_eq!(
                    accepts(&r, word.chars()),
                    nfa.accepts(word.chars()),
                    "expr {} word {}", r, word
                );
            }
        }
    }
}
