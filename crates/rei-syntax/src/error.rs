//! Error types for the syntax crate.

use std::error::Error;
use std::fmt;

/// An error produced while parsing the concrete regular-expression syntax.
///
/// The error reports the byte offset of the offending character in the
/// input together with a human readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input at which the error was detected.
    pub offset: usize,
    /// Description of what went wrong.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(offset: usize, message: impl Into<String>) -> Self {
        ParseError {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at offset {}: {}", self.offset, self.message)
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_offset_and_message() {
        let e = ParseError::new(3, "unexpected ')'");
        assert_eq!(e.to_string(), "parse error at offset 3: unexpected ')'");
    }
}
