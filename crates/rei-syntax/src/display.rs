//! Precedence-aware pretty printing of regular expressions.
//!
//! The printer produces the concrete syntax accepted by [`crate::parse`], so
//! `parse(r.to_string())` round-trips for every expression `r` (verified by a
//! property test in the `parse` module).

use std::fmt;

use crate::Regex;

/// Binding strength of each syntactic level; larger binds tighter.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Prec {
    /// Union `r + s`.
    Union = 0,
    /// Concatenation `r s`.
    Concat = 1,
    /// Postfix `*` and `?`.
    Postfix = 2,
    /// Literals, `∅`, `ε` and parenthesised groups.
    Atom = 3,
}

fn write_prec(r: &Regex, min: Prec, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let own = match r {
        Regex::Union(..) => Prec::Union,
        Regex::Concat(..) => Prec::Concat,
        Regex::Star(..) | Regex::Question(..) => Prec::Postfix,
        Regex::Empty | Regex::Epsilon | Regex::Literal(_) => Prec::Atom,
    };
    let needs_parens = own < min;
    if needs_parens {
        f.write_str("(")?;
    }
    match r {
        Regex::Empty => f.write_str("∅")?,
        Regex::Epsilon => f.write_str("ε")?,
        Regex::Literal(a) => write!(f, "{a}")?,
        Regex::Union(l, rr) => {
            write_prec(l, Prec::Union, f)?;
            f.write_str("+")?;
            write_prec(rr, Prec::Union, f)?;
        }
        Regex::Concat(l, rr) => {
            write_prec(l, Prec::Concat, f)?;
            write_prec(rr, Prec::Concat, f)?;
        }
        Regex::Star(inner) => {
            write_prec(inner, Prec::Postfix, f)?;
            f.write_str("*")?;
        }
        Regex::Question(inner) => {
            write_prec(inner, Prec::Postfix, f)?;
            f.write_str("?")?;
        }
    }
    if needs_parens {
        f.write_str(")")?;
    }
    Ok(())
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_prec(self, Prec::Union, f)
    }
}

#[cfg(test)]
mod tests {
    use crate::Regex;

    #[test]
    fn atoms() {
        assert_eq!(Regex::Empty.to_string(), "∅");
        assert_eq!(Regex::Epsilon.to_string(), "ε");
        assert_eq!(Regex::literal('a').to_string(), "a");
    }

    #[test]
    fn union_is_flat() {
        let r = Regex::union(
            Regex::literal('a'),
            Regex::union(Regex::literal('b'), Regex::literal('c')),
        );
        assert_eq!(r.to_string(), "a+b+c");
    }

    #[test]
    fn concat_binds_tighter_than_union() {
        let r = Regex::concat(
            Regex::union(Regex::literal('a'), Regex::literal('b')),
            Regex::literal('c'),
        );
        assert_eq!(r.to_string(), "(a+b)c");
        let r = Regex::union(
            Regex::concat(Regex::literal('a'), Regex::literal('b')),
            Regex::literal('c'),
        );
        assert_eq!(r.to_string(), "ab+c");
    }

    #[test]
    fn star_of_compound_needs_parens() {
        let r = Regex::union(Regex::literal('0'), Regex::literal('1')).star();
        assert_eq!(r.to_string(), "(0+1)*");
        let r = Regex::concat(Regex::literal('a'), Regex::literal('b')).star();
        assert_eq!(r.to_string(), "(ab)*");
        let r = Regex::literal('a').star().star();
        assert_eq!(r.to_string(), "a**");
    }

    #[test]
    fn question_prints_postfix() {
        let r = Regex::concat(Regex::literal('0').question(), Regex::literal('1')).star();
        assert_eq!(r.to_string(), "(0?1)*");
    }

    #[test]
    fn paper_intro_expression() {
        // 10(0+1)* from the introduction of the paper.
        let r = Regex::concat(Regex::word("10".chars()), Regex::any_of(['0', '1']).star());
        assert_eq!(r.to_string(), "10(0+1)*");
    }
}
