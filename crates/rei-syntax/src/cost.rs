//! Cost homomorphisms (Definition 3.2 of the paper).

use std::fmt;

/// A cost homomorphism assigning strictly positive integer costs to each
/// regular constructor.
///
/// Following the paper's convention, a cost function is written as the
/// 5-tuple `(cost(a), cost(?), cost(*), cost(·), cost(+))`; for example in
/// `(5, 2, 7, 2, 19)` the Kleene star costs 7. The constants `∅`, `ε` and
/// every literal share the same cost `literal`.
///
/// # Example
///
/// ```
/// use rei_syntax::{parse, CostFn};
///
/// let star_expensive = CostFn::new(1, 1, 10, 1, 1);
/// let r = parse("(0+1)*").unwrap();
/// assert_eq!(r.cost(&star_expensive), 13);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CostFn {
    /// Cost of `∅`, `ε` and each literal character.
    pub literal: u64,
    /// Additional cost of the `?` constructor.
    pub question: u64,
    /// Additional cost of the Kleene star.
    pub star: u64,
    /// Additional cost of concatenation.
    pub concat: u64,
    /// Additional cost of union.
    pub union: u64,
}

impl CostFn {
    /// The uniform cost function `(1, 1, 1, 1, 1)` used as the reference
    /// ordering throughout the paper's evaluation.
    pub const UNIFORM: CostFn = CostFn::new(1, 1, 1, 1, 1);

    /// The cost function used by AlphaRegex's published examples, in which
    /// every constructor weighs the same and literal atoms cost 5; the
    /// paper reports AlphaRegex costs on this scale in Table 2.
    pub const ALPHAREGEX: CostFn = CostFn::new(5, 5, 5, 5, 5);

    /// Creates a cost homomorphism from the paper's 5-tuple order
    /// `(cost(a), cost(?), cost(*), cost(·), cost(+))`.
    ///
    /// # Panics
    ///
    /// Panics if any component is zero: Definition 3.2 requires all costs to
    /// be strictly positive (otherwise bottom-up search by increasing cost
    /// does not terminate).
    pub const fn new(literal: u64, question: u64, star: u64, concat: u64, union: u64) -> Self {
        assert!(
            literal > 0 && question > 0 && star > 0 && concat > 0 && union > 0,
            "cost homomorphism components must be strictly positive"
        );
        CostFn {
            literal,
            question,
            star,
            concat,
            union,
        }
    }

    /// Creates a cost homomorphism from a 5-element array in the paper's
    /// tuple order.
    pub const fn from_tuple(t: [u64; 5]) -> Self {
        CostFn::new(t[0], t[1], t[2], t[3], t[4])
    }

    /// Returns the 5-tuple `(literal, question, star, concat, union)`.
    pub const fn as_tuple(&self) -> [u64; 5] {
        [
            self.literal,
            self.question,
            self.star,
            self.concat,
            self.union,
        ]
    }

    /// The smallest additional cost of any unary or binary constructor.
    ///
    /// The OnTheFly mode of the synthesiser uses this value to know how far
    /// below the target cost the operands of a new language can lie (paper,
    /// Section 3, "OnTheFly mode").
    pub fn min_constructor_cost(&self) -> u64 {
        self.question
            .min(self.star)
            .min(self.concat)
            .min(self.union)
    }

    /// The largest component of the tuple; useful for sizing caches.
    pub fn max_component(&self) -> u64 {
        self.literal
            .max(self.question)
            .max(self.star)
            .max(self.concat)
            .max(self.union)
    }
}

impl Default for CostFn {
    fn default() -> Self {
        CostFn::UNIFORM
    }
}

impl fmt::Display for CostFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({}, {}, {}, {}, {})",
            self.literal, self.question, self.star, self.concat, self.union
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_tuple_order() {
        let c = CostFn::new(5, 2, 7, 2, 19);
        assert_eq!(c.to_string(), "(5, 2, 7, 2, 19)");
    }

    #[test]
    fn tuple_round_trip() {
        let c = CostFn::from_tuple([3, 1, 4, 1, 5]);
        assert_eq!(c.as_tuple(), [3, 1, 4, 1, 5]);
    }

    #[test]
    fn min_constructor_cost_ignores_literal() {
        let c = CostFn::new(1, 9, 8, 7, 6);
        assert_eq!(c.min_constructor_cost(), 6);
        assert_eq!(c.max_component(), 9);
    }

    #[test]
    fn default_is_uniform() {
        assert_eq!(CostFn::default(), CostFn::UNIFORM);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn zero_cost_is_rejected() {
        let _ = CostFn::new(1, 0, 1, 1, 1);
    }
}
