//! Shared fixtures for the Criterion benchmark suite.
//!
//! Each bench target in `benches/` regenerates one table or figure of the
//! paper (`figure1`, `table1`, `table2`, `error_table`) or measures the
//! substrate (`micro_ops`, `ablation`); this library only provides the
//! specifications they operate on so that all targets measure the same
//! inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rei_lang::Spec;

/// The introductory example of the paper: learn `10(0+1)*`.
pub fn intro_spec() -> Spec {
    Spec::from_strs(
        ["10", "101", "100", "1010", "1011", "1000", "1001"],
        ["", "0", "1", "00", "11", "010"],
    )
    .expect("intro example sets are disjoint")
}

/// Example 3.6 of the paper: the specification whose minimal uniform-cost
/// solution is `(0?1)*1`.
pub fn example_3_6_spec() -> Spec {
    Spec::from_strs(["1", "011", "1011", "11011"], ["", "10", "101", "0011"])
        .expect("example 3.6 sets are disjoint")
}

/// The Section 5.2 specification used for the allowed-error table.
pub fn error_table_spec() -> Spec {
    rei_bench::harness::paper_error_spec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_have_the_published_sizes() {
        assert_eq!(intro_spec().len(), 13);
        assert_eq!(example_3_6_spec().len(), 8);
        assert_eq!(error_table_spec().len(), 22);
    }
}
