//! Table 1: sequential (CPU) backend versus data-parallel (simulated GPU)
//! backend on the same specification, plus a thread-scaling ablation.
//!
//! Each backend's session is created once outside the measured loop, so
//! the timings cover synthesis only — device setup is the session's
//! one-off cost, exactly as in the production API.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bench::{example_3_6_spec, intro_spec};
use rei_core::{BackendChoice, SynthConfig, SynthSession};
use rei_syntax::CostFn;

fn session(backend: BackendChoice) -> SynthSession {
    SynthSession::new(SynthConfig::new(CostFn::UNIFORM).with_backend(backend))
        .expect("bench config is valid")
}

fn backends_on_fixed_specs(c: &mut Criterion) {
    let specs = [("intro", intro_spec()), ("example_3_6", example_3_6_spec())];
    let mut group = c.benchmark_group("table1/backends");
    group.sample_size(10);
    for (name, spec) in &specs {
        group.bench_with_input(BenchmarkId::new("cpu_sequential", name), spec, |b, spec| {
            let mut session = session(BackendChoice::Sequential);
            b.iter(|| session.run(std::hint::black_box(spec)).expect("solves"));
        });
        group.bench_with_input(
            BenchmarkId::new("gpu_sim_parallel", name),
            spec,
            |b, spec| {
                let mut session = session(BackendChoice::parallel());
                b.iter(|| session.run(std::hint::black_box(spec)).expect("solves"));
            },
        );
    }
    group.finish();
}

fn thread_scaling(c: &mut Criterion) {
    let spec = intro_spec();
    let mut group = c.benchmark_group("table1/thread_scaling");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let mut session = session(BackendChoice::DeviceParallel {
                    threads: Some(threads),
                });
                b.iter(|| session.run(std::hint::black_box(&spec)).expect("solves"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, backends_on_fixed_specs, thread_scaling);
criterion_main!(benches);
