//! Table 1: sequential (CPU) engine versus data-parallel (simulated GPU)
//! engine on the same specification, plus a thread-scaling ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bench::{example_3_6_spec, intro_spec};
use rei_core::{Engine, Synthesizer};
use rei_syntax::CostFn;

fn engines_on_fixed_specs(c: &mut Criterion) {
    let specs = [("intro", intro_spec()), ("example_3_6", example_3_6_spec())];
    let mut group = c.benchmark_group("table1/engines");
    group.sample_size(10);
    for (name, spec) in &specs {
        group.bench_with_input(BenchmarkId::new("cpu_sequential", name), spec, |b, spec| {
            let synth = Synthesizer::new(CostFn::UNIFORM);
            b.iter(|| synth.run(std::hint::black_box(spec)).expect("solves"));
        });
        group.bench_with_input(BenchmarkId::new("gpu_sim_parallel", name), spec, |b, spec| {
            let synth = Synthesizer::new(CostFn::UNIFORM).with_engine(Engine::parallel());
            b.iter(|| synth.run(std::hint::black_box(spec)).expect("solves"));
        });
    }
    group.finish();
}

fn thread_scaling(c: &mut Criterion) {
    let spec = intro_spec();
    let mut group = c.benchmark_group("table1/thread_scaling");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &threads| {
            let synth = Synthesizer::new(CostFn::UNIFORM)
                .with_engine(Engine::parallel_with_threads(threads));
            b.iter(|| synth.run(std::hint::black_box(&spec)).expect("solves"));
        });
    }
    group.finish();
}

criterion_group!(benches, engines_on_fixed_specs, thread_scaling);
criterion_main!(benches);
