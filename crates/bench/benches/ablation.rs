//! Ablations of the repo's staging design choices: guide-table staging
//! and the choice of uniqueness structure, measured on a whole synthesis
//! run rather than a single kernel (see `micro_ops` for the per-kernel
//! numbers, including mask-based vs gather concatenation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bench::{error_table_spec, example_3_6_spec};
use gpu_sim::hashset::{LockFreeU64Set, ShardedSet};
use rei_core::Synthesizer;
use rei_lang::{csops, Cs, GuideMasks, GuideTable, InfixClosure};
use rei_syntax::{parse, CostFn};

/// Staged split tables (mask-based and pair-based) vs. on-the-fly split
/// enumeration, amortised over the number of concatenations a real level
/// performs.
fn guide_table_staging(c: &mut Criterion) {
    let spec = error_table_spec();
    let ic = InfixClosure::of_spec(&spec);
    let gt = GuideTable::build(&ic);
    let gm = GuideMasks::build(&ic);
    let operands: Vec<Cs> = ["0", "1", "0?1", "(0+1)(0+1)", "1(0+1)*", "(0+11)*1"]
        .iter()
        .map(|e| ic.cs_of_regex(&parse(e).unwrap()))
        .collect();
    let mut group = c.benchmark_group("ablation/guide_table");
    group.bench_function("masked_36_concats", |b| {
        let mut dst = Cs::zero(ic.width());
        b.iter(|| {
            for l in &operands {
                for r in &operands {
                    csops::concat_into(dst.blocks_mut(), l.blocks(), r.blocks(), &gm);
                }
            }
        })
    });
    group.bench_function("staged_36_concats", |b| {
        let mut dst = Cs::zero(ic.width());
        b.iter(|| {
            for l in &operands {
                for r in &operands {
                    csops::concat_into_gather(dst.blocks_mut(), l.blocks(), r.blocks(), &gt);
                }
            }
        })
    });
    group.bench_function("unstaged_36_concats", |b| {
        let mut dst = Cs::zero(ic.width());
        b.iter(|| {
            for l in &operands {
                for r in &operands {
                    csops::concat_into_unstaged(dst.blocks_mut(), l.blocks(), r.blocks(), &ic);
                }
            }
        })
    });
    // Include the one-off staging costs themselves for context.
    group.bench_function("staging_cost", |b| b.iter(|| GuideTable::build(&ic)));
    group.bench_function("mask_staging_cost", |b| b.iter(|| GuideMasks::build(&ic)));
    group.finish();
}

/// Lock-free open addressing vs. sharded exact set, the two uniqueness
/// structures the engines can use.
fn uniqueness_structures(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/uniqueness");
    let keys: Vec<u64> = (0..20_000u64)
        .map(|k| k.wrapping_mul(0x9E3779B97F4A7C15))
        .collect();
    group.bench_function("lockfree_u64", |b| {
        b.iter(|| {
            let set = LockFreeU64Set::with_capacity(keys.len() * 2);
            for &k in &keys {
                std::hint::black_box(set.insert(k));
            }
        })
    });
    group.bench_function("sharded_exact", |b| {
        b.iter(|| {
            let set = ShardedSet::new(64);
            for &k in &keys {
                std::hint::black_box(set.insert(&[k]));
            }
        })
    });
    group.finish();
}

/// Memory-budget ablation: the same synthesis with a cache budget large
/// enough to never overflow versus one that forces OnTheFly mode.
fn memory_budget(c: &mut Criterion) {
    let spec = example_3_6_spec();
    let mut group = c.benchmark_group("ablation/memory_budget");
    group.sample_size(10);
    for (label, bytes) in [
        ("roomy_64MiB", 64 * 1024 * 1024),
        ("tight_64KiB", 64 * 1024),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &bytes, |b, &bytes| {
            let synth = Synthesizer::new(CostFn::UNIFORM).with_memory_budget(bytes);
            b.iter(|| {
                // A tight budget may legitimately end in OutOfMemory; the
                // ablation measures the time to either outcome.
                let _ = synth.run(std::hint::black_box(&spec));
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    guide_table_staging,
    uniqueness_structures,
    memory_budget
);
criterion_main!(benches);
