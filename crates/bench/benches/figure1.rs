//! Figure 1: sensitivity of synthesis time to the cost function.
//!
//! The paper sweeps 3325 random benchmarks over 12 cost functions on an
//! A100; this Criterion target measures the same sweep shape on a fixed,
//! seeded quick-scale pool (see `rei_bench::harness::run_figure1` and the
//! `reproduce figure1 --full` binary for the paper-scale run).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bench::intro_spec;
use rei_bench::costs::PAPER_COST_FUNCTIONS;
use rei_bench::harness::{run_figure1, HarnessConfig};
use rei_core::Synthesizer;

/// One synthesis of the intro example per cost function: the per-cost-curve
/// of Figure 1 in miniature.
fn cost_function_sensitivity(c: &mut Criterion) {
    let spec = intro_spec();
    let mut group = c.benchmark_group("figure1/cost_functions");
    group.sample_size(10);
    for named in PAPER_COST_FUNCTIONS {
        group.bench_with_input(
            BenchmarkId::from_parameter(named.label),
            &named,
            |b, named| {
                let synth = Synthesizer::new(named.costs);
                b.iter(|| {
                    synth
                        .run(std::hint::black_box(&spec))
                        .expect("intro example solves")
                });
            },
        );
    }
    group.finish();
}

/// The full quick-scale sweep (pool × 12 cost functions), as one sample.
fn quick_sweep(c: &mut Criterion) {
    let config = HarnessConfig::quick();
    let mut group = c.benchmark_group("figure1/sweep");
    group.sample_size(10);
    group.bench_function("quick_pool_x12", |b| {
        b.iter(|| run_figure1(std::hint::black_box(&config)))
    });
    group.finish();
}

criterion_group!(benches, cost_function_sensitivity, quick_sweep);
criterion_main!(benches);
