//! The allowed-error table of Section 5.2: synthesis cost as a function of
//! the allowed error, on the paper's own specification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bench::error_table_spec;
use rei_core::Synthesizer;
use rei_syntax::CostFn;

fn allowed_error_sweep(c: &mut Criterion) {
    let spec = error_table_spec();
    let mut group = c.benchmark_group("error_table");
    group.sample_size(10);
    // The exact end of the sweep (0-10 %) needs millions to billions of
    // candidates and is exercised by `reproduce error --full` instead.
    for percent in [15u32, 20, 25, 30, 40, 50] {
        group.bench_with_input(
            BenchmarkId::from_parameter(percent),
            &percent,
            |b, &percent| {
                let synth =
                    Synthesizer::new(CostFn::UNIFORM).with_allowed_error(percent as f64 / 100.0);
                b.iter(|| {
                    synth
                        .run(std::hint::black_box(&spec))
                        .expect("relaxed spec solves")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, allowed_error_sweep);
criterion_main!(benches);
