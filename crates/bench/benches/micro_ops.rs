//! Micro-benchmarks of the substrate operations the search is built from:
//! infix-closure construction, guide-table staging, the semiring kernels on
//! characteristic sequences and the uniqueness set.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use bench::{error_table_spec, example_3_6_spec, intro_spec};
use gpu_sim::hashset::LockFreeU64Set;
use gpu_sim::Device;
use rei_core::{BackendChoice, SynthConfig, SynthSession};
use rei_lang::{csops, Cs, GuideMasks, GuideTable, InfixClosure, SatisfyMasks, Word};
use rei_syntax::{parse, CostFn};

fn substrate_construction(c: &mut Criterion) {
    let spec = error_table_spec();
    let mut group = c.benchmark_group("substrate");
    group.bench_function("infix_closure_build", |b| {
        b.iter(|| InfixClosure::of_spec(std::hint::black_box(&spec)))
    });
    let ic = InfixClosure::of_spec(&spec);
    group.bench_function("guide_table_build", |b| {
        b.iter(|| GuideTable::build(std::hint::black_box(&ic)))
    });
    group.bench_function("guide_masks_build", |b| {
        b.iter(|| GuideMasks::build(std::hint::black_box(&ic)))
    });
    group.finish();
}

fn cs_kernels(c: &mut Criterion) {
    let spec = example_3_6_spec();
    let ic = InfixClosure::of_spec(&spec);
    let gt = GuideTable::build(&ic);
    let gm = GuideMasks::build(&ic);
    let a = ic.cs_of_regex(&parse("(0?1)*").unwrap());
    let b_cs = ic.cs_of_regex(&parse("1(0+1)?").unwrap());
    let eps = ic.eps_index().unwrap();
    let width = ic.width();

    let mut group = c.benchmark_group("cs_kernels");
    group.bench_function("union", |b| {
        let mut dst = Cs::zero(width);
        b.iter(|| csops::or_into(dst.blocks_mut(), a.blocks(), b_cs.blocks()))
    });
    // The three concatenation kernels, fastest to slowest: the mask-based
    // hot path, the split gather it replaced, and the unstaged baseline.
    group.bench_function("concat_masked", |b| {
        let mut dst = Cs::zero(width);
        b.iter(|| csops::concat_into(dst.blocks_mut(), a.blocks(), b_cs.blocks(), &gm))
    });
    group.bench_function("concat_gather", |b| {
        let mut dst = Cs::zero(width);
        b.iter(|| csops::concat_into_gather(dst.blocks_mut(), a.blocks(), b_cs.blocks(), &gt))
    });
    group.bench_function("concat_unstaged", |b| {
        let mut dst = Cs::zero(width);
        b.iter(|| csops::concat_into_unstaged(dst.blocks_mut(), a.blocks(), b_cs.blocks(), &ic))
    });
    // Star by squaring (over the mask table) against the linear fixed
    // point (over the pair table) it replaced.
    group.bench_function("star_squared", |b| {
        let mut dst = Cs::zero(width);
        let mut scratch = vec![0u64; width.blocks()];
        b.iter(|| csops::star_into(dst.blocks_mut(), a.blocks(), &gm, eps, &mut scratch))
    });
    group.bench_function("star_linear", |b| {
        let mut dst = Cs::zero(width);
        let mut scratch = vec![0u64; width.blocks()];
        b.iter(|| csops::star_into_linear(dst.blocks_mut(), a.blocks(), &gt, eps, &mut scratch))
    });
    group.finish();
}

fn simd_kernels(c: &mut Criterion) {
    // The SIMD kernel tier against its pinned-scalar references, on a
    // closure wide enough (32 blocks) for the lane paths to engage. The
    // Table 1 closures fit in one block, so `cs_kernels` above always
    // exercises the scalar kernels; these rows measure what the runtime
    // tier probe buys on wide rows. On scalar-tier hosts both sides run
    // the same code and the pairs should read as equal.
    let ic = InfixClosure::of_words((0..=10u32).flat_map(|len| {
        (0..(1u32 << len)).map(move |bits| {
            Word::new((0..len).map(|i| if bits >> i & 1 == 1 { '1' } else { '0' }))
        })
    }));
    let gm = GuideMasks::build(&ic);
    let a = ic.cs_of_regex(&parse("(0?1)*").unwrap());
    let b_cs = ic.cs_of_regex(&parse("1(0+1)?").unwrap());
    let neg = ic.cs_of_regex(&parse("(10)*").unwrap());
    let eps = ic.eps_index().unwrap();
    let width = ic.width();

    let mut group = c.benchmark_group("simd_kernels");
    group.bench_function("concat_scalar", |b| {
        let mut dst = Cs::zero(width);
        b.iter(|| csops::concat_into_scalar(dst.blocks_mut(), a.blocks(), b_cs.blocks(), &gm))
    });
    group.bench_function("concat_simd", |b| {
        let mut dst = Cs::zero(width);
        b.iter(|| csops::concat_into_simd(dst.blocks_mut(), a.blocks(), b_cs.blocks(), &gm))
    });
    group.bench_function("star_scalar", |b| {
        let mut dst = Cs::zero(width);
        let mut scratch = vec![0u64; width.blocks()];
        b.iter(|| csops::star_into_scalar(dst.blocks_mut(), a.blocks(), &gm, eps, &mut scratch))
    });
    group.bench_function("star_simd", |b| {
        let mut dst = Cs::zero(width);
        let mut scratch = vec![0u64; width.blocks()];
        b.iter(|| csops::star_into_simd(dst.blocks_mut(), a.blocks(), &gm, eps, &mut scratch))
    });
    group.bench_function("satisfy_fold_scalar", |b| {
        b.iter(|| {
            std::hint::black_box(csops::satisfies_scalar(
                std::hint::black_box(a.blocks()),
                b_cs.blocks(),
                neg.blocks(),
            ));
            std::hint::black_box(csops::misclassified_scalar(
                std::hint::black_box(a.blocks()),
                b_cs.blocks(),
                neg.blocks(),
            ))
        })
    });
    group.bench_function("satisfy_fold_simd", |b| {
        b.iter(|| {
            std::hint::black_box(csops::satisfies_simd(
                std::hint::black_box(a.blocks()),
                b_cs.blocks(),
                neg.blocks(),
            ));
            std::hint::black_box(csops::misclassified_simd(
                std::hint::black_box(a.blocks()),
                b_cs.blocks(),
                neg.blocks(),
            ))
        })
    });
    group.finish();
}

fn admission_prefilter(c: &mut Criterion) {
    // The two phases of the admission check on a mixed bag of rows: the
    // single-block prefilter reject against the full per-block fold it
    // short-circuits.
    let spec = example_3_6_spec();
    let ic = InfixClosure::of_spec(&spec);
    let masks = SatisfyMasks::new(&spec, &ic);
    let prefilter = masks.prefilter();
    let rows: Vec<Cs> = ["0", "1", "01", "(0+1)(0+1)", "1(0+1)*", "(0?1)*", "(10)*"]
        .iter()
        .map(|e| ic.cs_of_regex(&parse(e).unwrap()))
        .collect();

    let mut group = c.benchmark_group("prefilter");
    group.bench_function("prefilter_reject", |b| {
        b.iter(|| {
            for row in &rows {
                std::hint::black_box(prefilter.rejects(std::hint::black_box(row.blocks()), 0));
            }
        })
    });
    group.bench_function("full_misclassified", |b| {
        b.iter(|| {
            for row in &rows {
                std::hint::black_box(masks.misclassified(std::hint::black_box(row.blocks())));
            }
        })
    });
    group.finish();
}

fn level_scheduler_sweep(c: &mut Criterion) {
    // End-to-end effect of the level-execution knobs on one spec: the
    // work-stealing claim size on the thread-parallel backend and the
    // streamed chunk bound on the sequential driver.
    let spec = intro_spec();
    let mut group = c.benchmark_group("level_scheduler");
    for sched_chunk in [16usize, 64, 256] {
        group.bench_function(format!("threads2_sched_chunk_{sched_chunk}"), |b| {
            let config = SynthConfig::new(CostFn::UNIFORM)
                .with_backend(BackendChoice::ThreadParallel { threads: Some(2) })
                .with_sched_chunk(sched_chunk);
            let mut session = SynthSession::new(config).unwrap();
            b.iter(|| std::hint::black_box(session.run(&spec).unwrap().cost))
        });
    }
    for level_chunk_rows in [64usize, 1024, usize::MAX] {
        let label = if level_chunk_rows == usize::MAX {
            "whole_level".to_string()
        } else {
            level_chunk_rows.to_string()
        };
        group.bench_function(format!("sequential_level_chunk_{label}"), |b| {
            let config = SynthConfig::new(CostFn::UNIFORM).with_level_chunk_rows(level_chunk_rows);
            let mut session = SynthSession::new(config).unwrap();
            b.iter(|| std::hint::black_box(session.run(&spec).unwrap().cost))
        });
    }
    group.finish();
}

fn uniqueness_set(c: &mut Criterion) {
    let device = Device::sequential();
    let mut group = c.benchmark_group("uniqueness");
    group.bench_function("lockfree_insert_10k", |b| {
        b.iter_batched(
            || LockFreeU64Set::with_capacity(32_768),
            |set| {
                for key in 0..10_000u64 {
                    std::hint::black_box(set.insert(key.wrapping_mul(0x9E3779B97F4A7C15)));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("sharded_insert_10k", |b| {
        b.iter_batched(
            || gpu_sim::hashset::ShardedSet::new(64),
            |set| {
                for key in 0..10_000u64 {
                    std::hint::black_box(set.insert(&[key, key ^ 0xABCD]));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
    let _ = device;
}

criterion_group!(
    benches,
    substrate_construction,
    cs_kernels,
    simd_kernels,
    admission_prefilter,
    level_scheduler_sweep,
    uniqueness_set
);
criterion_main!(benches);
