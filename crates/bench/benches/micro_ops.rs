//! Micro-benchmarks of the substrate operations the search is built from:
//! infix-closure construction, guide-table staging, the semiring kernels on
//! characteristic sequences and the uniqueness set.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use bench::{error_table_spec, example_3_6_spec};
use gpu_sim::hashset::LockFreeU64Set;
use gpu_sim::Device;
use rei_lang::{csops, Cs, GuideMasks, GuideTable, InfixClosure};
use rei_syntax::parse;

fn substrate_construction(c: &mut Criterion) {
    let spec = error_table_spec();
    let mut group = c.benchmark_group("substrate");
    group.bench_function("infix_closure_build", |b| {
        b.iter(|| InfixClosure::of_spec(std::hint::black_box(&spec)))
    });
    let ic = InfixClosure::of_spec(&spec);
    group.bench_function("guide_table_build", |b| {
        b.iter(|| GuideTable::build(std::hint::black_box(&ic)))
    });
    group.bench_function("guide_masks_build", |b| {
        b.iter(|| GuideMasks::build(std::hint::black_box(&ic)))
    });
    group.finish();
}

fn cs_kernels(c: &mut Criterion) {
    let spec = example_3_6_spec();
    let ic = InfixClosure::of_spec(&spec);
    let gt = GuideTable::build(&ic);
    let gm = GuideMasks::build(&ic);
    let a = ic.cs_of_regex(&parse("(0?1)*").unwrap());
    let b_cs = ic.cs_of_regex(&parse("1(0+1)?").unwrap());
    let eps = ic.eps_index().unwrap();
    let width = ic.width();

    let mut group = c.benchmark_group("cs_kernels");
    group.bench_function("union", |b| {
        let mut dst = Cs::zero(width);
        b.iter(|| csops::or_into(dst.blocks_mut(), a.blocks(), b_cs.blocks()))
    });
    // The three concatenation kernels, fastest to slowest: the mask-based
    // hot path, the split gather it replaced, and the unstaged baseline.
    group.bench_function("concat_masked", |b| {
        let mut dst = Cs::zero(width);
        b.iter(|| csops::concat_into(dst.blocks_mut(), a.blocks(), b_cs.blocks(), &gm))
    });
    group.bench_function("concat_gather", |b| {
        let mut dst = Cs::zero(width);
        b.iter(|| csops::concat_into_gather(dst.blocks_mut(), a.blocks(), b_cs.blocks(), &gt))
    });
    group.bench_function("concat_unstaged", |b| {
        let mut dst = Cs::zero(width);
        b.iter(|| csops::concat_into_unstaged(dst.blocks_mut(), a.blocks(), b_cs.blocks(), &ic))
    });
    // Star by squaring (over the mask table) against the linear fixed
    // point (over the pair table) it replaced.
    group.bench_function("star_squared", |b| {
        let mut dst = Cs::zero(width);
        let mut scratch = vec![0u64; width.blocks()];
        b.iter(|| csops::star_into(dst.blocks_mut(), a.blocks(), &gm, eps, &mut scratch))
    });
    group.bench_function("star_linear", |b| {
        let mut dst = Cs::zero(width);
        let mut scratch = vec![0u64; width.blocks()];
        b.iter(|| csops::star_into_linear(dst.blocks_mut(), a.blocks(), &gt, eps, &mut scratch))
    });
    group.finish();
}

fn uniqueness_set(c: &mut Criterion) {
    let device = Device::sequential();
    let mut group = c.benchmark_group("uniqueness");
    group.bench_function("lockfree_insert_10k", |b| {
        b.iter_batched(
            || LockFreeU64Set::with_capacity(32_768),
            |set| {
                for key in 0..10_000u64 {
                    std::hint::black_box(set.insert(key.wrapping_mul(0x9E3779B97F4A7C15)));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("sharded_insert_10k", |b| {
        b.iter_batched(
            || gpu_sim::hashset::ShardedSet::new(64),
            |set| {
                for key in 0..10_000u64 {
                    std::hint::black_box(set.insert(&[key, key ^ 0xABCD]));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
    let _ = device;
}

criterion_group!(benches, substrate_construction, cs_kernels, uniqueness_set);
criterion_main!(benches);
