//! Table 2: Paresy versus the AlphaRegex baseline on the task suite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use alpharegex::{AlphaRegex, AlphaRegexConfig};
use rei_bench::suite::easy_tasks;
use rei_core::Synthesizer;
use rei_syntax::CostFn;

fn paresy_vs_alpharegex(c: &mut Criterion) {
    // The easier half of the suite keeps a full Criterion run in seconds;
    // `reproduce table2 --full` covers all 25 tasks.
    let tasks = easy_tasks(8);
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    for task in &tasks {
        let spec = task.spec();
        group.bench_with_input(BenchmarkId::new("paresy", task.name()), &spec, |b, spec| {
            let synth = Synthesizer::new(CostFn::ALPHAREGEX);
            b.iter(|| {
                synth
                    .run(std::hint::black_box(spec))
                    .expect("suite task solves")
            });
        });
        group.bench_with_input(
            BenchmarkId::new("alpharegex", task.name()),
            &spec,
            |b, spec| {
                let config = AlphaRegexConfig {
                    use_wildcard: task.wildcard,
                    ..Default::default()
                };
                let alpha = AlphaRegex::with_config(config);
                b.iter(|| {
                    alpha
                        .run(std::hint::black_box(spec))
                        .expect("suite task solves")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, paresy_vs_alpharegex);
criterion_main!(benches);
