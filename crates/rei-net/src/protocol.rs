//! The serve JSONL protocol: request parsing and response rendering.
//!
//! One JSON object per line in both directions. A request line:
//!
//! ```json
//! {"id": "r1", "pos": ["10", "101"], "neg": ["", "0"],
//!  "priority": 1, "timeout_ms": 500, "tenant": "acme"}
//! ```
//!
//! * `pos` (required) / `neg` (optional) — example strings; `""`, `"ε"`
//!   and `"<eps>"` all denote the empty word.
//! * `id` (optional) — echoed back verbatim; defaults to the 1-based
//!   line number of the connection (or input).
//! * `priority` (optional) — higher runs earlier.
//! * `timeout_ms` (optional) — a per-request deadline; an expired request
//!   is answered with `"status": "cancelled"` without occupying a worker.
//! * `tenant` (optional) — the shard-routing key, and the admission
//!   policy key of the TCP front-end.
//!
//! A result line echoes the id with a `status` of `solved` (plus
//! `regex`, `cost`, `candidates`), a failure kind (`timeout` / `oom` /
//! `not-found` / `cancelled`), `bad-request` (with `error`), or
//! `rejected` (with `reason`, e.g. `rate_limited`) when admission
//! refused the request.
//!
//! A line carrying an `"op"` key is a *control verb* instead of a
//! request — see [`Verb`]. Verbs answer on the same connection:
//! `{"op": "ping"}` echoes `{"op": "ping", "status": "ok"}`, `hello`
//! returns the protocol version and capability list, `metrics` returns
//! the router snapshot as one line, `mode` switches the connection's
//! answer mode, and `shutdown` asks the whole server to drain and exit.
//!
//! # Refinement sessions
//!
//! `{"op": "session.open", "name": "s1", "tenant": "acme"}` opens (or
//! resets) a named refinement session on the pool the name/tenant routes
//! to; the ack echoes the session name (server-generated when `name` is
//! omitted — interactive clients should pass their own). A line carrying
//! `"verb": "refine"` is then a synthesis request answered *through* the
//! session: `{"verb": "refine", "session": "s1", "pos": [...], "neg":
//! [...]}` re-solves the strengthened specification warm, reusing the
//! session's retained search state when sound. Refine results carry a
//! `reuse` label (`unchanged` / `warm` / `cold`, plus `reason` when
//! cold). `{"op": "session.close", "name": "s1"}` discards the state.
//!
//! Every response line is stamped with `"proto":` [`PROTO_VERSION`].

use std::time::Duration;

use rei_core::SynthesisError;
use rei_lang::Spec;
use rei_service::json::Json;
use rei_service::{SynthRequest, SynthResponse};

/// The wire protocol version stamped (as `"proto"`) on every response
/// line. Version 2 added `hello`, refinement sessions (`session.open` /
/// `session.close` / `"verb": "refine"`) and the stamp itself; version 1
/// lines carried no `proto` field.
pub const PROTO_VERSION: u64 = 2;

/// The control verbs this protocol version understands, as advertised by
/// [`hello_line`].
pub const VERBS: &[&str] = &[
    "ping",
    "hello",
    "metrics",
    "trace",
    "prometheus",
    "mode",
    "shutdown",
    "session.open",
    "session.close",
    "refine",
];

/// The capability tags advertised by [`hello_line`] — coarse feature
/// groups a client can probe without knowing individual verbs.
pub const CAPABILITIES: &[&str] = &["sessions", "refine", "stream", "trace", "prometheus"];

/// One parsed request line: the request plus the identity to echo back.
#[derive(Debug)]
pub struct ParsedRequest {
    /// The identity every answer line echoes: the client's `id` field
    /// when present, the 1-based line number otherwise.
    pub id: Json,
    /// The synthesis request described by the line.
    pub request: SynthRequest,
}

/// How a connection's answers are delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnswerMode {
    /// One result line per request, in request order.
    Ordered,
    /// Each result line as its request completes, tagged by id.
    Stream,
}

impl AnswerMode {
    /// The stable wire label (`ordered` / `stream`).
    pub fn as_str(&self) -> &'static str {
        match self {
            AnswerMode::Ordered => "ordered",
            AnswerMode::Stream => "stream",
        }
    }
}

/// A control verb — a line with an `"op"` key instead of examples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verb {
    /// Liveness probe; answered with `{"op": "ping", "status": "ok"}`.
    Ping,
    /// Protocol handshake; answered with the server version, the verb
    /// list and the capability tags (see [`hello_line`]).
    Hello,
    /// Opens (or resets) a refinement session. With no `name` the server
    /// generates one and echoes it in the ack.
    SessionOpen {
        /// The client-chosen session name, when one was given.
        name: Option<String>,
        /// The tenant the session belongs to (and routes by).
        tenant: Option<String>,
    },
    /// Closes a refinement session, discarding its retained state.
    SessionClose {
        /// The session name to close.
        name: String,
        /// The tenant the session was opened under.
        tenant: Option<String>,
    },
    /// Asks for the router metrics snapshot as one JSON line.
    Metrics,
    /// Asks for the retained timeline of one trace id as one JSON line.
    Trace(u64),
    /// Asks for the Prometheus text rendering of the metrics snapshot,
    /// wrapped in one JSON line (the scrape listener serves it raw).
    Prometheus,
    /// Switches this connection's [`AnswerMode`].
    Mode(AnswerMode),
    /// Asks the server to stop accepting, drain every connection and
    /// exit cleanly.
    Shutdown,
}

/// The interpretation of one input line.
#[derive(Debug)]
pub enum Input {
    /// A synthesis request.
    Request(ParsedRequest),
    /// A control verb.
    Control(Verb),
    /// A malformed line: echo a `bad-request` result and carry on.
    Bad {
        /// The identity to echo (client id or line number).
        id: Json,
        /// What was wrong with the line.
        error: String,
    },
}

fn words_of(value: &Json, key: &str) -> Result<Vec<String>, String> {
    let Some(raw) = value.get(key) else {
        return Ok(Vec::new());
    };
    let items = raw
        .as_array()
        .ok_or_else(|| format!("'{key}' must be an array of strings"))?;
    items
        .iter()
        .map(|item| {
            let word = item
                .as_str()
                .ok_or_else(|| format!("'{key}' must contain only strings"))?;
            Ok(match word {
                "ε" | "<eps>" => String::new(),
                other => other.to_string(),
            })
        })
        .collect()
}

/// Parses one input line. A malformed line yields the identity to echo —
/// the client's `id` when one was readable, the line number otherwise —
/// alongside the error message, so clients can always correlate
/// `bad-request` results with their requests.
///
/// # Errors
///
/// The `(id, message)` pair to render as a `bad-request` line.
pub fn parse_request(line: &str, line_number: usize) -> Result<ParsedRequest, (Json, String)> {
    let line_id = Json::uint(line_number as u64);
    let value = Json::parse(line).map_err(|err| (line_id.clone(), err.to_string()))?;
    if value.as_object().is_none() {
        return Err((line_id, "request must be a JSON object".into()));
    }
    let id = match value.get("id") {
        Some(id @ (Json::Str(_) | Json::Number(_))) => id.clone(),
        Some(_) => return Err((line_id, "'id' must be a string or a number".into())),
        None => line_id,
    };
    let fail = |message: String| (id.clone(), message);
    if value.get("pos").is_none() {
        return Err(fail("request needs a 'pos' array".into()));
    }
    let positives = words_of(&value, "pos").map_err(fail)?;
    let negatives = words_of(&value, "neg").map_err(fail)?;
    let spec = Spec::from_strs(
        positives.iter().map(String::as_str),
        negatives.iter().map(String::as_str),
    )
    .map_err(|err| fail(err.to_string()))?;

    let mut request = SynthRequest::new(spec);
    if let Some(priority) = value.get("priority") {
        let priority = priority
            .as_f64()
            .filter(|p| p.fract() == 0.0 && (i32::MIN as f64..=i32::MAX as f64).contains(p))
            .ok_or_else(|| fail("'priority' must be an integer".into()))?;
        request = request.with_priority(priority as i32);
    }
    if let Some(timeout) = value.get("timeout_ms") {
        // try_from rejects negative, NaN, infinite and overflowing values.
        let timeout = timeout
            .as_f64()
            .and_then(|ms| Duration::try_from_secs_f64(ms / 1e3).ok())
            .ok_or_else(|| fail("'timeout_ms' must be a non-negative number".into()))?;
        request = request.with_timeout(timeout);
    }
    if let Some(tenant) = value.get("tenant") {
        let tenant = tenant
            .as_str()
            .ok_or_else(|| fail("'tenant' must be a string".into()))?;
        request = request.with_tenant(tenant);
    }
    match value.get("verb") {
        None => {
            if value.get("session").is_some() {
                return Err(fail("'session' needs \"verb\": \"refine\"".into()));
            }
        }
        Some(verb) => match verb.as_str() {
            Some("refine") => {
                let session = value
                    .get("session")
                    .and_then(Json::as_str)
                    .ok_or_else(|| fail("'refine' needs a 'session' string".into()))?;
                request = request.with_session(session);
            }
            Some(other) => return Err(fail(format!("unknown verb '{other}'"))),
            None => return Err(fail("'verb' must be a string".into())),
        },
    }
    Ok(ParsedRequest { id, request })
}

/// Reads an optional string field, distinguishing "absent" from "present
/// but not a string".
fn optional_str(value: &Json, key: &str) -> Result<Option<String>, String> {
    match value.get(key) {
        None => Ok(None),
        Some(field) => field
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| format!("'{key}' must be a string")),
    }
}

/// Interprets one input line: a control verb when the line carries an
/// `"op"` key, a synthesis request otherwise. Never fails — malformed
/// lines come back as [`Input::Bad`] for the caller to echo.
pub fn parse_line(line: &str, line_number: usize) -> Input {
    if let Ok(value) = Json::parse(line) {
        if let Some(op) = value.get("op") {
            let id = match value.get("id") {
                Some(id @ (Json::Str(_) | Json::Number(_))) => id.clone(),
                _ => Json::uint(line_number as u64),
            };
            return match op.as_str() {
                Some("ping") => Input::Control(Verb::Ping),
                Some("hello") => Input::Control(Verb::Hello),
                Some("session.open") => {
                    let fields = optional_str(&value, "name")
                        .and_then(|name| optional_str(&value, "tenant").map(|t| (name, t)));
                    match fields {
                        Ok((name, tenant)) => Input::Control(Verb::SessionOpen { name, tenant }),
                        Err(error) => Input::Bad { id, error },
                    }
                }
                Some("session.close") => {
                    let fields = optional_str(&value, "name")
                        .and_then(|name| optional_str(&value, "tenant").map(|t| (name, t)));
                    match fields {
                        Ok((Some(name), tenant)) => {
                            Input::Control(Verb::SessionClose { name, tenant })
                        }
                        Ok((None, _)) => Input::Bad {
                            id,
                            error: "'session.close' needs a 'name' string".into(),
                        },
                        Err(error) => Input::Bad { id, error },
                    }
                }
                Some("metrics") => Input::Control(Verb::Metrics),
                Some("prometheus") => Input::Control(Verb::Prometheus),
                Some("trace") => match value.get("trace").and_then(Json::as_u64) {
                    Some(trace) => Input::Control(Verb::Trace(trace)),
                    None => Input::Bad {
                        id,
                        error: "'trace' needs a numeric 'trace' id".into(),
                    },
                },
                Some("shutdown") => Input::Control(Verb::Shutdown),
                Some("mode") => match value.get("value").and_then(Json::as_str) {
                    Some("ordered") => Input::Control(Verb::Mode(AnswerMode::Ordered)),
                    Some("stream") => Input::Control(Verb::Mode(AnswerMode::Stream)),
                    _ => Input::Bad {
                        id,
                        error: "'mode' needs a 'value' of 'ordered' or 'stream'".into(),
                    },
                },
                Some(other) => Input::Bad {
                    id,
                    error: format!("unknown op '{other}'"),
                },
                None => Input::Bad {
                    id,
                    error: "'op' must be a string".into(),
                },
            };
        }
    }
    match parse_request(line, line_number) {
        Ok(parsed) => Input::Request(parsed),
        Err((id, error)) => Input::Bad { id, error },
    }
}

/// The `status` word of a failed synthesis.
pub fn error_status(err: &SynthesisError) -> &'static str {
    match err {
        SynthesisError::Timeout { .. } => "timeout",
        SynthesisError::OutOfMemory { .. } => "oom",
        SynthesisError::NotFound { .. } => "not-found",
        SynthesisError::Cancelled { .. } => "cancelled",
        // The service validates its config at start; per-request failures
        // can never be InvalidConfig.
        SynthesisError::InvalidConfig { .. } => "invalid-config",
    }
}

/// Stamps the protocol version onto a response line built elsewhere
/// (e.g. a metrics snapshot). The dedicated line builders below stamp
/// their own output.
pub fn stamped(mut line: Json) -> Json {
    line.set("proto", Json::uint(PROTO_VERSION));
    line
}

/// A `bad-request` result line.
pub fn bad_request_line(id: Json, message: &str) -> Json {
    stamped(Json::object([
        ("id", id),
        ("status", Json::str("bad-request")),
        ("error", Json::str(message)),
    ]))
}

/// A `rejected` result line — the explicit refusal admission promises
/// (`reason` is e.g. `rate_limited`, `shutting_down` or
/// `unknown_session`).
pub fn rejected_line(id: Json, reason: &str) -> Json {
    stamped(Json::object([
        ("id", id),
        ("status", Json::str("rejected")),
        ("reason", Json::str(reason)),
    ]))
}

/// The acknowledgement line of a control verb.
pub fn verb_ok_line(op: &str) -> Json {
    stamped(Json::object([
        ("op", Json::str(op)),
        ("status", Json::str("ok")),
    ]))
}

/// The error line of a control verb that was understood but could not be
/// performed (e.g. closing a session that does not exist).
pub fn verb_err_line(op: &str, error: &str) -> Json {
    stamped(Json::object([
        ("op", Json::str(op)),
        ("status", Json::str("error")),
        ("error", Json::str(error)),
    ]))
}

/// The `hello` handshake answer: the server version, the protocol
/// version, the verb list and the capability tags.
pub fn hello_line() -> Json {
    stamped(Json::object([
        ("op", Json::str("hello")),
        ("status", Json::str("ok")),
        ("version", Json::str(env!("CARGO_PKG_VERSION"))),
        (
            "verbs",
            Json::array(VERBS.iter().map(|verb| Json::str(*verb))),
        ),
        (
            "capabilities",
            Json::array(CAPABILITIES.iter().map(|cap| Json::str(*cap))),
        ),
    ]))
}

/// The timeline of one trace as a single answer line.
pub fn trace_line(trace: u64, events: &[rei_obs::TraceEvent]) -> Json {
    stamped(Json::object([
        ("op", Json::str("trace")),
        ("trace", Json::uint(trace)),
        (
            "events",
            Json::array(events.iter().map(|event| {
                Json::object([
                    (
                        "offset_ms",
                        Json::fixed(event.offset.as_secs_f64() * 1e3, 3),
                    ),
                    ("phase", Json::str(event.phase)),
                    ("detail", Json::str(&event.detail)),
                ])
            })),
        ),
    ]))
}

/// The result line of one completed request. `trace` is the request's
/// trace id, echoed so clients can query the timeline afterwards.
/// Refinement answers additionally carry `reuse` (`unchanged` / `warm` /
/// `cold`) and, when cold, the `reason`.
pub fn response_line(id: Json, response: &SynthResponse, trace: Option<u64>) -> Json {
    let ms = |d: Duration| Json::fixed(d.as_secs_f64() * 1e3, 3);
    let mut line = vec![("id".to_string(), id)];
    if let Some(trace) = trace {
        line.push(("trace".into(), Json::uint(trace)));
    }
    match &response.outcome {
        Ok(result) => {
            line.push(("status".into(), Json::str("solved")));
            line.push(("regex".into(), Json::str(result.regex.to_string())));
            line.push(("cost".into(), Json::uint(result.cost)));
        }
        Err(err) => {
            line.push(("status".into(), Json::str(error_status(err))));
        }
    }
    line.push(("source".into(), Json::str(response.source.as_str())));
    line.push(("wait_ms".into(), ms(response.waited)));
    line.push(("run_ms".into(), ms(response.ran)));
    if let Ok(result) = &response.outcome {
        line.push((
            "candidates".into(),
            Json::uint(result.stats.candidates_generated),
        ));
    }
    if let Some(reuse) = &response.reuse {
        line.push(("reuse".into(), Json::str(reuse.label())));
        if let Some(reason) = reuse.cold_reason() {
            line.push(("reason".into(), Json::str(reason.as_str())));
        }
    }
    stamped(Json::Object(line))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse_with_defaults_and_hints() {
        let parsed = parse_request(
            r#"{"id": "r1", "pos": ["10", "ε"], "neg": ["0"], "priority": 2, "tenant": "acme"}"#,
            3,
        )
        .unwrap();
        assert_eq!(parsed.id.as_str(), Some("r1"));
        assert_eq!(parsed.request.priority(), 2);
        assert_eq!(parsed.request.tenant(), Some("acme"));
        assert_eq!(parsed.request.spec().num_positive(), 2);

        let unnamed = parse_request(r#"{"pos": ["0"]}"#, 7).unwrap();
        assert_eq!(unnamed.id.as_u64(), Some(7));
        assert_eq!(unnamed.request.tenant(), None);
    }

    #[test]
    fn malformed_requests_keep_the_client_id_when_readable() {
        let (id, error) = parse_request(r#"{"id": "x", "neg": ["1"]}"#, 1).unwrap_err();
        assert_eq!(id.as_str(), Some("x"));
        assert!(error.contains("pos"), "{error}");
        let (id, _) = parse_request("not json", 9).unwrap_err();
        assert_eq!(id.as_u64(), Some(9));
        let (_, error) = parse_request(r#"{"pos": ["0"], "tenant": 7}"#, 1).unwrap_err();
        assert!(error.contains("tenant"), "{error}");
    }

    #[test]
    fn control_verbs_are_recognised() {
        assert!(matches!(
            parse_line(r#"{"op": "ping"}"#, 1),
            Input::Control(Verb::Ping)
        ));
        assert!(matches!(
            parse_line(r#"{"op": "metrics"}"#, 1),
            Input::Control(Verb::Metrics)
        ));
        assert!(matches!(
            parse_line(r#"{"op": "prometheus"}"#, 1),
            Input::Control(Verb::Prometheus)
        ));
        assert!(matches!(
            parse_line(r#"{"op": "trace", "trace": 12}"#, 1),
            Input::Control(Verb::Trace(12))
        ));
        assert!(matches!(
            parse_line(r#"{"op": "trace"}"#, 1),
            Input::Bad { .. }
        ));
        assert!(matches!(
            parse_line(r#"{"op": "shutdown"}"#, 1),
            Input::Control(Verb::Shutdown)
        ));
        assert!(matches!(
            parse_line(r#"{"op": "mode", "value": "stream"}"#, 1),
            Input::Control(Verb::Mode(AnswerMode::Stream))
        ));
        assert!(matches!(
            parse_line(r#"{"op": "mode", "value": "ordered"}"#, 1),
            Input::Control(Verb::Mode(AnswerMode::Ordered))
        ));
        for bad in [
            r#"{"op": "mode"}"#,
            r#"{"op": "mode", "value": "sideways"}"#,
            r#"{"op": "reboot"}"#,
            r#"{"op": 3}"#,
        ] {
            assert!(matches!(parse_line(bad, 1), Input::Bad { .. }), "{bad}");
        }
        // Plain requests and garbage still parse as before.
        assert!(matches!(
            parse_line(r#"{"pos": ["0"]}"#, 1),
            Input::Request(_)
        ));
        assert!(matches!(parse_line("not json", 1), Input::Bad { .. }));
    }

    #[test]
    fn rendered_lines_carry_the_expected_fields() {
        let bad = bad_request_line(Json::str("b"), "nope");
        assert_eq!(
            bad.get("status").and_then(Json::as_str),
            Some("bad-request")
        );
        assert_eq!(bad.get("error").and_then(Json::as_str), Some("nope"));
        let rejected = rejected_line(Json::uint(4), "rate_limited");
        assert_eq!(
            rejected.get("status").and_then(Json::as_str),
            Some("rejected")
        );
        assert_eq!(
            rejected.get("reason").and_then(Json::as_str),
            Some("rate_limited")
        );
        let ok = verb_ok_line("ping");
        assert_eq!(ok.get("op").and_then(Json::as_str), Some("ping"));
        assert_eq!(ok.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(AnswerMode::Stream.as_str(), "stream");
        assert_eq!(AnswerMode::Ordered.as_str(), "ordered");
    }

    #[test]
    fn every_rendered_line_is_stamped_with_the_protocol_version() {
        for line in [
            bad_request_line(Json::str("b"), "nope"),
            rejected_line(Json::uint(4), "rate_limited"),
            verb_ok_line("ping"),
            verb_err_line("session.close", "unknown session"),
            hello_line(),
            trace_line(3, &[]),
        ] {
            assert_eq!(
                line.get("proto").and_then(Json::as_u64),
                Some(PROTO_VERSION),
                "{line:?}"
            );
        }
    }

    #[test]
    fn hello_advertises_version_verbs_and_capabilities() {
        assert!(matches!(
            parse_line(r#"{"op": "hello"}"#, 1),
            Input::Control(Verb::Hello)
        ));
        let hello = hello_line();
        assert_eq!(
            hello.get("version").and_then(Json::as_str),
            Some(env!("CARGO_PKG_VERSION"))
        );
        let verbs = hello.get("verbs").and_then(Json::as_array).unwrap();
        for expected in ["hello", "refine", "session.open", "session.close"] {
            assert!(
                verbs.iter().any(|v| v.as_str() == Some(expected)),
                "missing verb {expected}"
            );
        }
        let caps = hello.get("capabilities").and_then(Json::as_array).unwrap();
        assert!(caps.iter().any(|c| c.as_str() == Some("sessions")));
    }

    #[test]
    fn session_ops_parse_names_and_tenants() {
        match parse_line(
            r#"{"op": "session.open", "name": "s1", "tenant": "acme"}"#,
            1,
        ) {
            Input::Control(Verb::SessionOpen { name, tenant }) => {
                assert_eq!(name.as_deref(), Some("s1"));
                assert_eq!(tenant.as_deref(), Some("acme"));
            }
            other => panic!("{other:?}"),
        }
        match parse_line(r#"{"op": "session.open"}"#, 1) {
            Input::Control(Verb::SessionOpen { name, tenant }) => {
                assert_eq!(name, None);
                assert_eq!(tenant, None);
            }
            other => panic!("{other:?}"),
        }
        match parse_line(r#"{"op": "session.close", "name": "s1"}"#, 1) {
            Input::Control(Verb::SessionClose { name, tenant }) => {
                assert_eq!(name, "s1");
                assert_eq!(tenant, None);
            }
            other => panic!("{other:?}"),
        }
        for bad in [
            r#"{"op": "session.close"}"#,
            r#"{"op": "session.open", "name": 7}"#,
            r#"{"op": "session.close", "name": "s", "tenant": 9}"#,
        ] {
            assert!(matches!(parse_line(bad, 1), Input::Bad { .. }), "{bad}");
        }
    }

    #[test]
    fn refine_requests_carry_their_session() {
        let parsed = parse_request(
            r#"{"verb": "refine", "session": "s1", "id": "r", "pos": ["0"], "neg": ["1"]}"#,
            1,
        )
        .unwrap();
        assert_eq!(parsed.request.session(), Some("s1"));
        assert_eq!(parsed.id.as_str(), Some("r"));
        // A plain request has no session.
        let plain = parse_request(r#"{"pos": ["0"]}"#, 1).unwrap();
        assert_eq!(plain.request.session(), None);
        // Malformed refinements are bad requests, not crashes.
        for (bad, needle) in [
            (r#"{"verb": "refine", "pos": ["0"]}"#, "session"),
            (r#"{"verb": "solve", "pos": ["0"]}"#, "unknown verb"),
            (r#"{"verb": 3, "pos": ["0"]}"#, "'verb'"),
            (r#"{"session": "s1", "pos": ["0"]}"#, "refine"),
            (r#"{"verb": "refine", "session": "s1"}"#, "pos"),
        ] {
            let (_, error) = parse_request(bad, 1).unwrap_err();
            assert!(error.contains(needle), "{bad} -> {error}");
        }
    }
}
