//! The TCP listener, its bounded handler pool, and the per-connection
//! serve loop.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read as _, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{RecvTimeoutError, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rei_obs::{Trace, TraceRegistry};
use rei_service::json::Json;
use rei_service::{
    AdmissionConfig, AdmissionError, FairShare, InflightGuard, JobHandle, RouterSnapshot,
    ServiceError, ShardRouter,
};

use crate::protocol::{
    bad_request_line, hello_line, parse_line, rejected_line, response_line, stamped, trace_line,
    verb_err_line, verb_ok_line, AnswerMode, Input, Verb,
};
use crate::signal::shutdown_tripped;

/// How long blocked loops sleep between polls of their stop conditions:
/// the accept loop between accept attempts, the handler dispatch between
/// channel probes.
const ACCEPT_TICK: Duration = Duration::from_millis(10);

/// The per-connection answer-poll tick; bounds the latency between a job
/// completing and its line reaching the client.
const ANSWER_TICK: Duration = Duration::from_millis(1);

/// Configuration of a [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// The address to bind, e.g. `127.0.0.1:0` (port 0 picks a free one;
    /// read it back from [`NetServer::local_addr`]).
    pub listen: String,
    /// Size of the connection-handler pool — the number of connections
    /// served *concurrently*. Further accepted connections wait for a
    /// free handler.
    pub handler_threads: usize,
    /// The fair-share admission policies.
    pub admission: AdmissionConfig,
    /// When set, a dedicated listener on this address answers every
    /// connection with one Prometheus text-format scrape of the router
    /// metrics (port 0 picks a free one; read it back from
    /// [`NetServer::metrics_addr`]).
    pub metrics_addr: Option<String>,
    /// The slow-request threshold: a request whose end-to-end latency
    /// reaches it has its full trace timeline dumped to the structured
    /// log (component `slo`, level `warn`).
    pub slo: Option<Duration>,
    /// Capacity of the trace event ring (events, not requests; oldest
    /// drop first).
    pub trace_capacity: usize,
}

impl NetConfig {
    /// A config with 4 handler threads, all-unlimited admission, no
    /// scrape listener, no SLO, and a 4096-event trace ring.
    pub fn new(listen: impl Into<String>) -> Self {
        NetConfig {
            listen: listen.into(),
            handler_threads: 4,
            admission: AdmissionConfig::new(),
            metrics_addr: None,
            slo: None,
            trace_capacity: 4096,
        }
    }

    /// Replaces the handler pool size (clamped to at least 1).
    pub fn with_handler_threads(mut self, threads: usize) -> Self {
        self.handler_threads = threads.max(1);
        self
    }

    /// Replaces the admission configuration.
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = admission;
        self
    }

    /// Enables the Prometheus scrape listener on `addr`.
    pub fn with_metrics_addr(mut self, addr: impl Into<String>) -> Self {
        self.metrics_addr = Some(addr.into());
        self
    }

    /// Sets the slow-request SLO threshold.
    pub fn with_slo(mut self, slo: Duration) -> Self {
        self.slo = Some(slo);
        self
    }

    /// Replaces the trace ring capacity (clamped to at least 1).
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity.max(1);
        self
    }
}

/// A TCP JSONL front-end over a [`ShardRouter`] (see the crate docs).
///
/// Bind with [`bind`](NetServer::bind), then [`run`](NetServer::run) the
/// accept loop until a `shutdown` control verb, a shutdown signal —
/// SIGINT or SIGTERM, when
/// [`install_shutdown_signals`](crate::install_shutdown_signals) was
/// called — or a trip of the [`stop_flag`](NetServer::stop_flag) drains
/// it.
pub struct NetServer {
    listener: TcpListener,
    addr: SocketAddr,
    router: Arc<ShardRouter>,
    fair: Arc<FairShare>,
    stop: Arc<AtomicBool>,
    handler_threads: usize,
    traces: Arc<TraceRegistry>,
    scrape: Option<TcpListener>,
    scrape_addr: Option<SocketAddr>,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("addr", &self.addr)
            .field("handler_threads", &self.handler_threads)
            .finish_non_exhaustive()
    }
}

impl NetServer {
    /// Binds the listener and builds the admission stage. The router is
    /// owned by the server from here on; [`run`](NetServer::run) shuts it
    /// down and returns its final snapshot.
    ///
    /// # Errors
    ///
    /// A message when the address cannot be bound or the admission
    /// config does not validate.
    pub fn bind(config: NetConfig, router: ShardRouter) -> Result<Self, String> {
        let traces = TraceRegistry::new(config.trace_capacity, config.slo);
        let fair = FairShare::new(config.admission)
            .map_err(|err| format!("invalid admission config: {err}"))?
            .with_traces(Arc::clone(&traces));
        let listener = TcpListener::bind(&config.listen)
            .map_err(|err| format!("cannot bind {}: {err}", config.listen))?;
        listener
            .set_nonblocking(true)
            .map_err(|err| format!("cannot make the listener nonblocking: {err}"))?;
        let addr = listener
            .local_addr()
            .map_err(|err| format!("cannot read the bound address: {err}"))?;
        let (scrape, scrape_addr) = match &config.metrics_addr {
            Some(metrics_addr) => {
                let scrape = TcpListener::bind(metrics_addr)
                    .map_err(|err| format!("cannot bind metrics address {metrics_addr}: {err}"))?;
                scrape
                    .set_nonblocking(true)
                    .map_err(|err| format!("cannot make the scrape listener nonblocking: {err}"))?;
                let scrape_addr = scrape
                    .local_addr()
                    .map_err(|err| format!("cannot read the scrape address: {err}"))?;
                (Some(scrape), Some(scrape_addr))
            }
            None => (None, None),
        };
        Ok(NetServer {
            listener,
            addr,
            router: Arc::new(router),
            fair: Arc::new(fair),
            stop: Arc::new(AtomicBool::new(false)),
            handler_threads: config.handler_threads.max(1),
            traces,
            scrape,
            scrape_addr,
        })
    }

    /// The bound address (resolves port 0 to the picked port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound Prometheus scrape address, when one was configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.scrape_addr
    }

    /// A flag any thread may set to start a graceful drain: stop
    /// accepting, let every live connection answer its in-flight
    /// requests, then shut the pools down.
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Runs the accept loop until stopped (see [`NetServer`]), then
    /// drains: handlers finish their connections' pending answers, pools
    /// shut down gracefully (compacting persistent caches), and the
    /// final router snapshot — admission counters included — is
    /// returned.
    ///
    /// # Errors
    ///
    /// A message when the listener fails fatally. Per-connection IO
    /// errors only end that connection.
    pub fn run(self) -> Result<RouterSnapshot, String> {
        let (dispatch, inbox) = std::sync::mpsc::sync_channel::<TcpStream>(self.handler_threads);
        let inbox = Arc::new(Mutex::new(inbox));
        let handlers: Vec<_> = (0..self.handler_threads)
            .map(|index| {
                let inbox = Arc::clone(&inbox);
                let router = Arc::clone(&self.router);
                let fair = Arc::clone(&self.fair);
                let stop = Arc::clone(&self.stop);
                let traces = Arc::clone(&self.traces);
                std::thread::Builder::new()
                    .name(format!("rei-net-handler-{index}"))
                    .spawn(move || loop {
                        // Hold the dispatch lock only while receiving;
                        // handling runs unlocked so handlers serve
                        // connections concurrently.
                        let stream = {
                            let inbox = inbox.lock().unwrap_or_else(|e| e.into_inner());
                            inbox.recv()
                        };
                        match stream {
                            Ok(stream) => handle_connection(stream, &router, &fair, &traces, &stop),
                            Err(_) => return, // accept loop gone: drain done
                        }
                    })
                    .expect("spawning a handler thread")
            })
            .collect();

        // The scrape listener runs beside the request listener: every
        // connection gets one Prometheus rendering of the live snapshot.
        let scraper = self.scrape.map(|listener| {
            let router = Arc::clone(&self.router);
            let fair = Arc::clone(&self.fair);
            let stop = Arc::clone(&self.stop);
            std::thread::Builder::new()
                .name("rei-net-scrape".into())
                .spawn(move || serve_scrapes(&listener, &router, &fair, &stop))
                .expect("spawning the scrape thread")
        });

        while !self.stop.load(Ordering::SeqCst) {
            if shutdown_tripped() {
                self.stop.store(true, Ordering::SeqCst);
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let mut stream = stream;
                    // The channel bound is the handler count: beyond it,
                    // hold the connection here (it stays in the OS accept
                    // state for the client) while polling the stop flag.
                    loop {
                        match dispatch.try_send(stream) {
                            Ok(()) => break,
                            Err(TrySendError::Full(back)) => {
                                if self.stop.load(Ordering::SeqCst) || shutdown_tripped() {
                                    break; // dropping the stream closes it
                                }
                                stream = back;
                                std::thread::sleep(ACCEPT_TICK);
                            }
                            Err(TrySendError::Disconnected(_)) => break,
                        }
                    }
                }
                Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_TICK);
                }
                Err(err) => return Err(format!("accept failed: {err}")),
            }
        }
        self.stop.store(true, Ordering::SeqCst);

        // Closing the dispatch side ends every handler once it finishes
        // its current connection (which sees the stop flag and drains).
        drop(dispatch);
        for handler in handlers {
            let _ = handler.join();
        }
        if let Some(scraper) = scraper {
            let _ = scraper.join();
        }
        let Ok(router) = Arc::try_unwrap(self.router) else {
            unreachable!("handlers joined; no other router owners remain");
        };
        let mut snapshot = router.shutdown();
        snapshot.admission = self.fair.counters();
        snapshot.tenants = self.fair.tenant_counters();
        Ok(snapshot)
    }
}

/// Answers every connection on the scrape listener with one HTTP/1.0
/// `200` carrying the Prometheus text rendering of the current router
/// snapshot, then closes. The request head is read best-effort and
/// ignored — any path scrapes.
fn serve_scrapes(
    listener: &TcpListener,
    router: &ShardRouter,
    fair: &FairShare,
    stop: &AtomicBool,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
                let mut head = [0u8; 1024];
                let _ = stream.read(&mut head);
                let mut snapshot = router.metrics();
                snapshot.admission = fair.counters();
                snapshot.tenants = fair.tenant_counters();
                let body = snapshot.to_prometheus();
                let response = format!(
                    "HTTP/1.0 200 OK\r\n\
                     Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
                     Content-Length: {}\r\n\
                     Connection: close\r\n\r\n{body}",
                    body.len()
                );
                let _ = stream.write_all(response.as_bytes());
                let _ = stream.flush();
                let _ = stream.shutdown(Shutdown::Both);
            }
            Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_TICK);
            }
            Err(_) => std::thread::sleep(ACCEPT_TICK),
        }
    }
}

/// One queued answer: the id to echo, the job, and the admission
/// in-flight slot released once the answer is on the wire.
type Pending = VecDeque<(Json, JobHandle, InflightGuard)>;

/// Generates a server-side session name for a `session.open` without
/// one. Distinct from the pools' own `s-N` scheme so the two generators
/// can never collide.
pub fn generate_session_name() -> String {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
    format!("net-{}", NEXT.fetch_add(1, Ordering::Relaxed))
}

/// Performs a session verb ([`Verb::SessionOpen`] / [`Verb::SessionClose`])
/// against the router and renders the ack (or error) line. Shared
/// between the TCP serve loop and the CLI's stdin modes.
///
/// # Panics
///
/// When called with a non-session verb.
pub fn session_verb_line(router: &ShardRouter, verb: &Verb) -> Json {
    match verb {
        Verb::SessionOpen { name, tenant } => {
            let name = name.clone().unwrap_or_else(generate_session_name);
            match router.open_session(&name, tenant.as_deref()) {
                Ok(opened) => {
                    let mut ok = verb_ok_line("session.open");
                    ok.set("session", Json::str(opened));
                    ok
                }
                Err(err) => verb_err_line("session.open", &err.to_string()),
            }
        }
        Verb::SessionClose { name, tenant } => {
            match router.close_session(name, tenant.as_deref()) {
                Ok(()) => {
                    let mut ok = verb_ok_line("session.close");
                    ok.set("session", Json::str(name));
                    ok
                }
                Err(err) => verb_err_line("session.close", &err.to_string()),
            }
        }
        _ => unreachable!("session_verb_line only handles session verbs"),
    }
}

fn emit(out: &mut TcpStream, line: &Json) -> std::io::Result<()> {
    let mut text = line.to_compact();
    text.push('\n');
    out.write_all(text.as_bytes())?;
    out.flush()
}

/// Emits every pending answer the mode allows: in `Ordered` mode only
/// completed answers at the *front* (request order is the contract), in
/// `Stream` mode any completed answer. Reports whether a line was
/// written.
fn drain_completed(
    pending: &mut Pending,
    out: &mut TcpStream,
    mode: AnswerMode,
) -> std::io::Result<bool> {
    let mut emitted = false;
    let mut index = 0;
    while index < pending.len() {
        let completed = pending[index].1.try_wait();
        match completed {
            Some(response) => {
                let (id, handle, guard) = pending.remove(index).expect("index < len");
                let trace: Option<Trace> = handle.trace().cloned();
                if let Some(trace) = &trace {
                    // `waited` is submission-to-completion; the SLO dump
                    // fires here when it reached the threshold.
                    trace.finish(response.waited);
                }
                emit(
                    out,
                    &response_line(id, &response, trace.as_ref().map(Trace::id)),
                )?;
                drop(guard); // the answer is delivered; free the slot
                emitted = true;
            }
            None if mode == AnswerMode::Ordered => break,
            None => index += 1,
        }
    }
    Ok(emitted)
}

/// Serves one connection to completion: reads request lines on a helper
/// thread, submits through admission, answers in the connection's
/// current mode, and drains pending answers when the client closes its
/// half or the server begins shutdown.
fn handle_connection(
    stream: TcpStream,
    router: &ShardRouter,
    fair: &FairShare,
    traces: &Arc<TraceRegistry>,
    stop: &AtomicBool,
) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let (sender, lines) = std::sync::mpsc::channel::<std::io::Result<String>>();
    let reader = std::thread::spawn(move || {
        for line in BufReader::new(read_half).lines() {
            let failed = line.is_err();
            if sender.send(line).is_err() || failed {
                return;
            }
        }
    });

    let mut out = stream;
    let mut pending: Pending = VecDeque::new();
    let mut mode = AnswerMode::Ordered;
    let mut number = 0usize;
    let mut open = true;
    let result: std::io::Result<()> = (|| {
        while open || !pending.is_empty() {
            if open && stop.load(Ordering::SeqCst) {
                // Server draining: take no further input, answer what is
                // pending, close. Shutting down the read half unblocks
                // the reader thread.
                open = false;
                let _ = out.shutdown(Shutdown::Read);
            }
            match lines.recv_timeout(ANSWER_TICK) {
                Ok(Ok(line)) => {
                    number += 1;
                    if line.trim().is_empty() {
                        continue;
                    }
                    match parse_line(&line, number) {
                        Input::Control(Verb::Ping) => emit(&mut out, &verb_ok_line("ping"))?,
                        Input::Control(Verb::Hello) => emit(&mut out, &hello_line())?,
                        Input::Control(
                            verb @ (Verb::SessionOpen { .. } | Verb::SessionClose { .. }),
                        ) => {
                            emit(&mut out, &session_verb_line(router, &verb))?;
                        }
                        Input::Control(Verb::Metrics) => {
                            let mut snapshot = router.metrics();
                            snapshot.admission = fair.counters();
                            snapshot.tenants = fair.tenant_counters();
                            emit(&mut out, &stamped(snapshot.to_json()))?;
                        }
                        Input::Control(Verb::Trace(trace)) => {
                            emit(&mut out, &trace_line(trace, &traces.events(trace)))?;
                        }
                        Input::Control(Verb::Prometheus) => {
                            let mut snapshot = router.metrics();
                            snapshot.admission = fair.counters();
                            snapshot.tenants = fair.tenant_counters();
                            let mut ok = verb_ok_line("prometheus");
                            ok.set("text", Json::str(snapshot.to_prometheus()));
                            emit(&mut out, &ok)?;
                        }
                        Input::Control(Verb::Mode(new_mode)) => {
                            mode = new_mode;
                            let mut ok = verb_ok_line("mode");
                            ok.set("value", Json::str(mode.as_str()));
                            emit(&mut out, &ok)?;
                        }
                        Input::Control(Verb::Shutdown) => {
                            emit(&mut out, &verb_ok_line("shutdown"))?;
                            stop.store(true, Ordering::SeqCst);
                        }
                        Input::Request(parsed) => match fair.submit(router, parsed.request) {
                            Ok((handle, guard)) => pending.push_back((parsed.id, handle, guard)),
                            Err(AdmissionError::RateLimited) => {
                                emit(&mut out, &rejected_line(parsed.id, "rate_limited"))?;
                            }
                            Err(AdmissionError::Service(ServiceError::UnknownSession(_))) => {
                                emit(&mut out, &rejected_line(parsed.id, "unknown_session"))?;
                            }
                            Err(AdmissionError::Service(_)) => {
                                emit(&mut out, &rejected_line(parsed.id, "shutting_down"))?;
                            }
                        },
                        Input::Bad { id, error } => emit(&mut out, &bad_request_line(id, &error))?,
                    }
                }
                Ok(Err(_)) | Err(RecvTimeoutError::Disconnected) => open = false,
                Err(RecvTimeoutError::Timeout) => {}
            }
            if !drain_completed(&mut pending, &mut out, mode)? && !open && !pending.is_empty() {
                // Input is done and a disconnected channel returns at
                // once: without this sleep the final wait would spin.
                std::thread::sleep(ANSWER_TICK);
            }
        }
        Ok(())
    })();
    // A write failure means the client is gone: drop the pending answers
    // (their guards release the admission slots) and close.
    drop(result);
    drop(pending);
    let _ = out.shutdown(Shutdown::Both);
    let _ = reader.join();
}

#[cfg(test)]
mod tests {
    use super::*;
    use rei_service::{RouterConfig, ServiceConfig, TenantPolicy};
    use std::io::BufRead;

    fn start_server(config: NetConfig) -> (SocketAddr, std::thread::JoinHandle<RouterSnapshot>) {
        let router = ShardRouter::start(RouterConfig::identical(2, ServiceConfig::new(1))).unwrap();
        let server = NetServer::bind(config, router).unwrap();
        let addr = server.local_addr();
        let serving = std::thread::spawn(move || server.run().unwrap());
        (addr, serving)
    }

    fn request_line(id: &str, positive: &str, tenant: &str) -> String {
        format!("{{\"id\": \"{id}\", \"pos\": [\"{positive}\"], \"tenant\": \"{tenant}\"}}\n")
    }

    #[test]
    fn serves_verbs_ordered_answers_and_clean_shutdown() {
        let (addr, serving) = start_server(NetConfig::new("127.0.0.1:0"));
        let mut client = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(client.try_clone().unwrap());
        let mut read_line = || {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            Json::parse(line.trim()).unwrap()
        };
        // Control verbs answer immediately, never queued behind jobs.
        client.write_all(b"{\"op\": \"ping\"}\n").unwrap();
        assert_eq!(read_line().get("op").and_then(Json::as_str), Some("ping"));
        // Ordered mode: answers come back in request order.
        client
            .write_all(request_line("a", "00", "t1").as_bytes())
            .unwrap();
        client
            .write_all(request_line("b", "11", "t2").as_bytes())
            .unwrap();
        let first = read_line();
        let second = read_line();
        assert_eq!(first.get("id").and_then(Json::as_str), Some("a"));
        assert_eq!(first.get("status").and_then(Json::as_str), Some("solved"));
        assert_eq!(second.get("id").and_then(Json::as_str), Some("b"));
        client.write_all(b"{\"op\": \"metrics\"}\n").unwrap();
        assert_eq!(
            read_line().get("schema").and_then(Json::as_str),
            Some("rei-service/router-metrics-v1")
        );
        client.write_all(b"{\"op\": \"shutdown\"}\n").unwrap();
        assert_eq!(
            read_line().get("op").and_then(Json::as_str),
            Some("shutdown")
        );
        let snapshot = serving.join().unwrap();
        assert_eq!(snapshot.admission.admitted, 2);
        assert_eq!(snapshot.rollup().solved, 2);
    }

    #[test]
    fn stream_mode_and_rate_limits_answer_immediately() {
        let config = NetConfig::new("127.0.0.1:0").with_admission(
            AdmissionConfig::new().with_tenant("throttled", TenantPolicy::limited(1e-9, 1.0)),
        );
        let (addr, serving) = start_server(config);
        let mut client = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(client.try_clone().unwrap());
        let mut read_line = || {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            Json::parse(line.trim()).unwrap()
        };
        client
            .write_all(b"{\"op\": \"mode\", \"value\": \"stream\"}\n")
            .unwrap();
        let ack = read_line();
        assert_eq!(ack.get("value").and_then(Json::as_str), Some("stream"));
        // One token: the first request is admitted, the second refused
        // with an explicit rejection — delivered while the first is
        // still possibly in flight, because this connection streams.
        client
            .write_all(request_line("ok", "00", "throttled").as_bytes())
            .unwrap();
        client
            .write_all(request_line("no", "11", "throttled").as_bytes())
            .unwrap();
        let mut statuses = std::collections::HashMap::new();
        for _ in 0..2 {
            let line = read_line();
            statuses.insert(
                line.get("id").and_then(Json::as_str).unwrap().to_string(),
                line.get("status")
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string(),
            );
        }
        assert_eq!(statuses["ok"], "solved");
        assert_eq!(statuses["no"], "rejected");
        client.write_all(b"{\"op\": \"shutdown\"}\n").unwrap();
        let snapshot = serving.join().unwrap();
        assert_eq!(snapshot.admission.rate_limited, 1);
    }

    #[test]
    fn concurrent_connections_are_served_and_eof_drains() {
        let (addr, serving) = start_server(NetConfig::new("127.0.0.1:0"));
        let clients: Vec<_> = (0..3)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut client = TcpStream::connect(addr).unwrap();
                    client
                        .write_all(
                            request_line(&format!("c{i}"), "010", &format!("t{i}")).as_bytes(),
                        )
                        .unwrap();
                    // EOF on the write half: the server answers, then
                    // closes.
                    client.shutdown(Shutdown::Write).unwrap();
                    let lines: Vec<String> =
                        BufReader::new(client).lines().map(|l| l.unwrap()).collect();
                    assert_eq!(lines.len(), 1, "{lines:?}");
                    Json::parse(&lines[0]).unwrap()
                })
            })
            .collect();
        for client in clients {
            let answer = client.join().unwrap();
            assert_eq!(
                answer.get("status").and_then(Json::as_str),
                Some("solved"),
                "{answer:?}"
            );
        }
        // Stop via the flag (the Ctrl-C path uses the same mechanism).
        let mut probe = TcpStream::connect(addr).unwrap();
        let snapshot = {
            // Reach the flag through a fresh bind? No — the serving
            // thread owns the server. Use the shutdown verb instead.
            probe.write_all(b"{\"op\": \"shutdown\"}\n").unwrap();
            serving.join().unwrap()
        };
        drop(probe);
        assert_eq!(snapshot.admission.admitted, 3);
    }

    #[test]
    fn trace_prometheus_verbs_and_the_scrape_endpoint_serve_observability() {
        let router = ShardRouter::start(RouterConfig::identical(2, ServiceConfig::new(1))).unwrap();
        let config = NetConfig::new("127.0.0.1:0").with_metrics_addr("127.0.0.1:0");
        let server = NetServer::bind(config, router).unwrap();
        let addr = server.local_addr();
        let scrape_addr = server.metrics_addr().expect("scrape listener bound");
        let serving = std::thread::spawn(move || server.run().unwrap());

        let mut client = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(client.try_clone().unwrap());
        let mut read_line = || {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            Json::parse(line.trim()).unwrap()
        };
        client
            .write_all(request_line("a", "010", "acme").as_bytes())
            .unwrap();
        let answer = read_line();
        assert_eq!(answer.get("status").and_then(Json::as_str), Some("solved"));
        let trace = answer
            .get("trace")
            .and_then(Json::as_u64)
            .expect("answers carry a trace id");

        // The timeline of the answered request is queryable by id.
        client
            .write_all(format!("{{\"op\": \"trace\", \"trace\": {trace}}}\n").as_bytes())
            .unwrap();
        let timeline = read_line();
        assert_eq!(timeline.get("trace").and_then(Json::as_u64), Some(trace));
        let events = timeline.get("events").and_then(Json::as_array).unwrap();
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("phase").and_then(Json::as_str).unwrap())
            .collect();
        assert_eq!(phases.first(), Some(&"admitted"), "{phases:?}");
        assert_eq!(phases.last(), Some(&"answered"), "{phases:?}");
        assert!(phases.contains(&"routed"), "{phases:?}");
        assert!(phases.contains(&"enqueued"), "{phases:?}");

        // The prometheus verb wraps the scrape body in a JSON line …
        client.write_all(b"{\"op\": \"prometheus\"}\n").unwrap();
        let wrapped = read_line();
        let text = wrapped.get("text").and_then(Json::as_str).unwrap();
        assert!(text.contains("rei_requests_submitted_total{pool="));
        assert!(text.contains("rei_tenant_submitted_total{tenant=\"acme\"} 1"));

        // … and the dedicated listener serves the same body over HTTP.
        let mut scrape = TcpStream::connect(scrape_addr).unwrap();
        scrape.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut raw = String::new();
        BufReader::new(scrape).read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.0 200 OK\r\n"), "{raw}");
        let body = raw.split("\r\n\r\n").nth(1).expect("header/body split");
        assert!(body.contains("# TYPE rei_request_seconds histogram"));
        assert!(body.contains("le=\"+Inf\""));

        client.write_all(b"{\"op\": \"shutdown\"}\n").unwrap();
        let snapshot = serving.join().unwrap();
        assert_eq!(snapshot.tenants.len(), 1);
        assert_eq!(snapshot.tenants[0].0, "acme");
        assert_eq!(snapshot.tenants[0].1.admitted, 1);
    }

    #[test]
    fn hello_sessions_and_refines_serve_over_tcp() {
        // One pool, one worker: refine ordering is deterministic.
        let router = ShardRouter::start(RouterConfig::identical(1, ServiceConfig::new(1))).unwrap();
        let server = NetServer::bind(NetConfig::new("127.0.0.1:0"), router).unwrap();
        let addr = server.local_addr();
        let serving = std::thread::spawn(move || server.run().unwrap());
        let mut client = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(client.try_clone().unwrap());
        let mut read_line = || {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            Json::parse(line.trim()).unwrap()
        };

        client.write_all(b"{\"op\": \"hello\"}\n").unwrap();
        let hello = read_line();
        assert_eq!(hello.get("op").and_then(Json::as_str), Some("hello"));
        assert_eq!(
            hello.get("proto").and_then(Json::as_u64),
            Some(crate::protocol::PROTO_VERSION)
        );

        // Open a named session, then one without a name.
        client
            .write_all(b"{\"op\": \"session.open\", \"name\": \"s1\"}\n")
            .unwrap();
        let opened = read_line();
        assert_eq!(opened.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(opened.get("session").and_then(Json::as_str), Some("s1"));
        client.write_all(b"{\"op\": \"session.open\"}\n").unwrap();
        let generated = read_line();
        let generated_name = generated.get("session").and_then(Json::as_str).unwrap();
        assert!(generated_name.starts_with("net-"), "{generated_name}");

        // First refine runs cold, the strengthened one warm.
        client
            .write_all(
                b"{\"verb\": \"refine\", \"session\": \"s1\", \"id\": \"r1\", \
                  \"pos\": [\"0\", \"00\"], \"neg\": [\"1\"]}\n",
            )
            .unwrap();
        let first = read_line();
        assert_eq!(first.get("status").and_then(Json::as_str), Some("solved"));
        assert_eq!(first.get("source").and_then(Json::as_str), Some("session"));
        assert_eq!(first.get("reuse").and_then(Json::as_str), Some("cold"));
        assert_eq!(
            first.get("reason").and_then(Json::as_str),
            Some("no_previous")
        );
        client
            .write_all(
                b"{\"verb\": \"refine\", \"session\": \"s1\", \"id\": \"r2\", \
                  \"pos\": [\"0\", \"00\"], \"neg\": [\"1\", \"10\"]}\n",
            )
            .unwrap();
        let second = read_line();
        assert_eq!(second.get("status").and_then(Json::as_str), Some("solved"));
        assert_eq!(second.get("reuse").and_then(Json::as_str), Some("warm"));
        assert!(second.get("reason").is_none());
        assert_eq!(
            second.get("proto").and_then(Json::as_u64),
            Some(crate::protocol::PROTO_VERSION)
        );

        // A refine against a session nobody opened is rejected.
        client
            .write_all(
                b"{\"verb\": \"refine\", \"session\": \"ghost\", \"id\": \"r3\", \
                  \"pos\": [\"0\"]}\n",
            )
            .unwrap();
        let ghost = read_line();
        assert_eq!(ghost.get("status").and_then(Json::as_str), Some("rejected"));
        assert_eq!(
            ghost.get("reason").and_then(Json::as_str),
            Some("unknown_session")
        );

        // Close: once ok, twice is an error line.
        client
            .write_all(b"{\"op\": \"session.close\", \"name\": \"s1\"}\n")
            .unwrap();
        assert_eq!(read_line().get("status").and_then(Json::as_str), Some("ok"));
        client
            .write_all(b"{\"op\": \"session.close\", \"name\": \"s1\"}\n")
            .unwrap();
        let closed_twice = read_line();
        assert_eq!(
            closed_twice.get("status").and_then(Json::as_str),
            Some("error")
        );
        assert!(closed_twice
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("unknown session"));

        client.write_all(b"{\"op\": \"shutdown\"}\n").unwrap();
        serving.join().unwrap();
    }

    #[test]
    fn stop_flag_drains_without_a_shutdown_verb() {
        let router = ShardRouter::start(RouterConfig::identical(1, ServiceConfig::new(1))).unwrap();
        let server = NetServer::bind(NetConfig::new("127.0.0.1:0"), router).unwrap();
        let addr = server.local_addr();
        let stop = server.stop_flag();
        let serving = std::thread::spawn(move || server.run().unwrap());
        let mut client = TcpStream::connect(addr).unwrap();
        client
            .write_all(request_line("x", "00", "t").as_bytes())
            .unwrap();
        // Wait for the answer so the request is surely in before the stop.
        let mut reader = BufReader::new(client.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("solved"), "{line}");
        stop.store(true, Ordering::SeqCst);
        let snapshot = serving.join().unwrap();
        assert_eq!(snapshot.admission.admitted, 1);
        // The drained connection was closed by the server.
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.is_empty(), "connection still open: {line}");
    }
}
