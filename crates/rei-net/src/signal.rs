//! A minimal shutdown-signal hook (SIGINT + SIGTERM) with no external
//! dependencies.
//!
//! The handler does the only async-signal-safe thing there is to do:
//! store into a static atomic. [`NetServer`](crate::NetServer)'s accept
//! loop polls [`shutdown_tripped`] once per tick and folds it into its
//! own stop flag, turning Ctrl-C — or a container orchestrator's
//! SIGTERM — into the same graceful drain (answer accepted jobs, fold
//! the persistent cache) the `shutdown` control verb triggers.

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TRIPPED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // Only this: anything else (locks, allocation, IO) is not
        // async-signal-safe.
        TRIPPED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    #[cfg(test)]
    extern "C" {
        fn raise(signum: i32) -> i32;
    }

    pub fn install() {
        // SAFETY: `signal` with a handler that only stores an atomic is
        // the POSIX-sanctioned minimal use; the handler never unwinds.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    pub fn tripped() -> bool {
        TRIPPED.load(Ordering::SeqCst)
    }

    #[cfg(test)]
    pub fn self_raise(signum: i32) {
        // SAFETY: raising a handled signal at ourselves is the standard
        // way to test a handler.
        unsafe {
            raise(signum);
        }
    }

    #[cfg(test)]
    pub const TEST_SIGTERM: i32 = SIGTERM;
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}

    pub fn tripped() -> bool {
        false
    }
}

/// Installs the SIGINT and SIGTERM handlers (a no-op on non-unix
/// targets), so interactive Ctrl-C and orchestrator-driven termination
/// both take the graceful-drain path. Idempotent.
pub fn install_shutdown_signals() {
    imp::install();
}

/// Backwards-compatible alias of [`install_shutdown_signals`] (the hook
/// predates SIGTERM handling and was named for SIGINT alone).
pub fn install_sigint() {
    install_shutdown_signals();
}

/// Whether a shutdown signal (SIGINT or SIGTERM) has fired since
/// [`install_shutdown_signals`].
pub fn shutdown_tripped() -> bool {
    imp::tripped()
}

/// Backwards-compatible alias of [`shutdown_tripped`].
pub fn sigint_tripped() -> bool {
    shutdown_tripped()
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    #[test]
    fn sigterm_trips_the_shutdown_flag() {
        install_shutdown_signals();
        assert!(!shutdown_tripped(), "clean before any signal");
        imp::self_raise(imp::TEST_SIGTERM);
        assert!(shutdown_tripped(), "SIGTERM takes the graceful path");
        // The legacy name observes the same flag.
        assert!(sigint_tripped());
    }
}
