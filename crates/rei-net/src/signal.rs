//! A minimal Ctrl-C (SIGINT) hook with no external dependencies.
//!
//! The handler does the only async-signal-safe thing there is to do:
//! store into a static atomic. [`NetServer`](crate::NetServer)'s accept
//! loop polls [`tripped`] once per tick and folds it into its own stop
//! flag, turning Ctrl-C into the same graceful drain the `shutdown`
//! control verb triggers.

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TRIPPED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;

    extern "C" fn on_sigint(_signum: i32) {
        // Only this: anything else (locks, allocation, IO) is not
        // async-signal-safe.
        TRIPPED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        // SAFETY: `signal` with a handler that only stores an atomic is
        // the POSIX-sanctioned minimal use; the handler never unwinds.
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }

    pub fn tripped() -> bool {
        TRIPPED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}

    pub fn tripped() -> bool {
        false
    }
}

/// Installs the SIGINT handler (a no-op on non-unix targets). Idempotent.
pub fn install_sigint() {
    imp::install();
}

/// Whether SIGINT has fired since [`install_sigint`].
pub fn sigint_tripped() -> bool {
    imp::tripped()
}
