//! The TCP JSONL serving front-end of the synthesis service.
//!
//! `rei-service` shards, caches and survives restarts, but on its own it
//! answers only one stdin/stdout loop. This crate puts a network
//! listener in front of a [`ShardRouter`](rei_service::ShardRouter):
//!
//! ```text
//!  clients ── TCP ──► accept loop ──► bounded handler pool
//!                                          │  one thread per live
//!                                          ▼  connection
//!                                  per-connection serve loop
//!                                  (JSONL in, JSONL out; ordered
//!                                   or streaming answers; control
//!                                   verbs ping/hello/metrics/mode/
//!                                   session.open/session.close/
//!                                   shutdown; refine requests)
//!                                          │
//!                                          ▼
//!                                  FairShare admission
//!                                  (per-tenant token buckets,
//!                                   in-flight caps, weighted DRR
//!                                   lanes; over-limit → explicit
//!                                   "rejected": rate_limited)
//!                                          │
//!                                          ▼
//!                                  ShardRouter (consistent-hash
//!                                  ring over the pools)
//! ```
//!
//! Everything is threads, mutexes and condvars — no async runtime, like
//! the rest of the workspace. The [`protocol`] module holds the wire
//! format (shared with the CLI's stdin serve mode); [`NetServer`] is the
//! listener; [`install_shutdown_signals`] turns Ctrl-C and an
//! orchestrator's SIGTERM into the same graceful drain the `shutdown`
//! control verb performs.
//!
//! # Example
//!
//! ```
//! use rei_net::{NetConfig, NetServer};
//! use rei_service::{RouterConfig, ServiceConfig, ShardRouter};
//! use std::io::{BufRead, BufReader, Write};
//!
//! let router = ShardRouter::start(RouterConfig::identical(2, ServiceConfig::new(1))).unwrap();
//! let server = NetServer::bind(NetConfig::new("127.0.0.1:0"), router).unwrap();
//! let addr = server.local_addr();
//! let serving = std::thread::spawn(move || server.run().unwrap());
//!
//! let mut client = std::net::TcpStream::connect(addr).unwrap();
//! client
//!     .write_all(b"{\"id\": \"a\", \"pos\": [\"0\", \"00\"], \"neg\": [\"1\"]}\n{\"op\": \"shutdown\"}\n")
//!     .unwrap();
//! let lines = BufReader::new(client).lines();
//! // Control verbs are acked immediately, so the shutdown ack may
//! // arrive ahead of the answer: skip `"op"` lines.
//! let answer = lines
//!     .map(|line| line.unwrap())
//!     .find(|line| !line.contains("\"op\""))
//!     .unwrap();
//! assert!(answer.contains("\"status\":\"solved\""), "{answer}");
//! let snapshot = serving.join().unwrap();
//! assert_eq!(snapshot.admission.admitted, 1);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod protocol;
mod server;
mod signal;

pub use server::{generate_session_name, session_verb_line, NetConfig, NetServer};
pub use signal::{install_shutdown_signals, install_sigint, shutdown_tripped, sigint_tripped};
