//! Device buffers: flat, accounted memory allocations.

use crate::Device;

/// A contiguous allocation in simulated device memory.
///
/// The synthesiser allocates its language cache and temporary matrices as
/// device buffers so that the device can account for memory usage the same
/// way the paper's implementation restricts itself to the 25 GB available
/// on the Colab CPU: when the configured budget is exceeded the engine
/// switches to OnTheFly mode and eventually reports out-of-memory.
///
/// # Example
///
/// ```
/// use gpu_sim::{Device, DeviceBuffer};
///
/// let device = Device::with_threads(2);
/// let mut buf: DeviceBuffer<u64> = DeviceBuffer::zeroed(&device, 1024);
/// buf.as_mut_slice()[0] = 42;
/// assert_eq!(buf.len(), 1024);
/// assert_eq!(device.stats().bytes_allocated, 8 * 1024);
/// drop(buf);
/// assert_eq!(device.stats().bytes_allocated, 0);
/// ```
#[derive(Debug)]
pub struct DeviceBuffer<T> {
    device: Device,
    data: Vec<T>,
}

impl<T: Clone + Default> DeviceBuffer<T> {
    /// Allocates a buffer of `len` default-initialised elements.
    pub fn zeroed(device: &Device, len: usize) -> Self {
        DeviceBuffer::from_vec(device, vec![T::default(); len])
    }
}

impl<T> DeviceBuffer<T> {
    /// Moves a host vector into device memory.
    pub fn from_vec(device: &Device, data: Vec<T>) -> Self {
        device.note_alloc((data.capacity() * std::mem::size_of::<T>()) as u64);
        DeviceBuffer {
            device: device.clone(),
            data,
        }
    }

    /// Copies a host slice into device memory.
    pub fn from_host(device: &Device, data: &[T]) -> Self
    where
        T: Clone,
    {
        DeviceBuffer::from_vec(device, data.to_vec())
    }

    /// Number of elements in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of the allocation in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<T>()
    }

    /// Read-only view of the device data.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the device data.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Copies the device data back to the host.
    pub fn to_host(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.data.clone()
    }
}

impl<T> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        self.device
            .note_free((self.data.capacity() * std::mem::size_of::<T>()) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_accounted_and_released() {
        let device = Device::sequential();
        {
            let a: DeviceBuffer<u64> = DeviceBuffer::zeroed(&device, 100);
            let b = DeviceBuffer::from_host(&device, &[1u8, 2, 3, 4]);
            assert_eq!(a.size_bytes(), 800);
            assert!(b.size_bytes() >= 4);
            assert!(device.stats().bytes_allocated >= 804);
            assert!(device.stats().peak_bytes >= 804);
        }
        assert_eq!(device.stats().bytes_allocated, 0);
        assert!(device.stats().peak_bytes >= 804);
    }

    #[test]
    fn round_trip_host_device() {
        let device = Device::sequential();
        let host = vec![3u32, 1, 4, 1, 5];
        let buf = DeviceBuffer::from_host(&device, &host);
        assert_eq!(buf.to_host(), host);
        assert_eq!(buf.len(), 5);
        assert!(!buf.is_empty());
    }

    #[test]
    fn kernels_can_write_buffers() {
        let device = Device::with_threads(2);
        let mut buf: DeviceBuffer<u64> = DeviceBuffer::zeroed(&device, 64);
        device.launch_chunks("fill", buf.as_mut_slice(), 8, |i, chunk| {
            chunk.fill(i as u64);
        });
        assert_eq!(buf.as_slice()[0], 0);
        assert_eq!(buf.as_slice()[63], 7);
    }
}
