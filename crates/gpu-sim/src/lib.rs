//! A software SIMT device model: the GPU substrate of Paresy-rs.
//!
//! The paper's fast implementation targets an Nvidia A100 with CUDA and the
//! WarpCore hash set. Neither a GPU nor mature Rust GPU tooling is
//! available in this reproduction, so this crate provides the closest
//! software equivalent that exercises the same algorithmic structure:
//!
//! * [`Device`] — a "device" with a fixed number of hardware threads that
//!   executes *kernels*: data-parallel loops over an index space, launched
//!   in grid/block style and executed by a pool of OS threads
//!   (crossbeam-scoped). Kernels must be free of data-dependent branching
//!   across items in the same way CUDA kernels are — each item writes only
//!   to its own chunk of the output buffer.
//! * [`DeviceBuffer`] — flat, contiguous device memory with explicit
//!   allocation accounting, mirroring the paper's single pre-allocated
//!   language cache and its out-of-memory behaviour.
//! * [`hashset`] — a WarpCore-style concurrent hash set used for the
//!   global uniqueness check: a lock-free open-addressing table for
//!   single-word keys and a sharded exact table for multi-word keys.
//! * [`DeviceStats`] — counters (kernel launches, items executed, bytes
//!   allocated, hash-set insertions) that the benchmark harness reports.
//!
//! # Example
//!
//! ```
//! use gpu_sim::Device;
//!
//! let device = Device::with_threads(4);
//! let mut out = vec![0u64; 1024];
//! // One "thread" per output element: a trivially data-parallel kernel.
//! device.launch_chunks("square", &mut out, 1, |i, chunk| {
//!     chunk[0] = (i as u64) * (i as u64);
//! });
//! assert_eq!(out[10], 100);
//! assert_eq!(device.stats().kernel_launches, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod device;
pub mod hashset;
mod stats;

pub use buffer::DeviceBuffer;
pub use device::{Device, DeviceConfig};
pub use stats::DeviceStats;
