//! The simulated SIMT device: kernel launches over a thread pool.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::DeviceStats;

/// Configuration of a simulated device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceConfig {
    /// Number of OS threads that play the role of streaming
    /// multiprocessors. Defaults to the available parallelism of the host.
    pub threads: usize,
    /// Number of items each worker claims at a time (the "thread block"
    /// size). Larger blocks amortise scheduling overhead; smaller blocks
    /// balance irregular work better.
    pub block_size: usize,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        DeviceConfig {
            threads,
            block_size: 256,
        }
    }
}

#[derive(Debug, Default)]
struct Counters {
    kernel_launches: AtomicU64,
    items_executed: AtomicU64,
    bytes_allocated: AtomicU64,
    peak_bytes: AtomicU64,
    hash_insertions: AtomicU64,
}

/// A simulated data-parallel device.
///
/// A `Device` is cheap to clone (it is an [`Arc`] around its counters) and
/// is `Send + Sync`, so engines and benchmark harnesses can share one
/// device across components.
///
/// # Example
///
/// ```
/// use gpu_sim::{Device, DeviceConfig};
///
/// let device = Device::new(DeviceConfig { threads: 2, block_size: 8 });
/// let mut out = vec![0u32; 100];
/// device.launch_chunks("fill", &mut out, 1, |i, chunk| chunk[0] = i as u32);
/// assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32));
/// ```
#[derive(Debug, Clone)]
pub struct Device {
    config: DeviceConfig,
    counters: Arc<Counters>,
}

impl Default for Device {
    fn default() -> Self {
        Device::new(DeviceConfig::default())
    }
}

impl Device {
    /// Creates a device with the given configuration.
    pub fn new(config: DeviceConfig) -> Self {
        let config = DeviceConfig {
            threads: config.threads.max(1),
            block_size: config.block_size.max(1),
        };
        Device {
            config,
            counters: Arc::new(Counters::default()),
        }
    }

    /// Creates a device with `threads` worker threads and the default block
    /// size.
    pub fn with_threads(threads: usize) -> Self {
        Device::new(DeviceConfig {
            threads,
            ..DeviceConfig::default()
        })
    }

    /// A "device" with a single worker thread: the sequential baseline with
    /// identical code paths, useful for ablations.
    pub fn sequential() -> Self {
        Device::with_threads(1)
    }

    /// The configuration the device was created with.
    pub fn config(&self) -> DeviceConfig {
        self.config
    }

    /// Resets the per-run execution counters so a device reused across
    /// many synthesis runs (one session, a whole benchmark suite) can
    /// report per-run deltas.
    ///
    /// Kernel-launch, item and hash-insertion counters are zeroed. The
    /// live-allocation gauge is *not* touched — buffers allocated before
    /// the reset are still resident — and the peak gauge restarts from the
    /// current live size.
    pub fn reset_stats(&self) {
        self.counters.kernel_launches.store(0, Ordering::Relaxed);
        self.counters.items_executed.store(0, Ordering::Relaxed);
        self.counters.hash_insertions.store(0, Ordering::Relaxed);
        let live = self.counters.bytes_allocated.load(Ordering::Relaxed);
        self.counters.peak_bytes.store(live, Ordering::Relaxed);
    }

    /// A snapshot of the execution statistics.
    pub fn stats(&self) -> DeviceStats {
        DeviceStats {
            kernel_launches: self.counters.kernel_launches.load(Ordering::Relaxed),
            items_executed: self.counters.items_executed.load(Ordering::Relaxed),
            bytes_allocated: self.counters.bytes_allocated.load(Ordering::Relaxed),
            peak_bytes: self.counters.peak_bytes.load(Ordering::Relaxed),
            hash_insertions: self.counters.hash_insertions.load(Ordering::Relaxed),
        }
    }

    /// Launches a kernel over the index space `0..items`.
    ///
    /// The closure is invoked once per item, possibly concurrently from
    /// several worker threads; it must therefore only perform its own
    /// synchronisation (e.g. atomics, the device hash set) for shared
    /// state. Prefer [`Device::launch_chunks`] when each item owns a
    /// disjoint slice of an output buffer.
    pub fn launch<F>(&self, _name: &str, items: usize, kernel: F)
    where
        F: Fn(usize) + Sync,
    {
        self.note_launch(items);
        if items == 0 {
            return;
        }
        let workers = self
            .config
            .threads
            .min(items.div_ceil(self.config.block_size))
            .max(1);
        if workers == 1 {
            for i in 0..items {
                kernel(i);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        let block = self.config.block_size;
        crossbeam::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| loop {
                    let start = next.fetch_add(block, Ordering::Relaxed);
                    if start >= items {
                        break;
                    }
                    let end = (start + block).min(items);
                    for i in start..end {
                        kernel(i);
                    }
                });
            }
        })
        .expect("kernel worker panicked");
    }

    /// Launches a kernel in which item `i` owns the `i`-th chunk of
    /// `chunk_len` elements of `out`.
    ///
    /// This is the shape of every builder kernel in the synthesiser: the
    /// temporary output matrix is carved into per-candidate rows and each
    /// simulated thread fills exactly one row, so no synchronisation is
    /// needed on the output (mirroring the write-once discipline of the
    /// paper's language cache).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero or `out.len()` is not a multiple of
    /// `chunk_len`.
    pub fn launch_chunks<T, F>(&self, _name: &str, out: &mut [T], chunk_len: usize, kernel: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk_len > 0, "chunk_len must be positive");
        assert_eq!(
            out.len() % chunk_len,
            0,
            "output length must be a multiple of chunk_len"
        );
        let items = out.len() / chunk_len;
        self.note_launch(items);
        if items == 0 {
            return;
        }
        // One worker per "thread block" of items, capped by the device's
        // hardware threads; small launches run on a single worker, which
        // keeps the (very real) launch overhead proportional to the work.
        let blocks = items.div_ceil(self.config.block_size);
        let workers = self.config.threads.min(blocks).max(1);
        if workers == 1 {
            for (i, chunk) in out.chunks_mut(chunk_len).enumerate() {
                kernel(i, chunk);
            }
            return;
        }
        // Distribute whole thread blocks (groups of `block_size` chunks)
        // over workers through a channel; ownership of each disjoint
        // `&mut` group moves to exactly one worker, which then iterates the
        // per-item chunks inside it. Block-level granularity keeps the
        // scheduling overhead amortised over many items.
        let group_len = chunk_len * self.config.block_size;
        let block_size = self.config.block_size;
        let (tx, rx) = crossbeam::channel::unbounded();
        for pair in out.chunks_mut(group_len).enumerate() {
            tx.send(pair).expect("channel send");
        }
        drop(tx);
        let kernel = &kernel;
        crossbeam::scope(|scope| {
            for _ in 0..workers {
                let rx = rx.clone();
                scope.spawn(move |_| {
                    while let Ok((group_idx, group)) = rx.recv() {
                        let base = group_idx * block_size;
                        for (offset, chunk) in group.chunks_mut(chunk_len).enumerate() {
                            kernel(base + offset, chunk);
                        }
                    }
                });
            }
        })
        .expect("kernel worker panicked");
    }

    fn note_launch(&self, items: usize) {
        self.counters
            .kernel_launches
            .fetch_add(1, Ordering::Relaxed);
        self.counters
            .items_executed
            .fetch_add(items as u64, Ordering::Relaxed);
    }

    pub(crate) fn note_alloc(&self, bytes: u64) {
        let now = self
            .counters
            .bytes_allocated
            .fetch_add(bytes, Ordering::Relaxed)
            + bytes;
        self.counters.peak_bytes.fetch_max(now, Ordering::Relaxed);
    }

    pub(crate) fn note_free(&self, bytes: u64) {
        self.counters
            .bytes_allocated
            .fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Records a kernel launch of `items` items that was *scheduled by the
    /// caller* rather than through [`Device::launch`] /
    /// [`Device::launch_chunks`].
    ///
    /// Backends that partition work over their own scoped threads (the
    /// thread-parallel CPU backend) use this so that launch and item
    /// counters stay comparable across backends in benchmark reports.
    pub fn record_launch(&self, items: usize) {
        self.note_launch(items);
    }

    /// Records `count` hash-set insertions in the device statistics.
    ///
    /// The concurrent sets themselves do not touch this counter so that
    /// kernel hot paths stay free of shared-counter contention; engines
    /// call this once per batch instead.
    pub fn record_hash_insertions(&self, count: u64) {
        self.counters
            .hash_insertions
            .fetch_add(count, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn launch_visits_every_item_exactly_once() {
        let device = Device::with_threads(4);
        let counter = AtomicU64::new(0);
        device.launch("count", 1000, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn launch_chunks_gives_each_item_its_own_chunk() {
        let device = Device::new(DeviceConfig {
            threads: 3,
            block_size: 4,
        });
        let mut out = vec![0u64; 12 * 4];
        device.launch_chunks("ids", &mut out, 4, |i, chunk| {
            for (j, slot) in chunk.iter_mut().enumerate() {
                *slot = (i * 4 + j) as u64;
            }
        });
        let expected: Vec<u64> = (0..48).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn sequential_device_uses_one_worker() {
        let device = Device::sequential();
        let mut out = vec![0u8; 10];
        device.launch_chunks("fill", &mut out, 1, |i, chunk| chunk[0] = i as u8);
        assert_eq!(out, (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn empty_launch_is_a_noop() {
        let device = Device::with_threads(2);
        let mut out: Vec<u64> = Vec::new();
        device.launch_chunks("noop", &mut out, 8, |_, _| unreachable!());
        device.launch("noop", 0, |_| unreachable!());
        assert_eq!(device.stats().items_executed, 0);
        assert_eq!(device.stats().kernel_launches, 2);
    }

    #[test]
    fn stats_count_launches_and_items() {
        let device = Device::with_threads(2);
        device.launch("a", 10, |_| {});
        device.launch("b", 5, |_| {});
        let stats = device.stats();
        assert_eq!(stats.kernel_launches, 2);
        assert_eq!(stats.items_executed, 15);
    }

    #[test]
    fn reset_stats_gives_per_run_deltas_on_a_reused_device() {
        let device = Device::with_threads(2);
        device.launch("warm-up-run", 10, |_| {});
        device.record_hash_insertions(3);
        assert_eq!(device.stats().kernel_launches, 1);

        device.reset_stats();
        let cleared = device.stats();
        assert_eq!(cleared.kernel_launches, 0);
        assert_eq!(cleared.items_executed, 0);
        assert_eq!(cleared.hash_insertions, 0);

        device.launch("second-run", 7, |_| {});
        assert_eq!(device.stats().kernel_launches, 1);
        assert_eq!(device.stats().items_executed, 7);
    }

    #[test]
    fn reset_stats_keeps_live_allocations() {
        let device = Device::sequential();
        let buffer = crate::DeviceBuffer::<u64>::zeroed(&device, 16);
        let live = device.stats().bytes_allocated;
        assert!(live > 0);
        device.reset_stats();
        assert_eq!(device.stats().bytes_allocated, live);
        assert_eq!(device.stats().peak_bytes, live);
        drop(buffer);
        assert_eq!(device.stats().bytes_allocated, 0);
    }

    #[test]
    #[should_panic(expected = "multiple of chunk_len")]
    fn mismatched_chunking_panics() {
        let device = Device::sequential();
        let mut out = vec![0u64; 10];
        device.launch_chunks("bad", &mut out, 3, |_, _| {});
    }

    #[test]
    fn zero_thread_config_is_clamped() {
        let device = Device::new(DeviceConfig {
            threads: 0,
            block_size: 0,
        });
        assert_eq!(device.config().threads, 1);
        assert_eq!(device.config().block_size, 1);
        let counter = AtomicU64::new(0);
        device.launch("count", 7, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 7);
    }
}
