//! Execution statistics of the simulated device.

/// Counters accumulated by a [`crate::Device`] over its lifetime.
///
/// The benchmark harness reports these alongside wall-clock times so that
/// runs can be compared in hardware-independent terms (number of kernel
/// launches, number of data-parallel items processed, device memory used),
/// mirroring the `# REs` column of the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeviceStats {
    /// Number of kernel launches issued.
    pub kernel_launches: u64,
    /// Total number of data-parallel items executed across all launches.
    pub items_executed: u64,
    /// Bytes currently allocated in device buffers.
    pub bytes_allocated: u64,
    /// High-water mark of allocated bytes.
    pub peak_bytes: u64,
    /// Number of insertions attempted on device hash sets.
    pub hash_insertions: u64,
}

impl DeviceStats {
    /// Returns a zeroed statistics record.
    pub fn new() -> Self {
        DeviceStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_all_zero() {
        let s = DeviceStats::new();
        assert_eq!(s.kernel_launches, 0);
        assert_eq!(s.items_executed, 0);
        assert_eq!(s.bytes_allocated, 0);
        assert_eq!(s.peak_bytes, 0);
        assert_eq!(s.hash_insertions, 0);
    }
}
