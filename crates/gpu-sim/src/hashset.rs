//! WarpCore-style concurrent hash sets for the global uniqueness check.
//!
//! The paper removes duplicate characteristic sequences as soon as they are
//! constructed, using the WarpCore GPU hash set for 32/64-bit keys on the
//! GPU and `std::unordered_set` on the CPU. This module provides the same
//! two roles:
//!
//! * [`LockFreeU64Set`] — an insert-only, open-addressing, lock-free hash
//!   set for single 64-bit keys (characteristic sequences that fit in one
//!   machine word, the common case for the paper's benchmarks, which are
//!   limited to 64-bit CSs on the GPU).
//! * [`ShardedSet`] — an exact, sharded (mutex-per-shard) set for
//!   multi-word keys, playing the role of the CPU hash set.
//! * [`CsSet`] — a façade that picks the appropriate implementation from
//!   the row width and exposes the single operation the synthesiser needs:
//!   `insert(row) -> bool` ("was this row new?").

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Multiplicative hashing constant (Fibonacci hashing, as used by many GPU
/// hash tables including WarpCore's default probing schemes).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Mixes a 64-bit value (splitmix64 finaliser).
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(GOLDEN_GAMMA);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hashes a multi-word row to a 64-bit value.
#[inline]
pub fn hash_row(row: &[u64]) -> u64 {
    let mut acc = 0xCBF2_9CE4_8422_2325;
    for &block in row {
        acc = mix64(acc ^ block);
    }
    acc
}

/// Slot states of the lock-free table.
const SLOT_EMPTY: u8 = 0;
const SLOT_WRITING: u8 = 1;
const SLOT_READY: u8 = 2;

/// An insert-only, lock-free, open-addressing hash set for `u64` keys.
///
/// The table has a fixed capacity chosen at construction time. Insertion
/// uses linear probing with a compare-and-swap claim on the slot state
/// followed by a release-store of the key, the same publish protocol used
/// by GPU hash tables such as WarpCore. When the table becomes full,
/// further insertions are counted in [`LockFreeU64Set::overflowed`] and
/// reported as unique; the synthesiser sizes the table from its memory
/// budget so this only happens after the language cache itself is full.
///
/// # Example
///
/// ```
/// use gpu_sim::hashset::LockFreeU64Set;
///
/// let set = LockFreeU64Set::with_capacity(100);
/// assert!(set.insert(42));
/// assert!(!set.insert(42));
/// assert_eq!(set.len(), 1);
/// ```
#[derive(Debug)]
pub struct LockFreeU64Set {
    states: Vec<AtomicU8>,
    keys: Vec<AtomicU64>,
    mask: usize,
    len: AtomicUsize,
    overflowed: AtomicUsize,
}

impl LockFreeU64Set {
    /// Creates a set able to hold at least `capacity` keys at a load factor
    /// of at most 50 %.
    pub fn with_capacity(capacity: usize) -> Self {
        let slots = (capacity.max(1) * 2).next_power_of_two();
        LockFreeU64Set {
            states: (0..slots).map(|_| AtomicU8::new(SLOT_EMPTY)).collect(),
            keys: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            mask: slots - 1,
            len: AtomicUsize::new(0),
            overflowed: AtomicUsize::new(0),
        }
    }

    /// Number of slots in the table.
    pub fn capacity(&self) -> usize {
        self.states.len()
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Returns `true` if no key has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of insertions that could not be recorded because the table
    /// was full (they were reported as unique).
    pub fn overflowed(&self) -> usize {
        self.overflowed.load(Ordering::Relaxed)
    }

    /// Current load factor (stored keys over slots).
    pub fn load_factor(&self) -> f64 {
        self.len() as f64 / self.capacity() as f64
    }

    /// Doubles the table size, re-inserting all stored keys. Requires
    /// exclusive access; concurrent inserters must be quiescent, which is
    /// the case for the synthesiser's per-level uniqueness pass.
    pub fn grow(&mut self) {
        let bigger = LockFreeU64Set::with_capacity(self.capacity());
        for (state, key) in self.states.iter().zip(&self.keys) {
            if state.load(Ordering::Acquire) == SLOT_READY {
                bigger.insert(key.load(Ordering::Acquire));
            }
        }
        *self = bigger;
    }

    /// Inserts `key`, returning `true` if it was not present before.
    pub fn insert(&self, key: u64) -> bool {
        let mut idx = (mix64(key) as usize) & self.mask;
        for _ in 0..self.states.len() {
            loop {
                match self.states[idx].load(Ordering::Acquire) {
                    SLOT_READY => {
                        if self.keys[idx].load(Ordering::Acquire) == key {
                            return false;
                        }
                        break; // occupied by a different key: probe onwards
                    }
                    SLOT_EMPTY => {
                        if self.states[idx]
                            .compare_exchange(
                                SLOT_EMPTY,
                                SLOT_WRITING,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            )
                            .is_ok()
                        {
                            self.keys[idx].store(key, Ordering::Release);
                            self.states[idx].store(SLOT_READY, Ordering::Release);
                            self.len.fetch_add(1, Ordering::Relaxed);
                            return true;
                        }
                        // Lost the race: retry the same slot.
                    }
                    _ => {
                        // A writer is publishing this slot; spin briefly.
                        std::hint::spin_loop();
                    }
                }
            }
            idx = (idx + 1) & self.mask;
        }
        self.overflowed.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Returns `true` if `key` has been inserted.
    pub fn contains(&self, key: u64) -> bool {
        let mut idx = (mix64(key) as usize) & self.mask;
        for _ in 0..self.states.len() {
            match self.states[idx].load(Ordering::Acquire) {
                SLOT_EMPTY => return false,
                SLOT_READY if self.keys[idx].load(Ordering::Acquire) == key => {
                    return true;
                }
                _ => {
                    // Either a writer is in flight (it can only be
                    // publishing a key that is not yet visible) or the slot
                    // holds another key — treat as occupied and probe on.
                }
            }
            idx = (idx + 1) & self.mask;
        }
        false
    }
}

/// A pass-through hasher for keys that already *are* [`hash_row`]
/// outputs: re-mixing a well-mixed 64-bit value through SipHash would
/// waste exactly the work [`ShardedSet::insert_hashed`] exists to avoid.
#[derive(Default)]
struct PrehashedKey(u64);

impl std::hash::Hasher for PrehashedKey {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write_u64(&mut self, key: u64) {
        self.0 = key;
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only `u64` keys reach these maps (their `Hash` impl calls
        // `write_u64`); fold any other input conservatively so the hasher
        // stays total.
        for &byte in bytes {
            self.0 = self.0.rotate_left(8) ^ u64::from(byte);
        }
    }
}

/// The rows sharing one [`hash_row`] value. Collisions are vanishingly
/// rare, so the first row is stored inline — one allocation per unique
/// row, exactly like the plain `HashSet<Box<[u64]>>` it replaced — and
/// only an actual collision upgrades the bucket to a `Vec`.
#[derive(Debug)]
enum Bucket {
    /// The common case: one row owns this hash.
    One(Box<[u64]>),
    /// Two or more distinct rows collided on the hash.
    Many(Vec<Box<[u64]>>),
}

impl Bucket {
    fn contains(&self, row: &[u64]) -> bool {
        match self {
            Bucket::One(stored) => &**stored == row,
            Bucket::Many(rows) => rows.iter().any(|stored| &**stored == row),
        }
    }

    /// Adds `row` to the bucket, returning `false` if it was present.
    fn push_if_new(&mut self, row: &[u64]) -> bool {
        match self {
            Bucket::One(stored) => {
                if &**stored == row {
                    return false;
                }
                let first = std::mem::take(stored);
                *self = Bucket::Many(vec![first, row.into()]);
                true
            }
            Bucket::Many(rows) => {
                if rows.iter().any(|stored| &**stored == row) {
                    return false;
                }
                rows.push(row.into());
                true
            }
        }
    }
}

/// One shard of a [`ShardedSet`]: the caller-visible [`hash_row`] value
/// to the (almost always singleton) bucket of distinct rows sharing it,
/// keyed without re-hashing.
type Shard = Mutex<HashMap<u64, Bucket, std::hash::BuildHasherDefault<PrehashedKey>>>;

/// An exact concurrent set for multi-word keys, sharded over mutexes.
///
/// This plays the role of the CPU-side `std::unordered_set`: correctness
/// over raw speed. The shard count bounds contention when the parallel
/// engine performs its uniqueness pass.
///
/// Internally each shard maps the caller-visible 64-bit [`hash_row`] value
/// to the (almost always singleton) `Bucket` of distinct rows sharing
/// it, through a pass-through hasher — so every insertion hashes the
/// multi-word row exactly once, and only exact equality inside a bucket
/// touches the row again. Callers that already hold a row's hash (say,
/// carried alongside the row through a pipeline) can skip even that one
/// walk via [`ShardedSet::insert_hashed`]; the synthesiser's kernels use
/// plain [`ShardedSet::insert`], whose single internal [`hash_row`] is
/// already the minimum.
#[derive(Debug)]
pub struct ShardedSet {
    shards: Vec<Shard>,
    len: AtomicUsize,
}

impl ShardedSet {
    /// Creates a set with the given number of shards (rounded up to a power
    /// of two).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        ShardedSet {
            shards: (0..shards)
                .map(|_| Mutex::new(HashMap::default()))
                .collect(),
            len: AtomicUsize::new(0),
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Returns `true` if no key has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pre-sizes every shard for `additional` further rows in total, so a
    /// streamed level's insertions do not rehash shard tables mid-pass.
    /// Safe to call while other threads insert (each shard is locked), but
    /// intended for the quiescent point before a level starts.
    pub fn reserve(&self, additional: usize) {
        let per_shard = additional.div_ceil(self.shards.len());
        for shard in &self.shards {
            shard.lock().reserve(per_shard);
        }
    }

    /// Inserts `row`, returning `true` if it was not present before.
    pub fn insert(&self, row: &[u64]) -> bool {
        self.insert_hashed(row, hash_row(row))
    }

    /// The shard a hash belongs to. Shards are picked from the *upper*
    /// hash bits: the pass-through shard maps consume the lower bits for
    /// their bucket index, and keys within one shard share their low
    /// shard-index bits by construction — using them twice would cluster
    /// every shard map into a fraction of its buckets.
    fn shard_of(&self, hash: u64) -> usize {
        ((hash >> 32) as usize) & (self.shards.len() - 1)
    }

    /// Like [`ShardedSet::insert`], with the row's [`hash_row`] value
    /// precomputed by the caller, so the row itself is only touched for
    /// exact equality inside its bucket.
    pub fn insert_hashed(&self, row: &[u64], hash: u64) -> bool {
        debug_assert_eq!(hash, hash_row(row), "caller-supplied hash mismatch");
        let mut guard = self.shards[self.shard_of(hash)].lock();
        let fresh = match guard.entry(hash) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(Bucket::One(row.into()));
                true
            }
            std::collections::hash_map::Entry::Occupied(mut slot) => {
                slot.get_mut().push_if_new(row)
            }
        };
        if fresh {
            self.len.fetch_add(1, Ordering::Relaxed);
        }
        fresh
    }

    /// Returns `true` if `row` has been inserted.
    pub fn contains(&self, row: &[u64]) -> bool {
        let hash = hash_row(row);
        self.shards[self.shard_of(hash)]
            .lock()
            .get(&hash)
            .is_some_and(|bucket| bucket.contains(row))
    }
}

/// The uniqueness filter used by the synthesiser: dispatches to the
/// lock-free single-word table when rows fit in one `u64` (the paper's GPU
/// restriction) and to the exact sharded table otherwise.
#[derive(Debug)]
pub enum CsSet {
    /// Rows are a single `u64`.
    Narrow(LockFreeU64Set),
    /// Rows span multiple `u64` blocks.
    Wide(ShardedSet),
}

impl CsSet {
    /// Creates a uniqueness filter for rows of `blocks` 64-bit words, able
    /// to hold about `capacity` rows.
    pub fn new(blocks: usize, capacity: usize) -> Self {
        if blocks <= 1 {
            CsSet::Narrow(LockFreeU64Set::with_capacity(capacity))
        } else {
            let set = ShardedSet::new(64);
            set.reserve(capacity);
            CsSet::Wide(set)
        }
    }

    /// Grows the underlying table if it is nearing its load-factor limit.
    /// Call between kernel launches (i.e. without concurrent inserters);
    /// the WarpCore-style table does not grow on its own.
    pub fn maybe_grow(&mut self) {
        if let CsSet::Narrow(set) = self {
            if set.load_factor() >= 0.5 {
                set.grow();
            }
        }
    }

    /// Ensures the table can absorb `additional` further keys: the narrow
    /// WarpCore-style table is grown until it would stay at or below a
    /// 50 % load factor (it cannot grow itself mid-pass — growth needs
    /// `&mut`), the wide sharded table pre-sizes its shard maps. The
    /// search calls this once before a streamed level starts, so no kernel
    /// ever inserts into a table that needs resizing.
    pub fn reserve(&mut self, additional: usize) {
        match self {
            CsSet::Narrow(set) => {
                while (set.len() + additional) * 2 > set.capacity() {
                    set.grow();
                }
            }
            CsSet::Wide(set) => set.reserve(additional),
        }
    }

    /// Inserts a row, returning `true` if it was new.
    ///
    /// Insertions are *not* counted in any device statistics here — the
    /// engines record them in bulk via
    /// [`Device::record_hash_insertions`](crate::Device::record_hash_insertions)
    /// so that the hot path of a kernel performs no shared-counter
    /// traffic.
    pub fn insert(&self, row: &[u64]) -> bool {
        match self {
            CsSet::Narrow(set) => set.insert(row[0]),
            CsSet::Wide(set) => set.insert(row),
        }
    }

    /// Like [`CsSet::insert`], with the row's [`hash_row`] value already
    /// computed by the caller. The narrow single-word table keys directly
    /// off the row word and ignores the hash; the wide table uses it to
    /// find the bucket without re-walking the row.
    ///
    /// The synthesiser's own kernels call plain [`CsSet::insert`] — its
    /// single internal hash (none at all on narrow rows) is already the
    /// minimum, so precomputing would only pessimize the narrow path.
    /// This entry point exists for callers that carry a row's hash
    /// alongside the row anyway (e.g. a pipeline that fingerprints rows
    /// for routing before deduplicating them).
    pub fn insert_hashed(&self, row: &[u64], hash: u64) -> bool {
        match self {
            CsSet::Narrow(set) => set.insert(row[0]),
            CsSet::Wide(set) => set.insert_hashed(row, hash),
        }
    }

    /// Number of insertions the filter could not record exactly (reported
    /// as unique instead). Only the fixed-capacity narrow table can
    /// overflow — and only once the search has stopped reserving, i.e.
    /// after the language cache itself rejected rows; the sharded table is
    /// exact. Surfaced in the session statistics.
    pub fn overflowed(&self) -> u64 {
        match self {
            CsSet::Narrow(set) => set.overflowed() as u64,
            CsSet::Wide(_) => 0,
        }
    }

    /// Returns `true` if the row has been inserted before.
    pub fn contains(&self, row: &[u64]) -> bool {
        match self {
            CsSet::Narrow(set) => set.contains(row[0]),
            CsSet::Wide(set) => set.contains(row),
        }
    }

    /// Number of distinct rows recorded.
    pub fn len(&self) -> usize {
        match self {
            CsSet::Narrow(set) => set.len(),
            CsSet::Wide(set) => set.len(),
        }
    }

    /// Returns `true` if no row has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Device;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn lock_free_set_basic_insert_contains() {
        let set = LockFreeU64Set::with_capacity(16);
        assert!(set.is_empty());
        assert!(set.insert(7));
        assert!(set.insert(0));
        assert!(set.insert(u64::MAX));
        assert!(!set.insert(7));
        assert!(set.contains(0));
        assert!(set.contains(u64::MAX));
        assert!(!set.contains(1));
        assert_eq!(set.len(), 3);
        assert_eq!(set.overflowed(), 0);
    }

    #[test]
    fn lock_free_set_concurrent_inserts_count_each_key_once() {
        let set = LockFreeU64Set::with_capacity(4096);
        let unique = AtomicUsize::new(0);
        crossbeam::scope(|scope| {
            for t in 0..8 {
                let set = &set;
                let unique = &unique;
                scope.spawn(move |_| {
                    // Each key 0..1024 is inserted by every thread; exactly
                    // one insertion per key may report "new".
                    for key in 0..1024u64 {
                        let rotated = key.rotate_left(t * 7);
                        if set.insert(rotated) {
                            unique.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        })
        .unwrap();
        // 8 threads insert rotations; count distinct rotated keys.
        let mut expected = std::collections::HashSet::new();
        for t in 0..8u32 {
            for key in 0..1024u64 {
                expected.insert(key.rotate_left(t * 7));
            }
        }
        assert_eq!(unique.load(Ordering::Relaxed), expected.len());
        assert_eq!(set.len(), expected.len());
    }

    #[test]
    fn lock_free_set_grows_preserving_membership() {
        let mut set = LockFreeU64Set::with_capacity(8);
        for key in 0..200u64 {
            if set.load_factor() >= 0.5 {
                set.grow();
            }
            assert!(set.insert(key * 17));
        }
        assert_eq!(set.len(), 200);
        assert_eq!(set.overflowed(), 0);
        for key in 0..200u64 {
            assert!(set.contains(key * 17));
            assert!(!set.insert(key * 17));
        }
    }

    #[test]
    fn cs_set_maybe_grow_keeps_narrow_sets_exact() {
        let mut set = CsSet::new(1, 4);
        for key in 0..500u64 {
            set.maybe_grow();
            assert!(set.insert(&[key]), "key {key} reported duplicate");
        }
        assert_eq!(set.len(), 500);
    }

    #[test]
    fn lock_free_set_overflow_is_reported_not_fatal() {
        let set = LockFreeU64Set::with_capacity(1);
        // Capacity 1 rounds up to 2 slots; the third distinct key overflows.
        assert!(set.insert(1));
        assert!(set.insert(2));
        assert!(set.insert(3));
        assert!(set.overflowed() >= 1);
    }

    #[test]
    fn sharded_set_exact_on_multiword_rows() {
        let set = ShardedSet::new(8);
        assert!(set.insert(&[1, 2, 3]));
        assert!(!set.insert(&[1, 2, 3]));
        assert!(set.insert(&[1, 2, 4]));
        assert!(set.contains(&[1, 2, 4]));
        assert!(!set.contains(&[9, 9, 9]));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn sharded_insert_hashed_agrees_with_insert() {
        let set = ShardedSet::new(4);
        set.reserve(100);
        for key in 0..100u64 {
            let row = [key, key.rotate_left(13), !key];
            assert!(set.insert_hashed(&row, hash_row(&row)), "{key}");
            assert!(!set.insert(&row), "{key} reinserted plainly");
            assert!(!set.insert_hashed(&row, hash_row(&row)), "{key} rehashed");
            assert!(set.contains(&row));
        }
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn cs_set_insert_hashed_and_reserve_on_both_widths() {
        let mut narrow = CsSet::new(1, 4);
        narrow.reserve(1000);
        for key in 0..1000u64 {
            let row = [key * 31];
            assert!(narrow.insert_hashed(&row, hash_row(&row)));
        }
        assert_eq!(narrow.len(), 1000);
        assert_eq!(narrow.overflowed(), 0);

        let mut wide = CsSet::new(3, 4);
        wide.reserve(500);
        for key in 0..500u64 {
            let row = [key, key ^ 7, key << 3];
            assert!(wide.insert_hashed(&row, hash_row(&row)));
            assert!(!wide.insert(&row));
        }
        assert_eq!(wide.len(), 500);
        assert_eq!(wide.overflowed(), 0);
    }

    #[test]
    fn cs_set_dispatches_on_width() {
        let device = Device::sequential();
        let narrow = CsSet::new(1, 10);
        assert!(matches!(narrow, CsSet::Narrow(_)));
        assert!(narrow.insert(&[5]));
        assert!(!narrow.insert(&[5]));
        assert!(narrow.contains(&[5]));

        let wide = CsSet::new(4, 10);
        assert!(matches!(wide, CsSet::Wide(_)));
        assert!(wide.insert(&[1, 2, 3, 4]));
        assert!(!wide.insert(&[1, 2, 3, 4]));
        device.record_hash_insertions(4);
        assert_eq!(device.stats().hash_insertions, 4);
    }

    #[test]
    fn hash_row_distinguishes_permutations() {
        assert_ne!(hash_row(&[1, 2]), hash_row(&[2, 1]));
        assert_ne!(hash_row(&[0]), hash_row(&[0, 0]));
        assert_eq!(hash_row(&[7, 7]), hash_row(&[7, 7]));
    }

    #[test]
    fn concurrent_sharded_inserts() {
        let set = ShardedSet::new(4);
        let unique = AtomicUsize::new(0);
        crossbeam::scope(|scope| {
            for _ in 0..4 {
                let set = &set;
                let unique = &unique;
                scope.spawn(move |_| {
                    for key in 0..512u64 {
                        if set.insert(&[key, key * 3]) {
                            unique.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(unique.load(Ordering::Relaxed), 512);
        assert_eq!(set.len(), 512);
    }
}
