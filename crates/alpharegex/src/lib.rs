//! A re-implementation of the AlphaRegex baseline (Lee, So & Oh,
//! *"Synthesizing Regular Expressions from Examples for Introductory
//! Automata Assignments"*, GPCE 2016), which the paper compares against in
//! Table 2.
//!
//! AlphaRegex performs **top-down enumerative search over regular
//! expressions with holes**: starting from a single hole `□`, states are
//! explored in order of increasing cost; the first *complete* expression
//! (no holes) that accepts every positive and rejects every negative
//! example is returned. Two pruning rules discard states whose completions
//! cannot possibly succeed:
//!
//! * **over-approximation** — replacing every hole with `Σ*` yields a
//!   superset of every completion's language; if it rejects a positive
//!   example the state is pruned;
//! * **under-approximation** — replacing every hole with `∅` yields a
//!   subset; if it accepts a negative example the state is pruned.
//!
//! The original tool additionally uses a *wild-card heuristic* (an atomic
//! leaf `X` standing for `0 + 1`) which speeds up its own benchmarks; it is
//! available here behind [`AlphaRegexConfig::use_wildcard`] so the harness
//! can reproduce both variants of Table 2.
//!
//! Unlike Paresy, AlphaRegex supports only specifications whose examples do
//! not contain the empty string, and its minimality claim does not always
//! hold (the paper found counterexamples in about a quarter of the original
//! benchmarks; see `EXPERIMENTS.md`).
//!
//! # Example
//!
//! ```
//! use alpharegex::AlphaRegex;
//! use rei_lang::Spec;
//!
//! let spec = Spec::from_strs(["0", "00", "000"], ["1", "01", "10"]).unwrap();
//! let result = AlphaRegex::new().run(&spec).unwrap();
//! assert!(spec.is_satisfied_by(&result.regex));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod search;
mod state;

pub use search::{AlphaRegex, AlphaRegexConfig, AlphaRegexError, AlphaRegexResult};
pub use state::Partial;
