//! The top-down, best-first search of AlphaRegex.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::error::Error;
use std::fmt;
use std::rc::Rc;
use std::time::{Duration, Instant};

use rei_lang::{Alphabet, Spec};
use rei_syntax::{CostFn, Regex};

use crate::Partial;

/// Configuration of the AlphaRegex baseline.
#[derive(Debug, Clone)]
pub struct AlphaRegexConfig {
    /// Cost homomorphism used to order the search. The original tool uses a
    /// fixed size measure that corresponds to [`CostFn::ALPHAREGEX`].
    pub costs: CostFn,
    /// Whether the wild-card heuristic (`X ≡ 0 + 1` as an atomic leaf) is
    /// enabled. It makes many benchmarks faster but sacrifices minimality.
    pub use_wildcard: bool,
    /// Whether the `?` constructor may be used in candidate expressions.
    pub use_question: bool,
    /// Maximum number of search states popped before giving up.
    pub max_states: u64,
    /// Optional bound on the cost of explored states.
    pub max_cost: Option<u64>,
    /// Optional wall-clock budget; the search gives up when it is exceeded.
    pub time_budget: Option<Duration>,
    /// Optional alphabet override; inferred from the specification by
    /// default.
    pub alphabet: Option<Alphabet>,
}

impl Default for AlphaRegexConfig {
    fn default() -> Self {
        AlphaRegexConfig {
            costs: CostFn::ALPHAREGEX,
            use_wildcard: false,
            use_question: true,
            max_states: 5_000_000,
            max_cost: None,
            time_budget: None,
            alphabet: None,
        }
    }
}

/// The result of a successful AlphaRegex run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlphaRegexResult {
    /// The synthesised expression (wild cards already expanded to the
    /// union of the alphabet).
    pub regex: Regex,
    /// Cost of `regex` under the configured cost homomorphism. Note that
    /// with the wild-card heuristic this can exceed the cost the search
    /// ordered by, which is how non-minimal answers arise.
    pub cost: u64,
    /// Number of complete regular expressions checked against the
    /// specification (the `# REs` column of Table 2).
    pub res_checked: u64,
    /// Number of search states (partial expressions) expanded.
    pub states_explored: u64,
    /// Wall-clock duration of the search.
    pub elapsed: Duration,
}

/// The ways an AlphaRegex run can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlphaRegexError {
    /// An example contains the empty string, which the original AlphaRegex
    /// does not support.
    EpsilonExample,
    /// The state or cost budget was exhausted before a solution was found.
    SearchExhausted {
        /// Number of complete expressions checked before giving up.
        res_checked: u64,
    },
}

impl fmt::Display for AlphaRegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlphaRegexError::EpsilonExample => {
                write!(
                    f,
                    "alpharegex does not support the empty string as an example"
                )
            }
            AlphaRegexError::SearchExhausted { res_checked } => {
                write!(
                    f,
                    "search budget exhausted after checking {res_checked} expressions"
                )
            }
        }
    }
}

impl Error for AlphaRegexError {}

/// The AlphaRegex synthesiser.
///
/// # Example
///
/// ```
/// use alpharegex::{AlphaRegex, AlphaRegexConfig};
/// use rei_lang::Spec;
///
/// let spec = Spec::from_strs(["01", "0011"], ["0", "1", "10"]).unwrap();
/// let result = AlphaRegex::with_config(AlphaRegexConfig::default()).run(&spec).unwrap();
/// assert!(spec.is_satisfied_by(&result.regex));
/// ```
#[derive(Debug, Clone, Default)]
pub struct AlphaRegex {
    config: AlphaRegexConfig,
}

impl AlphaRegex {
    /// Creates a baseline with the default configuration.
    pub fn new() -> Self {
        AlphaRegex::default()
    }

    /// Creates a baseline with an explicit configuration.
    pub fn with_config(config: AlphaRegexConfig) -> Self {
        AlphaRegex { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &AlphaRegexConfig {
        &self.config
    }

    /// Runs the top-down search on `spec`.
    ///
    /// # Errors
    ///
    /// * [`AlphaRegexError::EpsilonExample`] if any example is the empty
    ///   string.
    /// * [`AlphaRegexError::SearchExhausted`] if the state budget or the
    ///   cost bound is reached without finding a solution.
    pub fn run(&self, spec: &Spec) -> Result<AlphaRegexResult, AlphaRegexError> {
        if spec.iter().any(|w| w.is_empty()) {
            return Err(AlphaRegexError::EpsilonExample);
        }
        let started = Instant::now();
        let alphabet = self
            .config
            .alphabet
            .clone()
            .unwrap_or_else(|| Alphabet::of_spec(spec));
        let sigma: Vec<char> = alphabet.symbols().to_vec();
        let costs = self.config.costs;

        let fillers = self.fillers(&sigma);
        let mut heap: BinaryHeap<Reverse<(u64, u64, Partial)>> = BinaryHeap::new();
        let mut visited: HashSet<Partial> = HashSet::new();
        let mut sequence = 0u64;
        let mut res_checked = 0u64;
        let mut states_explored = 0u64;

        let start_state = Partial::hole();
        heap.push(Reverse((start_state.cost(&costs), sequence, start_state)));

        while let Some(Reverse((state_cost, _, state))) = heap.pop() {
            if let Some(max_cost) = self.config.max_cost {
                if state_cost > max_cost {
                    break;
                }
            }
            if states_explored >= self.config.max_states {
                break;
            }
            if let Some(budget) = self.config.time_budget {
                if states_explored.is_multiple_of(1024) && started.elapsed() > budget {
                    break;
                }
            }
            states_explored += 1;

            if state.is_complete() {
                res_checked += 1;
                let regex = state.to_regex(&sigma);
                if spec.is_satisfied_by(&regex) {
                    return Ok(AlphaRegexResult {
                        cost: regex.cost(&costs),
                        regex,
                        res_checked,
                        states_explored,
                        elapsed: started.elapsed(),
                    });
                }
                continue;
            }

            // Pruning (Section 3.3 of the AlphaRegex paper): a state is dead
            // if its over-approximation rejects a positive example or its
            // under-approximation accepts a negative example.
            let over = state.over_approximation(&sigma);
            if spec
                .positive()
                .iter()
                .any(|w| !over.accepts(w.chars().iter().copied()))
            {
                continue;
            }
            let under = state.under_approximation(&sigma);
            if spec
                .negative()
                .iter()
                .any(|w| under.accepts(w.chars().iter().copied()))
            {
                continue;
            }

            for filler in &fillers {
                if let Some(next) = state.fill_leftmost(filler) {
                    if visited.insert(next.clone()) {
                        sequence += 1;
                        heap.push(Reverse((next.cost(&costs), sequence, next)));
                    }
                }
            }
        }

        Err(AlphaRegexError::SearchExhausted { res_checked })
    }

    fn fillers(&self, sigma: &[char]) -> Vec<Partial> {
        let hole = Rc::new(Partial::Hole);
        let mut fillers: Vec<Partial> = sigma.iter().map(|&c| Partial::Literal(c)).collect();
        if self.config.use_wildcard {
            fillers.push(Partial::Wildcard);
        }
        fillers.push(Partial::Star(Rc::clone(&hole)));
        if self.config.use_question {
            fillers.push(Partial::Question(Rc::clone(&hole)));
        }
        fillers.push(Partial::Concat(Rc::clone(&hole), Rc::clone(&hole)));
        fillers.push(Partial::Union(Rc::clone(&hole), hole));
        fillers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_start_with_0() -> Spec {
        Spec::from_strs(["0", "00", "01", "010"], ["1", "10", "11"]).unwrap()
    }

    #[test]
    fn solves_simple_specs() {
        let spec = spec_start_with_0();
        let result = AlphaRegex::new().run(&spec).unwrap();
        assert!(spec.is_satisfied_by(&result.regex), "got {}", result.regex);
        assert!(result.res_checked >= 1);
        assert!(result.states_explored >= result.res_checked);
    }

    #[test]
    fn rejects_epsilon_examples() {
        let spec = Spec::from_strs(["", "0"], ["1"]).unwrap();
        assert_eq!(
            AlphaRegex::new().run(&spec).unwrap_err(),
            AlphaRegexError::EpsilonExample
        );
    }

    #[test]
    fn search_budget_is_respected() {
        let spec = Spec::from_strs(["0110", "1001"], ["0", "1", "00", "11"]).unwrap();
        let config = AlphaRegexConfig {
            max_states: 5,
            ..AlphaRegexConfig::default()
        };
        let err = AlphaRegex::with_config(config).run(&spec).unwrap_err();
        assert!(matches!(err, AlphaRegexError::SearchExhausted { .. }));
    }

    #[test]
    fn wildcard_heuristic_changes_the_search() {
        // "second symbol is 1": with the wild card the tool can answer
        // X1X*-style expressions quickly.
        let spec = Spec::from_strs(["01", "11", "010", "110"], ["0", "1", "00", "100"]).unwrap();
        let plain = AlphaRegex::new().run(&spec).unwrap();
        let config = AlphaRegexConfig {
            use_wildcard: true,
            ..AlphaRegexConfig::default()
        };
        let wild = AlphaRegex::with_config(config).run(&spec).unwrap();
        assert!(spec.is_satisfied_by(&plain.regex));
        assert!(spec.is_satisfied_by(&wild.regex));
        assert!(wild.res_checked <= plain.res_checked);
    }

    #[test]
    fn cost_ordering_without_heuristics_yields_minimal_results() {
        // Minimal answer for these examples is 0* (cost 10 under the
        // AlphaRegex cost function: one literal + star, 5 each); note that
        // ε cannot be a negative example for AlphaRegex, so 0* is precise.
        let spec = Spec::from_strs(["0", "00", "000"], ["1", "01", "10", "11"]).unwrap();
        let result = AlphaRegex::new().run(&spec).unwrap();
        assert_eq!(
            result.cost, 10,
            "got {} with cost {}",
            result.regex, result.cost
        );
        assert_eq!(result.regex.to_string(), "0*");
    }

    #[test]
    fn custom_alphabet_is_honoured() {
        let spec = Spec::from_strs(["ab", "abab"], ["a", "b", "ba"]).unwrap();
        let config = AlphaRegexConfig {
            alphabet: Some(Alphabet::new(['a', 'b'])),
            ..AlphaRegexConfig::default()
        };
        let result = AlphaRegex::with_config(config).run(&spec).unwrap();
        assert!(spec.is_satisfied_by(&result.regex));
    }
}
