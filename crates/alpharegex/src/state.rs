//! Partial regular expressions: expressions with holes.

use std::fmt;
use std::rc::Rc;

use rei_syntax::{CostFn, Regex};

/// A regular expression that may contain holes (`□`), the search states of
/// AlphaRegex's top-down enumeration.
///
/// # Example
///
/// ```
/// use alpharegex::Partial;
/// use rei_syntax::CostFn;
///
/// let state = Partial::hole();
/// assert_eq!(state.hole_count(), 1);
/// assert_eq!(state.cost(&CostFn::UNIFORM), 1);
/// assert_eq!(state.to_string(), "□");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Partial {
    /// A hole, to be filled by the search.
    Hole,
    /// A single character literal.
    Literal(char),
    /// The wild card `X`, shorthand for the union of all alphabet
    /// characters (the AlphaRegex heuristic).
    Wildcard,
    /// Concatenation of two partial expressions.
    Concat(Rc<Partial>, Rc<Partial>),
    /// Union of two partial expressions.
    Union(Rc<Partial>, Rc<Partial>),
    /// Kleene star of a partial expression.
    Star(Rc<Partial>),
    /// Optional (`?`) of a partial expression.
    Question(Rc<Partial>),
}

impl Partial {
    /// The initial search state: a single hole.
    pub fn hole() -> Self {
        Partial::Hole
    }

    /// Number of holes in the state. A state with no holes is *complete*.
    pub fn hole_count(&self) -> usize {
        match self {
            Partial::Hole => 1,
            Partial::Literal(_) | Partial::Wildcard => 0,
            Partial::Star(p) | Partial::Question(p) => p.hole_count(),
            Partial::Concat(l, r) | Partial::Union(l, r) => l.hole_count() + r.hole_count(),
        }
    }

    /// Returns `true` if the state contains no holes.
    pub fn is_complete(&self) -> bool {
        self.hole_count() == 0
    }

    /// Cost of the state, counting each hole like a literal. Because every
    /// refinement replaces a hole by something of at least literal cost,
    /// this is a lower bound on the cost of every completion, which makes
    /// the best-first search return cost-minimal complete expressions
    /// first (up to the pruning heuristics).
    pub fn cost(&self, costs: &CostFn) -> u64 {
        match self {
            Partial::Hole | Partial::Literal(_) | Partial::Wildcard => costs.literal,
            Partial::Star(p) => costs.star + p.cost(costs),
            Partial::Question(p) => costs.question + p.cost(costs),
            Partial::Concat(l, r) => costs.concat + l.cost(costs) + r.cost(costs),
            Partial::Union(l, r) => costs.union + l.cost(costs) + r.cost(costs),
        }
    }

    /// Replaces the leftmost hole with `filler`, returning `None` when the
    /// state is already complete.
    pub fn fill_leftmost(&self, filler: &Partial) -> Option<Partial> {
        match self {
            Partial::Hole => Some(filler.clone()),
            Partial::Literal(_) | Partial::Wildcard => None,
            Partial::Star(p) => p.fill_leftmost(filler).map(|q| Partial::Star(Rc::new(q))),
            Partial::Question(p) => p
                .fill_leftmost(filler)
                .map(|q| Partial::Question(Rc::new(q))),
            Partial::Concat(l, r) => match l.fill_leftmost(filler) {
                Some(new_l) => Some(Partial::Concat(Rc::new(new_l), Rc::clone(r))),
                None => r
                    .fill_leftmost(filler)
                    .map(|new_r| Partial::Concat(Rc::clone(l), Rc::new(new_r))),
            },
            Partial::Union(l, r) => match l.fill_leftmost(filler) {
                Some(new_l) => Some(Partial::Union(Rc::new(new_l), Rc::clone(r))),
                None => r
                    .fill_leftmost(filler)
                    .map(|new_r| Partial::Union(Rc::clone(l), Rc::new(new_r))),
            },
        }
    }

    /// Converts the state to a concrete regular expression, substituting
    /// `hole_as` for every hole and expanding the wild card to the union of
    /// `alphabet`.
    pub fn to_regex_with(&self, hole_as: &Regex, alphabet: &[char]) -> Regex {
        match self {
            Partial::Hole => hole_as.clone(),
            Partial::Literal(a) => Regex::literal(*a),
            Partial::Wildcard => Regex::any_of(alphabet.iter().copied()),
            Partial::Star(p) => p.to_regex_with(hole_as, alphabet).star(),
            Partial::Question(p) => p.to_regex_with(hole_as, alphabet).question(),
            Partial::Concat(l, r) => Regex::concat(
                l.to_regex_with(hole_as, alphabet),
                r.to_regex_with(hole_as, alphabet),
            ),
            Partial::Union(l, r) => Regex::union(
                l.to_regex_with(hole_as, alphabet),
                r.to_regex_with(hole_as, alphabet),
            ),
        }
    }

    /// Converts a complete state to a regular expression.
    ///
    /// # Panics
    ///
    /// Panics if the state still contains holes.
    pub fn to_regex(&self, alphabet: &[char]) -> Regex {
        assert!(
            self.is_complete(),
            "cannot convert a state with holes to a regex"
        );
        self.to_regex_with(&Regex::Empty, alphabet)
    }

    /// The over-approximation used for pruning: every hole replaced by
    /// `Σ*`.
    pub fn over_approximation(&self, alphabet: &[char]) -> Regex {
        self.to_regex_with(&Regex::any_of(alphabet.iter().copied()).star(), alphabet)
    }

    /// The under-approximation used for pruning: every hole replaced by
    /// `∅`.
    pub fn under_approximation(&self, alphabet: &[char]) -> Regex {
        self.to_regex_with(&Regex::Empty, alphabet)
    }
}

impl fmt::Display for Partial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Partial::Hole => f.write_str("□"),
            Partial::Literal(a) => write!(f, "{a}"),
            Partial::Wildcard => f.write_str("X"),
            Partial::Star(p) => write!(f, "({p})*"),
            Partial::Question(p) => write!(f, "({p})?"),
            Partial::Concat(l, r) => write!(f, "({l})({r})"),
            Partial::Union(l, r) => write!(f, "({l}+{r})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binary() -> Vec<char> {
        vec!['0', '1']
    }

    #[test]
    fn hole_counting() {
        let s = Partial::Concat(
            Rc::new(Partial::Hole),
            Rc::new(Partial::Star(Rc::new(Partial::Hole))),
        );
        assert_eq!(s.hole_count(), 2);
        assert!(!s.is_complete());
        assert!(Partial::Literal('0').is_complete());
    }

    #[test]
    fn fill_leftmost_replaces_one_hole_at_a_time() {
        let s = Partial::Concat(Rc::new(Partial::Hole), Rc::new(Partial::Hole));
        let s1 = s.fill_leftmost(&Partial::Literal('0')).unwrap();
        assert_eq!(s1.hole_count(), 1);
        let s2 = s1.fill_leftmost(&Partial::Literal('1')).unwrap();
        assert!(s2.is_complete());
        assert_eq!(s2.to_regex(&binary()).to_string(), "01");
        assert!(s2.fill_leftmost(&Partial::Hole).is_none());
    }

    #[test]
    fn approximations() {
        // □ 1 : over-approximation (0+1)*1 accepts "01"; under-approximation ∅·1 = ∅.
        let s = Partial::Concat(Rc::new(Partial::Hole), Rc::new(Partial::Literal('1')));
        let over = s.over_approximation(&binary());
        let under = s.under_approximation(&binary());
        assert!(over.accepts("01".chars()));
        assert!(!under.accepts("01".chars()));
        assert!(under.is_empty_language());
    }

    #[test]
    fn wildcard_expands_to_alphabet_union() {
        let s = Partial::Star(Rc::new(Partial::Wildcard));
        let r = s.to_regex(&binary());
        assert_eq!(r.to_string(), "(0+1)*");
        assert!(r.accepts("0110".chars()));
    }

    #[test]
    fn cost_counts_holes_as_literals() {
        let costs = CostFn::UNIFORM;
        let s = Partial::Union(Rc::new(Partial::Hole), Rc::new(Partial::Literal('1')));
        assert_eq!(s.cost(&costs), 3);
        assert_eq!(Partial::hole().cost(&costs), 1);
    }

    #[test]
    fn display_marks_holes() {
        let s = Partial::Star(Rc::new(Partial::Hole));
        assert_eq!(s.to_string(), "(□)*");
    }
}
