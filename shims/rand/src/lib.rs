//! A dependency-free stand-in for the subset of `rand` 0.8 this workspace
//! uses: [`rngs::StdRng`] seeded with [`SeedableRng::seed_from_u64`] and the
//! [`Rng`] extension methods `gen` and `gen_range`.
//!
//! The generator is SplitMix64 — statistically fine for benchmark-instance
//! sampling, deterministic for a given seed, and NOT cryptographically
//! secure (neither is the real `StdRng` contractually stable across
//! versions, so seeds only promise reproducibility within this workspace).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from `range`. Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Samples a value of a type with a standard uniform distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::generate(self)
    }
}

/// Ranges that can be sampled from, mirroring `rand::distributions::uniform`.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

/// Types with a canonical uniform distribution over all values.
pub trait Standard: Sized {
    /// Draws one value.
    fn generate<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                self.start + draw as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                start + draw as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

impl SampleRange<u128> for Range<u128> {
    fn sample<R: Rng>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let span = self.end - self.start;
        let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
        self.start + draw
    }
}

impl Standard for u64 {
    fn generate<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn generate<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn generate<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub mod rngs {
    //! The standard generator.

    use super::{Rng, SeedableRng};

    /// A deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(5..=5);
            assert_eq!(y, 5);
            let z: u128 = rng.gen_range(0..1_000_000u128);
            assert!(z < 1_000_000);
        }
    }

    #[test]
    fn gen_produces_varied_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let a: u64 = rng.gen();
        let b: u64 = rng.gen();
        assert_ne!(a, b);
    }
}
