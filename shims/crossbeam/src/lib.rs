//! A dependency-free stand-in for the parts of the `crossbeam` facade this
//! workspace uses: [`scope`] (scoped threads, built on [`std::thread::scope`])
//! and [`channel::unbounded`] (an MPMC queue over a mutex + condvar).
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! this minimal API-compatible subset instead. Only the call shapes exercised
//! by `gpu-sim` are provided.

#![forbid(unsafe_code)]

use std::any::Any;

/// The error half of [`scope`]'s result. With the std-backed implementation a
/// worker panic propagates out of [`std::thread::scope`] directly, so this is
/// never actually constructed; it exists for API compatibility.
pub type ScopeError = Box<dyn Any + Send + 'static>;

/// A handle for spawning threads scoped to the enclosing [`scope`] call.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. As in crossbeam, the closure receives the
    /// scope itself so it can spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Creates a scope in which spawned threads may borrow from the enclosing
/// stack frame; all threads are joined before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

pub mod channel {
    //! An unbounded multi-producer multi-consumer channel.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// The sending half; cloning adds a sender.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half; cloning adds a consumer of the same queue.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Returned by [`Sender::send`] when every receiver is gone.
    pub struct SendError<T>(pub T);

    /// Returned by [`Receiver::recv`] when the queue is empty and every
    /// sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Enqueues a value, waking one blocked receiver.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            state.items.push_back(value);
            drop(state);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut state = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            state.senders += 1;
            drop(state);
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value is available or every sender has been
        /// dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = state.items.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.0.ready.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_join_and_return() {
        let mut data = [0u64; 8];
        let chunks: Vec<&mut u64> = data.iter_mut().collect();
        scope(|s| {
            for (i, slot) in chunks.into_iter().enumerate() {
                s.spawn(move |_| *slot = i as u64);
            }
        })
        .unwrap();
        assert_eq!(data, [0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn channel_drains_after_senders_drop() {
        let (tx, rx) = channel::unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut sum = 0;
        let rx2 = rx.clone();
        while let Ok(v) = rx2.recv() {
            sum += v;
        }
        assert_eq!(sum, (0..100).sum::<i32>());
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }
}
