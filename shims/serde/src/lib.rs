//! A dependency-free stand-in for `serde`: the [`Serialize`] and
//! [`Deserialize`] traits are inert markers and the derives expand to empty
//! impls, so `#[derive(Serialize, Deserialize)]` annotations compile without
//! pulling in the real serde stack. No serialization format ships with this
//! shim; in-workspace serialization uses explicit `Display`/`FromStr`
//! implementations instead (see `rei_core::SynthConfig`).

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types annotated `#[derive(Serialize)]`.
pub trait Serialize {}

/// Marker for types annotated `#[derive(Deserialize)]`.
pub trait Deserialize<'de>: Sized {}
