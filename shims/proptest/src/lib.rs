//! A dependency-free stand-in for the subset of `proptest` this workspace
//! uses. The build environment has no crates.io access, so this shim
//! re-implements the *API surface* — `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_oneof!`, `Strategy` with `prop_map` /
//! `prop_recursive`, `Just`, integer-range and character-class string
//! strategies, and `collection::{vec, btree_set}` — over a deterministic
//! SplitMix64 generator.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its inputs (via the
//!   `prop_assert*` message) but is not minimised.
//! * **Deterministic seeds.** Cases are derived from a hash of the test
//!   name, so a failure reproduces on every run.
//! * **String strategies** support exactly the character-class pattern
//!   `"[chars]{lo,hi}"` used in this workspace, not full regex syntax.

#![forbid(unsafe_code)]

/// The deterministic generator threaded through all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5851_F42D_4C95_7F2D,
        }
    }

    /// The next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform index in `0..n`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample an index from an empty domain");
        (self.next_u64() % n as u64) as usize
    }
}

/// Hashes a test name into a stable per-test seed (FNV-1a).
#[doc(hidden)]
pub fn seed_of_name(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in name.bytes() {
        h = (h ^ byte as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

pub mod test_runner {
    //! Configuration and failure reporting.

    /// Run configuration; only `cases` is honoured by the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to execute per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; the shim trades a little
            // coverage for suite latency.
            ProptestConfig { cases: 64 }
        }
    }

    /// A property failure, produced by the `prop_assert*` macros or
    /// [`TestCaseError::fail`].
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(message: impl std::fmt::Display) -> Self {
            TestCaseError(message.to_string())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// The result type of one property case.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

pub mod strategy {
    //! Value-generation strategies.

    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    use crate::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy: Clone {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `map`.
        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            F: Fn(Self::Value) -> O + Clone,
            Self: Sized,
        {
            Map { inner: self, map }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Builds a recursive strategy: `self` is the leaf case and
        /// `recurse` wraps an inner strategy into the branch cases. The
        /// shim unrolls `depth` levels, choosing leaf or branch with equal
        /// probability at each level; `_desired_size` and
        /// `_expected_branch_size` are accepted for API compatibility.
        fn prop_recursive<F, S2>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let branch = recurse(current).boxed();
                current = one_of(vec![leaf.clone(), branch]).boxed();
            }
            current
        }
    }

    trait ErasedStrategy<T> {
        fn erased_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> ErasedStrategy<S::Value> for S {
        fn erased_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy (cheaply clonable).
    pub struct BoxedStrategy<T>(Rc<dyn ErasedStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.erased_generate(rng)
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        map: F,
    }

    impl<S: Clone, F: Clone> Clone for Map<S, F> {
        fn clone(&self) -> Self {
            Map {
                inner: self.inner.clone(),
                map: self.map.clone(),
            }
        }
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O + Clone,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of its value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Clone for OneOf<T> {
        fn clone(&self) -> Self {
            OneOf {
                options: self.options.clone(),
            }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let k = rng.index(self.options.len());
            self.options[k].generate(rng)
        }
    }

    /// Builds a [`OneOf`] from boxed alternatives.
    pub fn one_of<T>(options: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        OneOf { options }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    /// Character-class string patterns: exactly `"[chars]{lo,hi}"`.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let (class, lo, hi) = parse_class_pattern(self);
            let len = lo + rng.index(hi - lo + 1);
            (0..len).map(|_| class[rng.index(class.len())]).collect()
        }
    }

    fn unsupported_pattern(pattern: &str) -> ! {
        panic!(
            "proptest shim: unsupported string pattern {pattern:?} \
             (only \"[chars]{{lo,hi}}\" is implemented)"
        )
    }

    fn parse_class_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
        let rest = pattern
            .strip_prefix('[')
            .unwrap_or_else(|| unsupported_pattern(pattern));
        let (class, rest) = rest
            .split_once(']')
            .unwrap_or_else(|| unsupported_pattern(pattern));
        let counts = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| unsupported_pattern(pattern));
        let (lo, hi) = counts
            .split_once(',')
            .unwrap_or_else(|| unsupported_pattern(pattern));
        let class: Vec<char> = class.chars().collect();
        let lo: usize = lo.parse().unwrap_or_else(|_| unsupported_pattern(pattern));
        let hi: usize = hi.parse().unwrap_or_else(|_| unsupported_pattern(pattern));
        if class.is_empty() || lo > hi {
            unsupported_pattern(pattern);
        }
        (class, lo, hi)
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use std::collections::BTreeSet;
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::TestRng;

    /// A strategy for `Vec`s whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            VecStrategy {
                element: self.element.clone(),
                size: self.size.clone(),
            }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.index(span.max(1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with element strategy `element` and length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    /// A strategy for `BTreeSet`s with size drawn from `size` (best effort:
    /// if the element domain is too small, the set may come out smaller).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Clone> Clone for BTreeSetStrategy<S> {
        fn clone(&self) -> Self {
            BTreeSetStrategy {
                element: self.element.clone(),
                size: self.size.clone(),
            }
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.end - self.size.start;
            let target = self.size.start + rng.index(span.max(1));
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 20 + 20 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }

    /// `BTreeSet` strategy with element strategy `element` and target size
    /// in `size`.
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        assert!(size.start < size.end, "empty size range");
        BTreeSetStrategy { element, size }
    }
}

pub mod prelude {
    //! Everything a property-test module usually imports.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. Matches the real macro's surface for the forms
/// used in this workspace: an optional `#![proptest_config(..)]` header
/// followed by `#[test] fn name(arg in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (cfg = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        #[allow(unreachable_code)]
        fn $name() {
            let config = $config;
            let base = $crate::seed_of_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng =
                    $crate::TestRng::new(base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        err
                    );
                }
            }
        }
    )*};
}

/// Fails the current case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case when the two values are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, "assertion failed: {:?} != {:?}", left, right);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} vs {:?})", format!($($fmt)+), left, right),
            ));
        }
    }};
}

/// Fails the current case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, "assertion failed: {:?} == {:?}", left, right);
    }};
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn string_patterns_respect_class_and_length() {
        let mut rng = crate::TestRng::new(3);
        for _ in 0..200 {
            let s = Strategy::generate(&"[01ab]{2,5}", &mut rng);
            assert!((2..=5).contains(&s.len()));
            assert!(s.chars().all(|c| "01ab".contains(c)));
        }
    }

    #[test]
    fn recursion_bottoms_out() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf,
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let strat = Just(Tree::Leaf).prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
        });
        let mut rng = crate::TestRng::new(11);
        for _ in 0..100 {
            assert!(depth(&Strategy::generate(&strat, &mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_runs_and_ranges_hold(x in 1usize..10, v in crate::collection::vec(0u64..5, 0..4)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(v.len() < 4);
            for item in v {
                prop_assert!(item < 5, "item {} out of range", item);
            }
        }
    }
}
