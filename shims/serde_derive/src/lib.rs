//! No-op `Serialize`/`Deserialize` derives for the offline serde shim.
//!
//! Each derive emits an empty marker-trait impl for the annotated type.
//! Written against `proc_macro` alone (no `syn`/`quote`, which are
//! unavailable offline), so only non-generic `struct`/`enum` items are
//! supported — which covers every annotated type in this workspace.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name of the derive input, rejecting generic items.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(token) = tokens.next() {
        if let TokenTree::Ident(ident) = &token {
            let keyword = ident.to_string();
            if keyword == "struct" || keyword == "enum" {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => panic!("serde shim derive: expected a type name, found {other:?}"),
                };
                if let Some(TokenTree::Punct(p)) = tokens.next() {
                    if p.as_char() == '<' {
                        panic!(
                            "serde shim derive: generic type `{name}` is not supported; \
                             write the marker impl by hand"
                        );
                    }
                }
                return name;
            }
        }
    }
    panic!("serde shim derive: input is not a struct or enum")
}

/// Emits `impl ::serde::Serialize for T {}`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Emits `impl<'de> ::serde::Deserialize<'de> for T {}`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
