//! A dependency-free stand-in for the subset of `parking_lot` this workspace
//! uses: a [`Mutex`] whose `lock()` returns the guard directly (no poison
//! `Result`), implemented over [`std::sync::Mutex`] by discarding poison.

#![forbid(unsafe_code)]

use std::fmt;

/// A mutual exclusion primitive with `parking_lot`'s panic-transparent
/// locking API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// The guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a panic in another holder does not poison the
    /// lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (the borrow checker guarantees
    /// exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
