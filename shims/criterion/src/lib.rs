//! A dependency-free stand-in for the subset of `criterion` this workspace
//! uses: `criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_batched`, `BenchmarkId` and `BatchSize`.
//!
//! No statistics, plots or baselines — each benchmark is warmed once and
//! then timed over a small fixed window, and the mean per-iteration time is
//! printed. The point is that `cargo bench` compiles and produces an
//! order-of-magnitude signal offline; real measurement runs should use the
//! actual criterion crate when a registry is available.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// How long each benchmark is measured for (after one warm-up call).
const MEASURE_WINDOW: Duration = Duration::from_millis(200);

/// Hint for how setup results are batched in [`Bencher::iter_batched`].
/// The shim runs one setup per iteration regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id consisting only of a parameter rendering.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    iterations: u64,
    total: Duration,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            iterations: 0,
            total: Duration::ZERO,
        }
    }

    /// Times `routine` repeatedly within the measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine()); // warm-up, excluded from timing
        let started = Instant::now();
        while started.elapsed() < MEASURE_WINDOW {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.total += t0.elapsed();
            self.iterations += 1;
        }
    }

    /// Times `routine` on fresh inputs produced by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup())); // warm-up
        let started = Instant::now();
        while started.elapsed() < MEASURE_WINDOW {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.total += t0.elapsed();
            self.iterations += 1;
        }
    }

    fn report(&self, label: &str) {
        if self.iterations == 0 {
            println!("{label:<50} (no iterations completed)");
        } else {
            let mean = self.total / self.iterations as u32;
            println!(
                "{label:<50} {mean:>12.2?}/iter  ({} iters)",
                self.iterations
            );
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim ignores sample counts.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the shim uses a fixed window.
    pub fn measurement_time(&mut self, _window: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, mut body: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        let mut bencher = Bencher::new();
        body(&mut bencher);
        bencher.report(&label);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, D, F>(&mut self, id: I, input: &D, mut body: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &D),
    {
        let label = format!("{}/{}", self.name, id.into());
        let mut bencher = Bencher::new();
        body(&mut bencher, input);
        bencher.report(&label);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name}");
        BenchmarkGroup {
            name,
            _criterion: self,
        }
    }

    /// Runs a top-level benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new();
        body(&mut bencher);
        bencher.report(id);
        self
    }
}

/// Re-export for code that uses `criterion::black_box`.
pub use std::hint::black_box;

/// Bundles benchmark functions into a group runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_their_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        let mut runs = 0u64;
        group.sample_size(10).bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &x| {
            b.iter_batched(|| x, |v| v * 2, BatchSize::SmallInput)
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
