//! Paresy-rs: a Rust reproduction of *"Search-Based Regular Expression
//! Inference on a GPU"* (Valizadeh & Berger, PLDI 2023).
//!
//! This facade crate re-exports the public API of the workspace crates so
//! that downstream users can depend on a single crate:
//!
//! * [`syntax`] — regular-expression ASTs, cost homomorphisms, parsing and
//!   matching ([`rei_syntax`]).
//! * [`lang`] — the formal-language substrate: specifications, infix
//!   closures, characteristic sequences and guide tables ([`rei_lang`]).
//! * [`core`] — the Paresy synthesiser itself: sessions, backends,
//!   observers and the language cache ([`rei_core`]).
//! * [`gpu`] — the software SIMT device model used as the GPU substrate
//!   ([`gpu_sim`]).
//! * [`baseline`] — the AlphaRegex baseline ([`alpharegex`]).
//! * [`mod@bench`] — benchmark generators and the paper-reproduction
//!   harness ([`rei_bench`]).
//! * [`service`] — the multi-tenant synthesis service: worker pool, job
//!   scheduling, result caching and request coalescing ([`rei_service`]).
//! * [`net`] — the TCP JSONL serving front-end: bounded handler pool,
//!   per-tenant fair-share admission, graceful drain ([`rei_net`]).
//!
//! # Quickstart
//!
//! Synthesis runs inside a [`SynthSession`](crate::core::SynthSession):
//! create it once from a serializable
//! [`SynthConfig`](crate::core::SynthConfig), then reuse it across
//! specifications — the session owns the execution backend (and the warm
//! simulated-GPU device of the parallel backend), so batches of requests
//! pay device setup once.
//!
//! ```
//! use paresy::prelude::*;
//!
//! // The introductory example of the paper: learn 10(0+1)*.
//! let spec = Spec::from_strs(
//!     ["10", "101", "100", "1010", "1011", "1000", "1001"],
//!     ["", "0", "1", "00", "11", "010"],
//! )
//! .unwrap();
//! let config = SynthConfig::new(CostFn::UNIFORM).with_backend(BackendChoice::parallel());
//! let mut session = SynthSession::new(config).unwrap();
//! let result = session.run(&spec).unwrap();
//! // Minimal cost is guaranteed on every backend; the expression may be
//! // any equally-minimal candidate, e.g. `10(0+1)*`.
//! assert_eq!(result.cost, 8);
//! assert!(spec.is_satisfied_by(&result.regex));
//!
//! // The same session keeps serving further specs on the warm device.
//! let more = Spec::from_strs(["0", "00", "000"], ["", "01", "1"]).unwrap();
//! let outcomes = session.run_batch(&[more]);
//! assert!(outcomes[0].is_ok());
//! assert_eq!(session.stats().runs, 2);
//! ```
//!
//! Long runs can be observed per cost level and cancelled cooperatively:
//!
//! ```
//! use paresy::prelude::*;
//!
//! let spec = Spec::from_strs(["0", "00"], ["1", "10"]).unwrap();
//! let mut session = SynthSession::new(SynthConfig::new(CostFn::UNIFORM)).unwrap();
//! let token: CancelToken = session.cancel_token(); // trip from any thread
//! let mut log = LevelLog::default();               // an Observer
//! session.run_with(&spec, &mut log).unwrap();
//! assert!(log.levels.windows(2).all(|w| w[0].cost < w[1].cost));
//! # let _ = token;
//! ```
//!
//! Many tenants share one warm pool through the service layer: requests
//! queue with priorities and deadlines, identical requests are answered
//! from a result cache or coalesced onto one in-flight synthesis.
//! Several pools shard behind a [`ShardRouter`](crate::service::ShardRouter)
//! (routing by tenant key or spec fingerprint), and a pool given a cache
//! directory persists its results across restarts:
//!
//! ```
//! use paresy::prelude::*;
//!
//! let service = SynthService::start(ServiceConfig::new(2)).unwrap();
//! let spec = Spec::from_strs(["0", "00"], ["1", "10"]).unwrap();
//! let handle = service.submit(SynthRequest::new(spec)).unwrap();
//! assert!(handle.wait().outcome.is_ok());
//! let metrics = service.shutdown();
//! assert_eq!(metrics.solved, 1);
//! ```
//!
//! Interactive clients *refine* a session instead of re-running it:
//! [`SynthSession::refine`](crate::core::SynthSession::refine) reuses the
//! previous run's retained level caches when the new spec strengthens the
//! old one, and the service layer keeps per-tenant warm sessions behind
//! `session.open` / `refine` / `session.close` requests. The one-shot
//! [`Synthesizer`](crate::core::Synthesizer) builder remains for quick
//! experiments.

#![forbid(unsafe_code)]

pub use alpharegex as baseline;
pub use gpu_sim as gpu;
pub use rei_bench as bench;
pub use rei_core as core;
pub use rei_lang as lang;
pub use rei_net as net;
pub use rei_service as service;
pub use rei_syntax as syntax;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use alpharegex::AlphaRegex;
    pub use rei_core::{
        Backend, BackendChoice, CancelToken, ColdReason, DeviceParallel, LevelLog, LevelStats,
        Observer, RefineState, ReuseDecision, RunOutcome, Sequential, SessionStats, SynthConfig,
        SynthSession, SynthesisError, SynthesisResult, Synthesizer, ThreadParallel,
    };
    pub use rei_lang::{Alphabet, InfixClosure, Spec, Word};
    pub use rei_net::{install_shutdown_signals, NetConfig, NetServer};
    pub use rei_service::{
        AdmissionConfig, AdmissionCounters, AdmissionError, FairShare, HashRing, JobHandle,
        MetricsSnapshot, PoolConfig, RecoveryReport, ResponseSource, RouterConfig, RouterSnapshot,
        ServiceConfig, ServiceError, ShardRouter, SynthRequest, SynthResponse, SynthService,
        TenantPolicy, WalOptions,
    };
    pub use rei_syntax::{parse, CostFn, Regex};
}
