//! Paresy-rs: a Rust reproduction of *"Search-Based Regular Expression
//! Inference on a GPU"* (Valizadeh & Berger, PLDI 2023).
//!
//! This facade crate re-exports the public API of the workspace crates so
//! that downstream users can depend on a single crate:
//!
//! * [`syntax`] — regular-expression ASTs, cost homomorphisms, parsing and
//!   matching ([`rei_syntax`]).
//! * [`lang`] — the formal-language substrate: specifications, infix
//!   closures, characteristic sequences and guide tables ([`rei_lang`]).
//! * [`core`] — the Paresy synthesiser itself ([`rei_core`]).
//! * [`gpu`] — the software SIMT device model used as the GPU substrate
//!   ([`gpu_sim`]).
//! * [`baseline`] — the AlphaRegex baseline ([`alpharegex`]).
//! * [`bench`] — benchmark generators and the paper-reproduction harness
//!   ([`rei_bench`]).
//!
//! # Quickstart
//!
//! ```
//! use paresy::prelude::*;
//!
//! // The introductory example of the paper: learn 10(0+1)*.
//! let spec = Spec::from_strs(
//!     ["10", "101", "100", "1010", "1011", "1000", "1001"],
//!     ["", "0", "1", "00", "11", "010"],
//! )
//! .unwrap();
//! let result = Synthesizer::new(CostFn::UNIFORM).run(&spec).unwrap();
//! assert_eq!(result.regex.to_string(), "10(0+1)*");
//! ```

#![forbid(unsafe_code)]

pub use alpharegex as baseline;
pub use gpu_sim as gpu;
pub use rei_bench as bench;
pub use rei_core as core;
pub use rei_lang as lang;
pub use rei_syntax as syntax;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use alpharegex::AlphaRegex;
    pub use rei_core::{Engine, SynthesisResult, Synthesizer};
    pub use rei_lang::{Alphabet, InfixClosure, Spec, Word};
    pub use rei_syntax::{parse, CostFn, Regex};
}
