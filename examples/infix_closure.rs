//! A guided tour of Paresy's data structures on Example 3.6 of the paper:
//! the infix closure, characteristic sequences, the guide table and the
//! satisfaction masks.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example infix_closure
//! ```

use paresy::lang::{GuideTable, InfixClosure, SatisfyMasks, Spec};
use paresy::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Example 3.6: P = {1, 011, 1011, 11011}, N = {ε, 10, 101, 0011}.
    let spec = Spec::from_strs(["1", "011", "1011", "11011"], ["", "10", "101", "0011"])?;
    let ic = InfixClosure::of_spec(&spec);

    println!("specification  : {spec}");
    println!("#ic(P ∪ N)     : {}", ic.len());
    println!("closure (shortlex):");
    for (i, word) in ic.iter() {
        let class = if spec.positive().contains(word) {
            "positive"
        } else if spec.negative().contains(word) {
            "negative"
        } else {
            "infix"
        };
        println!("  [{i:>2}] {word:<6} ({class})");
    }

    // The characteristic sequence of (0?1)*1 relative to the closure — the
    // row picture of Example 3.6.
    let regex = parse("(0?1)*1")?;
    let cs = ic.cs_of_regex(&regex);
    println!("\nCS of {regex} : {cs}");

    // The guide table row for "110": every way of splitting it into two
    // members of the closure.
    let guide = GuideTable::build(&ic);
    let w = ic.index_of(&"110".into()).expect("110 is an infix");
    println!("guide table row for \"110\":");
    for &(l, r) in guide.splits(w) {
        println!("  {} · {}", ic.word(l as usize), ic.word(r as usize));
    }

    // Satisfaction is two bitwise comparisons against these masks.
    let masks = SatisfyMasks::new(&spec, &ic);
    println!("\npositive mask : {}", masks.positive());
    println!("negative mask : {}", masks.negative());
    println!(
        "(0?1)*1 satisfies the spec: {}",
        masks.is_satisfied(cs.blocks())
    );

    // And the synthesiser indeed recovers a minimal expression.
    let result = Synthesizer::new(CostFn::UNIFORM).run(&spec)?;
    println!("\nsynthesised   : {} (cost {})", result.regex, result.cost);
    Ok(())
}
