//! Table 2 in miniature: run Paresy and the AlphaRegex baseline on a few
//! classic introductory-automata tasks and compare times, search effort and
//! result costs.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example alpharegex_baseline
//! ```

use std::time::Instant;

use paresy::baseline::{AlphaRegex, AlphaRegexConfig};
use paresy::bench::suite::easy_tasks;
use paresy::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<6} {:<40} {:>10} {:>10} {:>8} {:>8}",
        "task", "description", "αR (s)", "paresy (s)", "αR cost", "P cost"
    );
    for task in easy_tasks(8) {
        let spec = task.spec();

        let alpha_config = AlphaRegexConfig {
            use_wildcard: task.wildcard,
            ..Default::default()
        };
        let started = Instant::now();
        let alpha = AlphaRegex::with_config(alpha_config).run(&spec)?;
        let alpha_secs = started.elapsed().as_secs_f64();

        let started = Instant::now();
        let paresy = Synthesizer::new(CostFn::ALPHAREGEX).run(&spec)?;
        let paresy_secs = started.elapsed().as_secs_f64();

        // Paresy is cost-minimal, so it can never be beaten on cost.
        assert!(paresy.cost <= alpha.cost);
        println!(
            "{:<6} {:<40} {:>10.4} {:>10.4} {:>8} {:>8}{}",
            task.name(),
            task.description,
            alpha_secs,
            paresy_secs,
            alpha.cost,
            paresy.cost,
            if alpha.cost > paresy.cost {
                "  (AlphaRegex not minimal)"
            } else {
                ""
            }
        );
    }
    Ok(())
}
