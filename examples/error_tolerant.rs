//! REI with allowed error (Section 5.2 of the paper): trade precision for
//! drastically smaller search effort on the paper's own specification.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example error_tolerant
//! ```

use paresy::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The specification of Section 5.2 (the top row of Table 1).
    let spec = Spec::from_strs(
        [
            "00", "1101", "0001", "0111", "001", "1", "10", "1100", "111", "1010",
        ],
        [
            "", "0", "0000", "0011", "01", "010", "011", "100", "1000", "1001", "11", "1110",
        ],
    )?;

    println!(
        "{:<14} {:>12} {:<22} {:>8}",
        "allowed error", "#REs", "RE", "cost"
    );
    for percent in [15u32, 20, 25, 30, 35, 40, 45, 50] {
        let synthesizer =
            Synthesizer::new(CostFn::UNIFORM).with_allowed_error(f64::from(percent) / 100.0);
        let result = synthesizer.run(&spec)?;
        println!(
            "{:>12} % {:>12} {:<22} {:>8}",
            percent,
            result.stats.candidates_generated,
            result.regex.to_string(),
            result.cost
        );

        // The result misclassifies at most the allowed fraction of examples.
        let allowed = synthesizer.allowed_example_errors(&spec);
        assert!(spec.misclassified_by(&result.regex) <= allowed);
    }
    println!(
        "\nLower allowed error means exponentially more work — run\n\
         `cargo run --release -p rei-bench --bin reproduce -- error --full`\n\
         to extend the sweep towards exact synthesis (0 %)."
    );
    Ok(())
}
