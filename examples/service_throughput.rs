//! Serving concurrent tenants from one warm worker pool: a miniature of
//! the `reproduce serve` throughput experiment. A burst of requests —
//! with many duplicates, as real multi-tenant traffic has — is pushed
//! through a [`SynthService`]; the service coalesces identical in-flight
//! requests, answers repeats from its result cache, and reports the
//! reuse through its metrics snapshot.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example service_throughput
//! ```

use std::time::Instant;

use paresy::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let specs = [
        Spec::from_strs(
            ["10", "101", "100", "1010", "1011", "1000", "1001"],
            ["", "0", "1", "00", "11", "010"],
        )?,
        Spec::from_strs(["1", "011", "1011", "11011"], ["", "10", "101", "0011"])?,
        Spec::from_strs(["0", "00", "000"], ["", "01", "1"])?,
        Spec::from_strs(["1", "11", "111"], ["", "0", "10"])?,
    ];

    // Four workers, each with its own warm sequential session; a small
    // queue keeps the submission loop honest about backpressure.
    let service = SynthService::start(ServiceConfig::new(4).with_queue_capacity(16))
        .map_err(|err| err.to_string())?;

    // A burst of 5x the distinct work: every tenant asks for every spec.
    let started = Instant::now();
    let handles: Vec<(usize, JobHandle)> = (0..5)
        .flat_map(|tenant| {
            specs
                .iter()
                .cloned()
                .map(move |spec| (tenant, spec))
                .collect::<Vec<_>>()
        })
        .map(|(tenant, spec)| {
            let handle = service
                .submit(SynthRequest::new(spec).with_priority(tenant as i32))
                .expect("service accepts while open");
            (tenant, handle)
        })
        .collect();

    println!("tenant  source     cost  regex");
    for (tenant, handle) in &handles {
        let response = handle.wait();
        let result = response.outcome.map_err(|err| err.to_string())?;
        println!(
            "{tenant:>6}  {:<9}  {:>4}  {}",
            response.source.as_str(),
            result.cost,
            result.regex
        );
    }
    let wall = started.elapsed();

    let metrics = service.shutdown();
    println!();
    println!(
        "{} requests in {wall:.2?}: {} syntheses, {} coalesced, {} cache hits \
         ({:.0}% of traffic reused)",
        metrics.submitted,
        metrics.completed,
        metrics.coalesced,
        metrics.cache_hits,
        100.0 * (metrics.cache_hits + metrics.coalesced) as f64 / metrics.submitted as f64,
    );
    for (index, worker) in metrics.workers.iter().enumerate() {
        println!(
            "worker {index}: {} runs, {} candidates, {:.2?} busy",
            worker.runs, worker.candidates_generated, worker.elapsed
        );
    }
    Ok(())
}
