//! Inference over a non-binary alphabet: learn the shape of well-formed
//! sensor readings from labelled log tokens.
//!
//! The scenario: a fleet of devices reports calibration offsets such as
//! `+1`, `-2` or `+12` — a mandatory sign followed by one or two digits
//! (`1` and `2` stand in for digit classes). Operators label a handful of
//! well-formed and malformed tokens; Paresy infers a validation pattern
//! over the four-character alphabet `{+, -, 1, 2}`.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example token_patterns
//! ```

use paresy::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = Spec::from_strs(
        // Well-formed offsets: a sign and one or two digits.
        ["+1", "-2", "+12", "-21", "+2"],
        // Malformed: empty, missing sign, missing digits, doubled sign,
        // sign after digits, three digits.
        ["", "1", "+", "-", "++1", "1+", "+-1", "12", "+121"],
    )?;

    // The alphabet {+, -, 1, 2} is inferred from the examples.
    let synthesizer = Synthesizer::new(CostFn::UNIFORM);
    let result = synthesizer.run(&spec)?;

    println!("labelled tokens : {spec}");
    println!("learned pattern : {}", result.regex);
    println!("cost            : {}", result.cost);
    println!("candidates      : {}", result.stats.candidates_generated);

    // The pattern classifies every labelled token correctly…
    assert!(spec.is_satisfied_by(&result.regex));
    // …and generalises to unseen readings of the same shape.
    for fresh in ["-1", "+21"] {
        println!(
            "unseen '{fresh}' accepted: {}",
            result.regex.accepts(fresh.chars())
        );
    }
    Ok(())
}
