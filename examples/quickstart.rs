//! Quickstart: infer `10(0+1)*` from the paper's introductory example.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use paresy::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Positive and negative example strings (expression (1) in the paper).
    let spec = Spec::from_strs(
        ["10", "101", "100", "1010", "1011", "1000", "1001"],
        ["", "0", "1", "00", "11", "010"],
    )?;

    // A synthesiser with the uniform cost homomorphism (1, 1, 1, 1, 1).
    let synthesizer = Synthesizer::new(CostFn::UNIFORM);
    let result = synthesizer.run(&spec)?;

    println!("specification : {spec}");
    println!("inferred      : {}", result.regex);
    println!("cost          : {}", result.cost);
    println!("candidates    : {}", result.stats.candidates_generated);
    println!("unique langs  : {}", result.stats.unique_languages);
    println!("elapsed       : {:.2?}", result.stats.elapsed);

    assert_eq!(result.regex.to_string(), "10(0+1)*");
    Ok(())
}
