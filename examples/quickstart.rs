//! Quickstart: infer `10(0+1)*` from the paper's introductory example
//! through the session API.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use paresy::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Positive and negative example strings (expression (1) in the paper).
    let spec = Spec::from_strs(
        ["10", "101", "100", "1010", "1011", "1000", "1001"],
        ["", "0", "1", "00", "11", "010"],
    )?;

    // A serializable configuration: uniform cost homomorphism
    // (1, 1, 1, 1, 1), default sequential backend. Invalid settings are
    // reported as `SynthesisError::InvalidConfig`, not panics.
    let config = SynthConfig::new(CostFn::UNIFORM);
    println!("config        : {config}");

    // The session is created once and can serve many specifications.
    let mut session = SynthSession::new(config)?;
    let result = session.run(&spec)?;

    println!("backend       : {}", session.backend_name());
    println!("specification : {spec}");
    println!("inferred      : {}", result.regex);
    println!("cost          : {}", result.cost);
    println!("candidates    : {}", result.stats.candidates_generated);
    println!("unique langs  : {}", result.stats.unique_languages);
    println!("elapsed       : {:.2?}", result.stats.elapsed);

    // Follow-up requests reuse the warm session.
    let more = Spec::from_strs(["0", "00", "000"], ["", "01", "1"])?;
    let second = session.run(&more)?;
    println!(
        "second result : {} (session runs: {})",
        second.regex,
        session.stats().runs
    );

    assert_eq!(result.regex.to_string(), "10(0+1)*");
    Ok(())
}
