//! The CPU-versus-GPU comparison of Table 1 in miniature: run the same
//! specifications on the sequential engine and on the data-parallel engine
//! backed by the simulated SIMT device, and report times, speed-ups and
//! device statistics.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example cpu_vs_gpu
//! ```

use std::time::Instant;

use paresy::core::Engine;
use paresy::gpu::Device;
use paresy::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let specs = [
        (
            "intro 10(0+1)*",
            Spec::from_strs(
                ["10", "101", "100", "1010", "1011", "1000", "1001"],
                ["", "0", "1", "00", "11", "010"],
            )?,
        ),
        (
            "example 3.6",
            Spec::from_strs(["1", "011", "1011", "11011"], ["", "10", "101", "0011"])?,
        ),
        (
            "section 5.2",
            Spec::from_strs(
                ["00", "1101", "0001", "0111", "001", "1", "10", "1100", "111", "1010"],
                ["", "0", "0000", "0011", "01", "010", "011", "100", "1000", "1001", "11", "1110"],
            )?,
        ),
    ];

    println!(
        "{:<16} {:>12} {:>12} {:>9}  {:<18}",
        "benchmark", "cpu (s)", "parallel (s)", "speedup", "result"
    );
    for (name, spec) in &specs {
        let cpu_synth = Synthesizer::new(CostFn::UNIFORM);
        let started = Instant::now();
        let cpu = cpu_synth.run(spec)?;
        let cpu_secs = started.elapsed().as_secs_f64();

        let device = Device::default();
        let par_synth =
            Synthesizer::new(CostFn::UNIFORM).with_engine(Engine::Parallel(device.clone()));
        let started = Instant::now();
        let par = par_synth.run(spec)?;
        let par_secs = started.elapsed().as_secs_f64();

        assert_eq!(cpu.cost, par.cost, "both engines are cost-minimal");
        println!(
            "{:<16} {:>12.4} {:>12.4} {:>8.1}x  {:<18}",
            name,
            cpu_secs,
            par_secs,
            cpu_secs / par_secs.max(1e-9),
            par.regex
        );
        let stats = device.stats();
        println!(
            "{:<16} kernels={} items={} peak-mem={}B hash-inserts={}",
            "", stats.kernel_launches, stats.items_executed, stats.peak_bytes, stats.hash_insertions
        );
    }
    println!(
        "\nNote: on small instances the sequential engine can win — exactly like the\n\
         paper's 0.2 s GPU launch-latency floor. The parallel engine pays off as the\n\
         per-level candidate batches grow (see `reproduce table1 --full`)."
    );
    Ok(())
}
