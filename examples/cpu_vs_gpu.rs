//! The CPU-versus-GPU comparison of Table 1 in miniature: run the same
//! batch of specifications through a sequential session and through a
//! data-parallel session backed by one shared simulated SIMT device, and
//! report times, speed-ups and device statistics.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example cpu_vs_gpu
//! ```

use std::time::{Duration, Instant};

use paresy::gpu::Device;
use paresy::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let specs = vec![
        Spec::from_strs(
            ["10", "101", "100", "1010", "1011", "1000", "1001"],
            ["", "0", "1", "00", "11", "010"],
        )?,
        Spec::from_strs(["1", "011", "1011", "11011"], ["", "10", "101", "0011"])?,
        Spec::from_strs(
            [
                "00", "1101", "0001", "0111", "001", "1", "10", "1100", "111", "1010",
            ],
            [
                "", "0", "0000", "0011", "01", "010", "011", "100", "1000", "1001", "11", "1110",
            ],
        )?,
    ];
    let names = ["intro 10(0+1)*", "example 3.6", "section 5.2"];

    // One session per backend; the parallel session owns the device for
    // the whole batch, so pool setup is paid once, not per spec. The
    // hardest instance (§5.2 at zero allowed error) can need billions of
    // candidates, so each run gets a budget — exactly the paper's
    // per-run-timeout protocol.
    let config = SynthConfig::new(CostFn::UNIFORM).with_time_budget(Duration::from_secs(10));
    let mut cpu = SynthSession::new(config.clone())?;
    let device = Device::default();
    let mut par = SynthSession::with_backend(
        config,
        Box::new(DeviceParallel::with_device(device.clone())),
    )?;

    println!(
        "{:<16} {:>12} {:>12} {:>9}  {:<18}",
        "benchmark", "cpu (s)", "parallel (s)", "speedup", "result"
    );
    for (name, spec) in names.iter().zip(&specs) {
        let started = Instant::now();
        let cpu_result = cpu.run(spec);
        let cpu_secs = started.elapsed().as_secs_f64();

        // Per-run device deltas on the reused device.
        device.reset_stats();
        let started = Instant::now();
        let par_result = par.run(spec);
        let par_secs = started.elapsed().as_secs_f64();

        match (&cpu_result, &par_result) {
            (Ok(cpu_result), Ok(par_result)) => {
                assert_eq!(
                    cpu_result.cost, par_result.cost,
                    "both backends are cost-minimal"
                );
                println!(
                    "{:<16} {:>12.4} {:>12.4} {:>8.1}x  {:<18}",
                    name,
                    cpu_secs,
                    par_secs,
                    cpu_secs / par_secs.max(1e-9),
                    par_result.regex
                );
            }
            (cpu_result, par_result) => {
                let label = |outcome: &Result<SynthesisResult, SynthesisError>| match outcome {
                    Ok(result) => result.regex.to_string(),
                    Err(err) => err.to_string(),
                };
                println!(
                    "{:<16} {:>12.4} {:>12.4} {:>9}  cpu: {} / parallel: {}",
                    name,
                    cpu_secs,
                    par_secs,
                    "-",
                    label(cpu_result),
                    label(par_result)
                );
            }
        }
        let stats = device.stats();
        println!(
            "{:<16} kernels={} items={} peak-mem={}B hash-inserts={}",
            "",
            stats.kernel_launches,
            stats.items_executed,
            stats.peak_bytes,
            stats.hash_insertions
        );
    }
    println!(
        "\nsessions: {} ({} runs)  vs  {} ({} runs, one warm device)",
        cpu.backend_name(),
        cpu.stats().runs,
        par.backend_name(),
        par.stats().runs,
    );
    println!(
        "\nNote: on small instances the sequential backend can win — exactly like the\n\
         paper's 0.2 s GPU launch-latency floor. The parallel backend pays off as the\n\
         per-level candidate batches grow (see `reproduce table1 --full`)."
    );
    Ok(())
}
