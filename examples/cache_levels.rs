//! Visualise the structure of the language cache: how many candidate
//! languages each cost level generates, how many survive the uniqueness
//! check and how many end up cached — the quantitative version of the
//! language-cache figure in Section 3 of the paper.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example cache_levels
//! ```

use paresy::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Example 3.6 of the paper.
    let spec = Spec::from_strs(["1", "011", "1011", "11011"], ["", "10", "101", "0011"])?;
    let result = Synthesizer::new(CostFn::UNIFORM).run(&spec)?;

    println!("specification : {spec}");
    println!("result        : {} (cost {})\n", result.regex, result.cost);
    println!(
        "{:>5} {:>12} {:>10} {:>10} {:>10}",
        "cost", "candidates", "unique", "cached", "dupl. %"
    );
    for level in &result.stats.levels {
        let duplicates = level.candidates.saturating_sub(level.unique);
        let duplicate_percent = if level.candidates == 0 {
            0.0
        } else {
            100.0 * duplicates as f64 / level.candidates as f64
        };
        println!(
            "{:>5} {:>12} {:>10} {:>10} {:>9.1}%",
            level.cost, level.candidates, level.unique, level.cached, duplicate_percent
        );
    }
    println!(
        "\ntotal: {} candidates, {} unique languages, {} cached rows ({} bytes)",
        result.stats.candidates_generated,
        result.stats.unique_languages,
        result.stats.cache_rows,
        result.stats.cache_bytes,
    );
    println!(
        "The level reaching cost {} is cut short as soon as the first satisfying",
        result.cost
    );
    println!("row is found, so it does not appear in the per-level table.");
    Ok(())
}
